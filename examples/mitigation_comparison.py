#!/usr/bin/env python3
"""Compare CoMeT against the state-of-the-art mitigations (mini Figure 12/14).

For a handful of representative workloads (one per memory-intensity category
of Table 3 plus an extra high-intensity one), the example runs every
mitigation at two RowHammer thresholds and prints normalized IPC and
normalized DRAM energy, the two headline metrics of the paper's evaluation.

Run with:  python examples/mitigation_comparison.py
"""

from repro.analysis.reporting import format_table
from repro.energy.model import DRAMEnergyModel
from repro.dram.dram_system import DRAMStatistics
from repro.sim.metrics import geometric_mean
from repro.sim.runner import default_experiment_config, run_single_core
from repro.workloads.suite import build_trace

WORKLOADS = ["519.lbm", "429.mcf", "462.libquantum", "502.gcc"]
MECHANISMS = ["comet", "graphene", "hydra", "rega", "para"]
THRESHOLDS = [1000, 125]
NUM_REQUESTS = 5000


def to_stats(result) -> DRAMStatistics:
    d = result.dram_stats
    return DRAMStatistics(
        acts=d["acts"], pres=d["pres"], reads=d["reads"], writes=d["writes"],
        refreshes=d["refreshes"], preventive_acts=d["preventive_acts"],
    )


def main() -> None:
    dram_config = default_experiment_config()
    energy_model = DRAMEnergyModel(num_ranks=2)

    traces = {
        name: build_trace(name, num_requests=NUM_REQUESTS, dram_config=dram_config)
        for name in WORKLOADS
    }
    baselines = {
        name: run_single_core(trace, "none", nrh=1000, dram_config=dram_config)
        for name, trace in traces.items()
    }

    for nrh in THRESHOLDS:
        rows = []
        for mechanism in MECHANISMS:
            ipcs, energies = [], []
            for name, trace in traces.items():
                result = run_single_core(trace, mechanism, nrh=nrh, dram_config=dram_config)
                base = baselines[name]
                ipcs.append(result.ipc / base.ipc)
                energies.append(
                    energy_model.normalized_energy(
                        to_stats(result), result.cycles, to_stats(base), base.cycles
                    )
                )
            rows.append(
                {
                    "mitigation": mechanism,
                    "geomean_norm_IPC": round(geometric_mean(ipcs), 4),
                    "worst_norm_IPC": round(min(ipcs), 4),
                    "geomean_norm_energy": round(geometric_mean(energies), 4),
                }
            )
        print(format_table(rows, title=f"Normalized performance/energy at NRH = {nrh} "
                                       f"({len(WORKLOADS)} workloads)"))
        print()

    print(
        "Expected shape (Figures 12 and 14): CoMeT and Graphene stay close to 1.0,\n"
        "Hydra loses performance at NRH=125 due to its counter traffic, REGA's\n"
        "slowdown grows as tRC inflates, and PARA is the most expensive at low NRH."
    )


if __name__ == "__main__":
    main()
