#!/usr/bin/env python3
"""Compare CoMeT against the state-of-the-art mitigations (mini Figure 12/14).

For a handful of representative workloads (one per memory-intensity category
of Table 3 plus an extra high-intensity one), the example runs every
mitigation at two RowHammer thresholds and prints normalized IPC and
normalized DRAM energy, the two headline metrics of the paper's evaluation.

The whole grid is expressed declaratively: :func:`repro.expand_grid` expands
workloads x mitigations x thresholds into :class:`repro.ExperimentSpec`
objects (plus one threshold-independent baseline per workload) and a
:class:`repro.Session` executes them — runs fan out across worker processes
and land in the on-disk result cache, so re-running the example (or any
other sweep sharing specs with it) is nearly instant.

Run with:  python examples/mitigation_comparison.py
"""

from repro import Session, expand_grid
from repro.analysis.reporting import format_table
from repro.energy.model import DRAMEnergyModel
from repro.dram.dram_system import DRAMStatistics
from repro.sim.metrics import geometric_mean

WORKLOADS = ["519.lbm", "429.mcf", "462.libquantum", "502.gcc"]
MECHANISMS = ["comet", "graphene", "hydra", "rega", "para"]
THRESHOLDS = [1000, 125]
NUM_REQUESTS = 5000


def to_stats(result) -> DRAMStatistics:
    d = result.dram_stats
    return DRAMStatistics(
        acts=d["acts"], pres=d["pres"], reads=d["reads"], writes=d["writes"],
        refreshes=d["refreshes"], preventive_acts=d["preventive_acts"],
    )


def main() -> None:
    energy_model = DRAMEnergyModel(num_ranks=2)

    specs = expand_grid(
        workloads=WORKLOADS,
        mitigations=MECHANISMS,
        nrhs=THRESHOLDS,
        num_requests=NUM_REQUESTS,
    )
    session = Session()
    records = session.run_many(specs)
    results = {
        (s.workload.name, s.mitigation.name, s.mitigation.nrh): r.result
        for s, r in zip(specs, records)
    }
    baselines = {
        s.workload.name: r.result
        for s, r in zip(specs, records)
        if s.mitigation.name == "none"
    }

    for nrh in THRESHOLDS:
        rows = []
        for mechanism in MECHANISMS:
            ipcs, energies = [], []
            for name in WORKLOADS:
                result = results[(name, mechanism, nrh)]
                base = baselines[name]
                ipcs.append(result.ipc / base.ipc)
                energies.append(
                    energy_model.normalized_energy(
                        to_stats(result), result.cycles, to_stats(base), base.cycles
                    )
                )
            rows.append(
                {
                    "mitigation": mechanism,
                    "geomean_norm_IPC": round(geometric_mean(ipcs), 4),
                    "worst_norm_IPC": round(min(ipcs), 4),
                    "geomean_norm_energy": round(geometric_mean(energies), 4),
                }
            )
        print(format_table(rows, title=f"Normalized performance/energy at NRH = {nrh} "
                                       f"({len(WORKLOADS)} workloads)"))
        print()

    print(
        "Expected shape (Figures 12 and 14): CoMeT and Graphene stay close to 1.0,\n"
        "Hydra loses performance at NRH=125 due to its counter traffic, REGA's\n"
        "slowdown grows as tRC inflates, and PARA is the most expensive at low NRH."
    )


if __name__ == "__main__":
    main()
