#!/usr/bin/env python3
"""A security-audit campaign over synthesized adversarial patterns.

The paper's security argument (Section 5) is an invariant — no victim row
ever accumulates NRH aggressor activations between two of its refreshes —
and :mod:`repro.security` stress-tests it: the synthesis engine generates
parameterized adversarial patterns (Blacksmith-style fuzzing, sketch-aware
decoy/aliasing attacks on CoMeT's count-min counters, RowPress-style
long-open-row streams, refresh-window-straddling waves, coordinated
multi-channel variants), and the audit runner fans a
mitigation x pattern x NRH grid through the cached sweep executor with the
security verifier attached in its cheap streaming mode.

This example audits three mechanisms against four patterns plus the
unprotected baseline, prints the per-mechanism verdicts and per-pattern
margins, and highlights the headline contrast: the sketch-aware aliasing
attack pushes CoMeT's disturbance margin far above the uniform reference
while CoMeT still holds the invariant — and the unprotected baseline
demonstrably does not.

Equivalent CLI:  python -m repro.cli audit --mitigations comet graphene para \
    --patterns synth_uniform synth_blacksmith synth_sketch_aliasing synth_refresh_wave \
    --requests 3000 --include-baseline

Run with:  python examples/security_audit.py
"""

from repro import Session

MECHANISMS = ["comet", "graphene", "para"]
PATTERNS = [
    "synth_uniform",
    "synth_blacksmith",
    "synth_sketch_aliasing",
    "synth_refresh_wave",
]


def main() -> None:
    session = Session(max_workers=0, use_cache=False)
    report = session.audit(
        mitigations=MECHANISMS,
        patterns=PATTERNS,
        num_requests=3000,
        include_baseline=True,
    )
    print(report.render())
    print()

    uniform = report.finding_for("comet", "synth_uniform", 125)
    aliasing = report.finding_for("comet", "synth_sketch_aliasing", 125)
    baseline = report.verdict_for("none")
    print(
        f"CoMeT margin under the uniform reference:      {uniform.margin:.3f}\n"
        f"CoMeT margin under sketch-aware aliasing:      {aliasing.margin:.3f}\n"
        f"unprotected baseline verdict:                  "
        f"{'secure' if baseline.secure else 'INSECURE'} "
        f"(worst margin {baseline.worst_margin:.2f} via {baseline.worst_pattern})"
    )


if __name__ == "__main__":
    main()
