#!/usr/bin/env python3
"""Quickstart: protect a workload with CoMeT and measure its overhead.

This example walks through the library's main entry points:

1. generate a synthetic workload trace from the built-in 61-workload suite;
2. run it on the unprotected baseline system and on a CoMeT-protected system
   at two RowHammer thresholds (1K and 125, the extremes of the paper);
3. report normalized IPC, DRAM energy, preventive refresh counts and the
   security verifier's verdict;
4. print CoMeT's storage/area footprint (Table 4's CoMeT rows).

Run with:  python examples/quickstart.py
"""

from repro import build_trace, run_single_core, normalized_ipc
from repro.analysis.reporting import format_table
from repro.area.model import comet_area_report
from repro.energy.model import DRAMEnergyModel
from repro.sim.runner import default_experiment_config


def main() -> None:
    dram_config = default_experiment_config()
    energy_model = DRAMEnergyModel(num_ranks=2)

    # 429.mcf is one of the paper's high-memory-intensity workloads: lots of
    # row misses, skewed row popularity -- the kind of workload whose hot rows
    # approach the RowHammer threshold even without an attacker.
    trace = build_trace("429.mcf", num_requests=8000, dram_config=dram_config)
    print(f"workload: {trace.name}, {len(trace)} memory requests, "
          f"{trace.total_instructions} instructions")

    baseline = run_single_core(trace, "none", nrh=1000, dram_config=dram_config)
    print(f"baseline IPC: {baseline.ipc:.3f}  "
          f"(avg read latency {baseline.average_read_latency:.1f} cycles)")

    rows = []
    for nrh in (1000, 125):
        result = run_single_core(trace, "comet", nrh=nrh, dram_config=dram_config)
        norm_ipc = normalized_ipc(result, baseline)
        norm_energy = energy_model.normalized_energy(
            # Recompute from raw stats so the comparison uses one model instance.
            stats=_dram_stats(result),
            total_cycles=result.cycles,
            baseline_stats=_dram_stats(baseline),
            baseline_cycles=baseline.cycles,
        )
        rows.append(
            {
                "NRH": nrh,
                "normalized_IPC": round(norm_ipc, 4),
                "perf_overhead_%": round((1 - norm_ipc) * 100, 2),
                "normalized_energy": round(norm_energy, 4),
                "preventive_refreshes": result.preventive_refreshes,
                "early_refreshes": result.early_refresh_operations,
                "secure": result.security_ok,
            }
        )
    print()
    print(format_table(rows, title="CoMeT overhead vs. unprotected baseline (429.mcf)"))

    print()
    area_rows = [comet_area_report(nrh).as_row() for nrh in (1000, 500, 250, 125)]
    print(format_table(area_rows, title="CoMeT storage and area (Table 4, CoMeT rows)"))


def _dram_stats(result):
    """Rebuild a DRAMStatistics object from a result's stats dictionary."""
    from repro.dram.dram_system import DRAMStatistics

    stats = result.dram_stats
    return DRAMStatistics(
        acts=stats["acts"],
        pres=stats["pres"],
        reads=stats["reads"],
        writes=stats["writes"],
        refreshes=stats["refreshes"],
        preventive_acts=stats["preventive_acts"],
    )


if __name__ == "__main__":
    main()
