#!/usr/bin/env python3
"""Quickstart: protect a workload with CoMeT and measure its overhead.

This example walks through the declarative experiment API, the library's
front door for every kind of run:

1. describe the experiment as an :class:`repro.ExperimentSpec` — a workload
   reference (name + trace length), a mitigation (name + RowHammer
   threshold) and the simulated platform;
2. execute it through a :class:`repro.Session`, which caches results and
   returns a :class:`repro.RunRecord` (spec + result + provenance) that
   serializes to JSON;
3. report normalized IPC, DRAM energy, preventive refresh counts and the
   security verifier's verdict at two thresholds (1K and 125, the extremes
   of the paper);
4. print CoMeT's storage/area footprint (Table 4's CoMeT rows).

The same spec objects drive the CLI (``python -m repro.cli run --spec``),
the comparison/sweep examples and the benchmark harnesses.

Run with:  python examples/quickstart.py
"""

from repro import ExperimentSpec, ExperimentWorkloadSpec, MitigationSpec, Session
from repro.analysis.reporting import format_table
from repro.area.model import comet_area_report
from repro.energy.model import DRAMEnergyModel
from repro.sim.runner import normalized_ipc


def main() -> None:
    energy_model = DRAMEnergyModel(num_ranks=2)
    session = Session(use_cache=False)

    # 429.mcf is one of the paper's high-memory-intensity workloads: lots of
    # row misses, skewed row popularity -- the kind of workload whose hot rows
    # approach the RowHammer threshold even without an attacker.
    workload = ExperimentWorkloadSpec(name="429.mcf", num_requests=8000)

    baseline_record = session.run(
        ExperimentSpec(
            workload=workload,
            mitigation=MitigationSpec(name="none", nrh=1000),
            verify_security=False,
        )
    )
    baseline = baseline_record.result
    print(f"workload: {baseline.name}, baseline IPC {baseline.ipc:.3f}  "
          f"(avg read latency {baseline.average_read_latency:.1f} cycles)")
    print(f"spec hash: {baseline_record.provenance['spec_hash'][:12]}  "
          f"(the sweep-cache key of this exact experiment)")

    rows = []
    for nrh in (1000, 125):
        spec = ExperimentSpec(
            workload=workload,
            mitigation=MitigationSpec(name="comet", nrh=nrh),
        )
        result = session.run(spec).result
        norm_ipc = normalized_ipc(result, baseline)
        norm_energy = energy_model.normalized_energy(
            # Recompute from raw stats so the comparison uses one model instance.
            stats=_dram_stats(result),
            total_cycles=result.cycles,
            baseline_stats=_dram_stats(baseline),
            baseline_cycles=baseline.cycles,
        )
        rows.append(
            {
                "NRH": nrh,
                "normalized_IPC": round(norm_ipc, 4),
                "perf_overhead_%": round((1 - norm_ipc) * 100, 2),
                "normalized_energy": round(norm_energy, 4),
                "preventive_refreshes": result.preventive_refreshes,
                "early_refreshes": result.early_refresh_operations,
                "secure": result.security_ok,
            }
        )
    print()
    print(format_table(rows, title="CoMeT overhead vs. unprotected baseline (429.mcf)"))

    print()
    area_rows = [comet_area_report(nrh).as_row() for nrh in (1000, 500, 250, 125)]
    print(format_table(area_rows, title="CoMeT storage and area (Table 4, CoMeT rows)"))


def _dram_stats(result):
    """Rebuild a DRAMStatistics object from a result's stats dictionary."""
    from repro.dram.dram_system import DRAMStatistics

    stats = result.dram_stats
    return DRAMStatistics(
        acts=stats["acts"],
        pres=stats["pres"],
        reads=stats["reads"],
        writes=stats["writes"],
        refreshes=stats["refreshes"],
        preventive_acts=stats["preventive_acts"],
    )


if __name__ == "__main__":
    main()
