#!/usr/bin/env python3
"""RowHammer attack vs. defenses (the scenario of Section 8.2).

The example launches the traditional many-row hammering attack against an
unprotected system and against each mitigation at a very low RowHammer
threshold (NRH = 125), then reports:

* whether the security verifier observed a RowHammer violation (a victim row
  accumulating NRH aggressor activations without being refreshed);
* the maximum disturbance any victim row ever accumulated;
* how many preventive refreshes the mechanism spent to achieve that.

It then repeats the exercise with the CoMeT-targeted (RAT-thrashing) attack
to show the early-preventive-refresh mechanism kicking in.

Attack traces are ordinary registered workloads (``attack_traditional``,
``attack_comet_targeted``, ...), so an attack experiment is just an
:class:`repro.ExperimentSpec` whose workload names one and carries the
generator's knobs in ``params``.

Run with:  python examples/attack_defense.py
"""

from repro import ExperimentSpec, ExperimentWorkloadSpec, MitigationSpec, Session
from repro.analysis.reporting import format_table

NRH = 125
MECHANISMS = ["none", "comet", "graphene", "hydra", "para", "blockhammer"]


def run_attack(session, attack_workload, mechanisms=MECHANISMS, nrh=NRH):
    rows = []
    for name in mechanisms:
        # The baseline is verified too: watching the unprotected system
        # violate the RowHammer invariant is the point of the exercise.
        spec = ExperimentSpec(
            workload=attack_workload,
            mitigation=MitigationSpec(name=name, nrh=nrh),
        )
        result = session.run(spec).result
        rows.append(
            {
                "mitigation": name,
                "secure": result.security_ok,
                "max_disturbance": result.max_disturbance,
                "preventive_refreshes": result.preventive_refreshes,
                "early_refreshes": result.early_refresh_operations,
                "attack_IPC": round(result.ipc, 4),
            }
        )
    return rows


def main() -> None:
    session = Session(use_cache=False)

    print(f"RowHammer threshold NRH = {NRH}\n")

    traditional = ExperimentWorkloadSpec(
        name="attack_traditional",
        num_requests=6000,
        params={"aggressor_rows_per_bank": 2},
    )
    print(
        format_table(
            run_attack(session, traditional),
            title="Traditional many-row RowHammer attack (Figure 16a scenario)",
        )
    )
    print()

    targeted = ExperimentWorkloadSpec(
        name="attack_comet_targeted",
        num_requests=6000,
        params={"distinct_rows": 48, "npr": NRH // 4},
    )
    print(
        format_table(
            run_attack(session, targeted, mechanisms=["none", "comet", "hydra"]),
            title="CoMeT-targeted RAT-thrashing attack (Figure 16b scenario)",
        )
    )
    print()
    print(
        "Interpretation: the unprotected system ('none') violates the RowHammer\n"
        "invariant (max_disturbance >= NRH), while every deterministic tracker\n"
        "keeps the maximum disturbance below the threshold at the cost of\n"
        "preventive refreshes.  The targeted attack forces CoMeT to fall back to\n"
        "early preventive refreshes, its designed-for worst case."
    )


if __name__ == "__main__":
    main()
