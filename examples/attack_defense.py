#!/usr/bin/env python3
"""RowHammer attack vs. defenses (the scenario of Section 8.2).

The example launches the traditional many-row hammering attack against an
unprotected system and against each mitigation at a very low RowHammer
threshold (NRH = 125), then reports:

* whether the security verifier observed a RowHammer violation (a victim row
  accumulating NRH aggressor activations without being refreshed);
* the maximum disturbance any victim row ever accumulated;
* how many preventive refreshes the mechanism spent to achieve that.

It then repeats the exercise with the CoMeT-targeted (RAT-thrashing) attack
to show the early-preventive-refresh mechanism kicking in.

Run with:  python examples/attack_defense.py
"""

from repro.analysis.reporting import format_table
from repro.sim.runner import default_experiment_config, run_single_core
from repro.workloads.attacks import comet_targeted_attack, traditional_rowhammer_attack

NRH = 125
MECHANISMS = ["none", "comet", "graphene", "hydra", "para", "blockhammer"]


def run_attack(attack_trace, dram_config, mechanisms=MECHANISMS, nrh=NRH):
    rows = []
    for name in mechanisms:
        result = run_single_core(attack_trace, name, nrh=nrh, dram_config=dram_config)
        rows.append(
            {
                "mitigation": name,
                "secure": result.security_ok,
                "max_disturbance": result.max_disturbance,
                "preventive_refreshes": result.preventive_refreshes,
                "early_refreshes": result.early_refresh_operations,
                "attack_IPC": round(result.ipc, 4),
            }
        )
    return rows


def main() -> None:
    dram_config = default_experiment_config()

    print(f"RowHammer threshold NRH = {NRH}\n")

    traditional = traditional_rowhammer_attack(
        num_requests=6000, dram_config=dram_config, aggressor_rows_per_bank=2
    )
    print(
        format_table(
            run_attack(traditional, dram_config),
            title="Traditional many-row RowHammer attack (Figure 16a scenario)",
        )
    )
    print()

    targeted = comet_targeted_attack(
        num_requests=6000, distinct_rows=48, npr=NRH // 4, dram_config=dram_config
    )
    print(
        format_table(
            run_attack(targeted, dram_config, mechanisms=["none", "comet", "hydra"]),
            title="CoMeT-targeted RAT-thrashing attack (Figure 16b scenario)",
        )
    )
    print()
    print(
        "Interpretation: the unprotected system ('none') violates the RowHammer\n"
        "invariant (max_disturbance >= NRH), while every deterministic tracker\n"
        "keeps the maximum disturbance below the threshold at the cost of\n"
        "preventive refreshes.  The targeted attack forces CoMeT to fall back to\n"
        "early preventive refreshes, its designed-for worst case."
    )


if __name__ == "__main__":
    main()
