#!/usr/bin/env python3
"""Explore CoMeT's design space (mini versions of Figures 6, 7 and 9).

Three sweeps on a memory-intensive workload at a very low RowHammer threshold:

* Counter Table geometry — number of hash functions x counters per hash
  (Figure 6): more counters and more hash functions reduce collisions and
  hence unnecessary preventive refreshes.
* Recent Aggressor Table size (Figure 7): too few entries cause RAT thrashing.
* Counter reset period divider k (Figure 9): larger k resets counters more
  often (fewer saturated counters) but lowers NPR = NRH/(k+1), so k=3 is the
  sweet spot the paper selects.

Run with:  python examples/design_space_exploration.py
"""

from repro.analysis.reporting import format_table
from repro.core.config import CoMeTConfig
from repro.sim.runner import default_experiment_config, run_single_core
from repro.workloads.suite import build_trace

NRH = 125
WORKLOAD = "429.mcf"
NUM_REQUESTS = 6000


def main() -> None:
    dram_config = default_experiment_config()
    trace = build_trace(WORKLOAD, num_requests=NUM_REQUESTS, dram_config=dram_config)
    baseline = run_single_core(trace, "none", nrh=NRH, dram_config=dram_config)

    def run(config: CoMeTConfig):
        result = run_single_core(
            trace, "comet", nrh=NRH, dram_config=dram_config,
            mitigation_overrides={"config": config},
        )
        return result

    # ------------------------------------------------------------------ #
    # Figure 6: Counter Table geometry sweep
    # ------------------------------------------------------------------ #
    rows = []
    for num_hashes in (1, 2, 4):
        for counters in (128, 512):
            config = CoMeTConfig(nrh=NRH, num_hashes=num_hashes, counters_per_hash=counters)
            result = run(config)
            rows.append(
                {
                    "NHash": num_hashes,
                    "NCounters": counters,
                    "norm_IPC": round(result.ipc / baseline.ipc, 4),
                    "preventive_refreshes": result.preventive_refreshes,
                }
            )
    print(format_table(rows, title=f"Counter Table sweep (Figure 6), {WORKLOAD}, NRH={NRH}"))
    print()

    # ------------------------------------------------------------------ #
    # Figure 7: RAT size sweep
    # ------------------------------------------------------------------ #
    rows = []
    for rat_entries in (32, 128, 512):
        config = CoMeTConfig(nrh=NRH, rat_entries=rat_entries)
        result = run(config)
        rows.append(
            {
                "RAT_entries": rat_entries,
                "norm_IPC": round(result.ipc / baseline.ipc, 4),
                "early_refreshes": result.early_refresh_operations,
            }
        )
    print(format_table(rows, title=f"RAT size sweep (Figure 7), {WORKLOAD}, NRH={NRH}"))
    print()

    # ------------------------------------------------------------------ #
    # Figure 9: counter reset period (k) sweep
    # ------------------------------------------------------------------ #
    rows = []
    for k in (1, 2, 3, 4):
        config = CoMeTConfig(nrh=NRH, reset_period_divider=k)
        result = run(config)
        rows.append(
            {
                "k": k,
                "NPR": config.npr,
                "norm_IPC": round(result.ipc / baseline.ipc, 4),
                "preventive_refreshes": result.preventive_refreshes,
            }
        )
    print(format_table(rows, title=f"Reset period sweep (Figure 9), {WORKLOAD}, NRH={NRH}"))


if __name__ == "__main__":
    main()
