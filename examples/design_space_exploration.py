#!/usr/bin/env python3
"""Explore CoMeT's design space (mini versions of Figures 6, 7 and 9).

Three sweeps on a memory-intensive workload at a very low RowHammer threshold:

* Counter Table geometry — number of hash functions x counters per hash
  (Figure 6): more counters and more hash functions reduce collisions and
  hence unnecessary preventive refreshes.
* Recent Aggressor Table size (Figure 7): too few entries cause RAT thrashing.
* Counter reset period divider k (Figure 9): larger k resets counters more
  often (fewer saturated counters) but lowers NPR = NRH/(k+1), so k=3 is the
  sweet spot the paper selects.

All three sweeps (plus the shared baseline) are expressed as
:class:`repro.sim.sweep.SweepPoint` grids and executed in one
:class:`repro.sim.sweep.SweepRunner` batch: points fan out across worker
processes and cached results are reused across runs.

Run with:  python examples/design_space_exploration.py
"""

from repro.analysis.reporting import format_table
from repro.core.config import CoMeTConfig
from repro.sim.sweep import SweepPoint, SweepRunner

NRH = 125
WORKLOAD = "429.mcf"
NUM_REQUESTS = 6000

CT_PAIRS = [(h, c) for h in (1, 2, 4) for c in (128, 512)]
RAT_SIZES = [32, 128, 512]
RESET_DIVIDERS = [1, 2, 3, 4]


def comet_point(config: CoMeTConfig) -> SweepPoint:
    return SweepPoint(
        workload=WORKLOAD,
        mitigation="comet",
        nrh=NRH,
        num_requests=NUM_REQUESTS,
        mitigation_overrides={"config": config},
    )


def main() -> None:
    baseline_point = SweepPoint(
        workload=WORKLOAD,
        mitigation="none",
        nrh=NRH,
        num_requests=NUM_REQUESTS,
        verify_security=False,
    )
    ct_points = [
        comet_point(CoMeTConfig(nrh=NRH, num_hashes=h, counters_per_hash=c))
        for h, c in CT_PAIRS
    ]
    rat_points = [
        comet_point(CoMeTConfig(nrh=NRH, rat_entries=entries)) for entries in RAT_SIZES
    ]
    reset_points = [
        comet_point(CoMeTConfig(nrh=NRH, reset_period_divider=k))
        for k in RESET_DIVIDERS
    ]

    runner = SweepRunner()
    all_points = [baseline_point, *ct_points, *rat_points, *reset_points]
    results = runner.run(all_points)
    baseline, results = results[0], results[1:]
    ct_results = results[: len(ct_points)]
    rat_results = results[len(ct_points) : len(ct_points) + len(rat_points)]
    reset_results = results[len(ct_points) + len(rat_points) :]

    # ------------------------------------------------------------------ #
    # Figure 6: Counter Table geometry sweep
    # ------------------------------------------------------------------ #
    rows = [
        {
            "NHash": num_hashes,
            "NCounters": counters,
            "norm_IPC": round(result.ipc / baseline.ipc, 4),
            "preventive_refreshes": result.preventive_refreshes,
        }
        for (num_hashes, counters), result in zip(CT_PAIRS, ct_results)
    ]
    print(format_table(rows, title=f"Counter Table sweep (Figure 6), {WORKLOAD}, NRH={NRH}"))
    print()

    # ------------------------------------------------------------------ #
    # Figure 7: RAT size sweep
    # ------------------------------------------------------------------ #
    rows = [
        {
            "RAT_entries": entries,
            "norm_IPC": round(result.ipc / baseline.ipc, 4),
            "early_refreshes": result.early_refresh_operations,
        }
        for entries, result in zip(RAT_SIZES, rat_results)
    ]
    print(format_table(rows, title=f"RAT size sweep (Figure 7), {WORKLOAD}, NRH={NRH}"))
    print()

    # ------------------------------------------------------------------ #
    # Figure 9: counter reset period (k) sweep
    # ------------------------------------------------------------------ #
    rows = [
        {
            "k": k,
            "NPR": CoMeTConfig(nrh=NRH, reset_period_divider=k).npr,
            "norm_IPC": round(result.ipc / baseline.ipc, 4),
            "preventive_refreshes": result.preventive_refreshes,
        }
        for k, result in zip(RESET_DIVIDERS, reset_results)
    ]
    print(format_table(rows, title=f"Reset period sweep (Figure 9), {WORKLOAD}, NRH={NRH}"))


if __name__ == "__main__":
    main()
