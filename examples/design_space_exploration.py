#!/usr/bin/env python3
"""Explore CoMeT's design space (mini versions of Figures 6, 7 and 9).

Three sweeps on a memory-intensive workload at a very low RowHammer threshold:

* Counter Table geometry — number of hash functions x counters per hash
  (Figure 6): more counters and more hash functions reduce collisions and
  hence unnecessary preventive refreshes.
* Recent Aggressor Table size (Figure 7): too few entries cause RAT thrashing.
* Counter reset period divider k (Figure 9): larger k resets counters more
  often (fewer saturated counters) but lowers NPR = NRH/(k+1), so k=3 is the
  sweet spot the paper selects.

Each configuration is an :class:`repro.ExperimentSpec` whose mitigation
carries a :class:`~repro.core.config.CoMeTConfig` override — config
dataclasses serialize right inside the spec JSON, so these sensitivity
points are cacheable and archivable like any other experiment.  All three
sweeps (plus the shared baseline) execute in one :class:`repro.Session`
batch: specs fan out across worker processes and cached results are reused
across runs.

Run with:  python examples/design_space_exploration.py
"""

from repro import ExperimentSpec, ExperimentWorkloadSpec, MitigationSpec, Session
from repro.analysis.reporting import format_table
from repro.core.config import CoMeTConfig

NRH = 125
WORKLOAD = "429.mcf"
NUM_REQUESTS = 6000

CT_PAIRS = [(h, c) for h in (1, 2, 4) for c in (128, 512)]
RAT_SIZES = [32, 128, 512]
RESET_DIVIDERS = [1, 2, 3, 4]

WORKLOAD_SPEC = ExperimentWorkloadSpec(name=WORKLOAD, num_requests=NUM_REQUESTS)


def comet_spec(config: CoMeTConfig) -> ExperimentSpec:
    return ExperimentSpec(
        workload=WORKLOAD_SPEC,
        mitigation=MitigationSpec(name="comet", nrh=NRH, overrides={"config": config}),
    )


def main() -> None:
    baseline_spec = ExperimentSpec(
        workload=WORKLOAD_SPEC,
        mitigation=MitigationSpec(name="none", nrh=NRH),
        verify_security=False,
    )
    ct_specs = [
        comet_spec(CoMeTConfig(nrh=NRH, num_hashes=h, counters_per_hash=c))
        for h, c in CT_PAIRS
    ]
    rat_specs = [
        comet_spec(CoMeTConfig(nrh=NRH, rat_entries=entries)) for entries in RAT_SIZES
    ]
    reset_specs = [
        comet_spec(CoMeTConfig(nrh=NRH, reset_period_divider=k))
        for k in RESET_DIVIDERS
    ]

    session = Session()
    all_specs = [baseline_spec, *ct_specs, *rat_specs, *reset_specs]
    records = session.run_many(all_specs)
    results = [record.result for record in records]
    baseline, results = results[0], results[1:]
    ct_results = results[: len(ct_specs)]
    rat_results = results[len(ct_specs) : len(ct_specs) + len(rat_specs)]
    reset_results = results[len(ct_specs) + len(rat_specs) :]

    # ------------------------------------------------------------------ #
    # Figure 6: Counter Table geometry sweep
    # ------------------------------------------------------------------ #
    rows = [
        {
            "NHash": num_hashes,
            "NCounters": counters,
            "norm_IPC": round(result.ipc / baseline.ipc, 4),
            "preventive_refreshes": result.preventive_refreshes,
        }
        for (num_hashes, counters), result in zip(CT_PAIRS, ct_results)
    ]
    print(format_table(rows, title=f"Counter Table sweep (Figure 6), {WORKLOAD}, NRH={NRH}"))
    print()

    # ------------------------------------------------------------------ #
    # Figure 7: RAT size sweep
    # ------------------------------------------------------------------ #
    rows = [
        {
            "RAT_entries": entries,
            "norm_IPC": round(result.ipc / baseline.ipc, 4),
            "early_refreshes": result.early_refresh_operations,
        }
        for entries, result in zip(RAT_SIZES, rat_results)
    ]
    print(format_table(rows, title=f"RAT size sweep (Figure 7), {WORKLOAD}, NRH={NRH}"))
    print()

    # ------------------------------------------------------------------ #
    # Figure 9: counter reset period (k) sweep
    # ------------------------------------------------------------------ #
    rows = [
        {
            "k": k,
            "NPR": CoMeTConfig(nrh=NRH, reset_period_divider=k).npr,
            "norm_IPC": round(result.ipc / baseline.ipc, 4),
            "preventive_refreshes": result.preventive_refreshes,
        }
        for k, result in zip(RESET_DIVIDERS, reset_results)
    ]
    print(format_table(rows, title=f"Reset period sweep (Figure 9), {WORKLOAD}, NRH={NRH}"))


if __name__ == "__main__":
    main()
