"""Figure 15: 8-core DRAM energy comparison, normalized to no mitigation.

Paper observations reproduced: CoMeT's multi-core DRAM energy overhead is
negligible at NRH = 1K and grows at NRH = 125 (early refresh operations plus
longer execution), but CoMeT still consumes less energy than Hydra and PARA
at every threshold.

The runs are shared with the Figure 13 harness through the simulation cache,
so this file adds no extra simulations.
"""

from _bench_utils import record, run_once
from repro.analysis.reporting import format_table
from repro.sim.metrics import geometric_mean

WORKLOADS = ["429.mcf", "462.libquantum"]
MECHANISMS = ["comet", "graphene", "hydra", "para"]
THRESHOLDS = [1000, 125]
NUM_CORES = 8


def _experiment(sim_cache):
    rows = []
    geomeans = {}
    for nrh in THRESHOLDS:
        for mechanism in MECHANISMS:
            values = []
            for workload in WORKLOADS:
                baseline = sim_cache.multicore_baseline(workload, num_cores=NUM_CORES)
                result = sim_cache.run_multicore(workload, mechanism, nrh, num_cores=NUM_CORES)
                values.append(sim_cache.normalized_energy(result, baseline))
            geomeans[(mechanism, nrh)] = geometric_mean(values)
            rows.append(
                {
                    "nrh": nrh,
                    "mitigation": mechanism,
                    "geomean_norm_energy": round(geomeans[(mechanism, nrh)], 4),
                    "max": round(max(values), 4),
                }
            )
    return rows, geomeans


def test_fig15_multicore_energy(benchmark, sim_cache):
    rows, geomeans = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(rows, title="Figure 15: 8-core normalized DRAM energy")
    record("fig15_multicore_energy", text)

    # Negligible energy overhead at NRH = 1K.
    assert geomeans[("comet", 1000)] < 1.02
    # Energy overhead grows (or stays equal) at NRH = 125.
    assert geomeans[("comet", 125)] >= geomeans[("comet", 1000)] - 1e-6
    # CoMeT consumes no more energy than Hydra and PARA at both thresholds.
    for nrh in THRESHOLDS:
        assert geomeans[("comet", nrh)] <= geomeans[("hydra", nrh)] + 0.005
        assert geomeans[("comet", nrh)] <= geomeans[("para", nrh)] + 0.005
