"""Micro-benchmark: incremental vs. full-rescan ready-queue selection.

Before the policy refactor, every call to ``next_issue_cycle``/``issue_next``
re-bucketed the *entire* read+write queue contents by bank and re-sorted
each bank's requests by arrival — O(queue + banks·k·log k) per command
selection, and selection runs at least once per issued command.  The
policy-driven controller instead maintains an incremental per-bank index
(:class:`repro.controller.controller._BankPending`, updated on enqueue and
retire) and the FR-FCFS policy stops scanning a bank the moment its answer
is determined, so a selection on a deep queue touches only bank heads.

This harness pits the shipped ``_demand_command`` against a faithful inline
replica of the pre-refactor algorithm (`_legacy_demand_command`, the old
``_demand_command``/``_bank_candidate`` pair) on identical controller
state, across queue depths.  Shallow queues must not regress badly; the
deep multi-core-style queues the attack/figure workloads produce must win.
Results land in ``benchmarks/results/BENCH_controller.json`` — the artifact
the CI micro-benchmark job uploads, so the perf trajectory of the hot path
is recorded per commit.
"""

import json
import timeit
from typing import Dict, List, Optional, Tuple

from _bench_utils import RESULTS_DIR
from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest, RequestType
from repro.dram.commands import Command, CommandKind
from repro.dram.config import small_test_config

ARTIFACT = RESULTS_DIR / "BENCH_controller.json"

#: (label, reads, writes) — queue populations per scenario.  ``deep_64r`` is
#: the dominant simulator mode (full multi-core read queue, writes buffered
#: below the drain watermark); ``drain_64r_48w`` adds a write queue at its
#: drain high watermark, so both classes compete.
SCENARIOS = [
    ("shallow_4r", 4, 0),
    ("medium_16r", 16, 0),
    ("deep_64r", 64, 0),
    ("drain_64r_48w", 64, 48),
]


def _populated_controller(num_reads: int, num_writes: int) -> MemoryController:
    """A controller with a deterministic mixed hit/conflict queue load."""
    dram_config = small_test_config(
        rows_per_bank=1024,
        banks_per_bankgroup=2,
        bankgroups_per_rank=2,
        ranks_per_channel=2,
        refresh_window_scale=1.0 / 1024.0,
    )
    controller = MemoryController(dram_config)
    num_banks = dram_config.organization.total_banks

    def request(index: int, write: bool) -> MemoryRequest:
        bank_index = index % num_banks
        # Alternate a per-bank hot row with conflicting cold rows, the
        # FR-FCFS worst case (hit scan plus conflict detection per bank).
        row = 7 if index % 3 else 11 + index % 5
        address = controller.mapper.decode(
            controller.mapper.address_for_row(
                row, bank_index=bank_index, column=8 * (index % 16)
            )
        )
        return MemoryRequest(
            request_type=RequestType.WRITE if write else RequestType.READ,
            address=address,
            core_id=index % 8,
        )

    for index in range(num_reads):
        controller.enqueue(request(index, write=False), index)
    for index in range(num_writes):
        controller.enqueue(request(num_reads + index, write=True), num_reads + index)
    # Open one hot row so the scan sees a mix of open and closed banks.
    controller.issue_next(0)
    return controller


# --------------------------------------------------------------------------- #
# The pre-refactor algorithm, verbatim (rebucket + sort per call)
# --------------------------------------------------------------------------- #
def _legacy_bank_candidate(
    controller: MemoryController,
    bank_key: Tuple[int, int, int, int],
    requests: List[MemoryRequest],
    cycle: int,
) -> Optional[Tuple[int, Command, MemoryRequest]]:
    channel, rank_id, bankgroup, bank_id = bank_key
    bank = controller.dram.bank(channel, rank_id, bankgroup, bank_id)
    requests = sorted(requests, key=lambda r: (r.arrival_cycle, r.request_id))

    if bank.is_closed():
        request = requests[0]
        command = Command(
            CommandKind.ACT,
            channel=channel,
            rank=rank_id,
            bankgroup=bankgroup,
            bank=bank_id,
            row=request.address.row,
        )
        return controller.dram.earliest_issue_cycle(command, cycle), command, request

    open_row = bank.open_row
    row_hits = [r for r in requests if r.address.row == open_row]
    cap_reached = bank.open_row_column_accesses >= controller.config.column_cap
    has_conflict = any(r.address.row != open_row for r in requests)

    if row_hits and not (cap_reached and has_conflict):
        request = row_hits[0]
        kind = CommandKind.WR if request.is_write else CommandKind.RD
        command = Command(
            kind,
            channel=channel,
            rank=rank_id,
            bankgroup=bankgroup,
            bank=bank_id,
            column=request.address.column,
        )
        return controller.dram.earliest_issue_cycle(command, cycle), command, request

    conflicting = [r for r in requests if r.address.row != open_row]
    if not conflicting:
        return None
    request = conflicting[0]
    command = Command(
        CommandKind.PRE, channel=channel, rank=rank_id, bankgroup=bankgroup, bank=bank_id
    )
    return controller.dram.earliest_issue_cycle(command, cycle), command, request


def _legacy_demand_command(controller: MemoryController, cycle: int):
    controller._update_drain_mode()
    queues: List[List[MemoryRequest]] = []
    if controller.read_queue:
        queues.append(controller.read_queue)
    if controller.write_queue and (
        controller._draining_writes or not controller.read_queue
    ):
        queues.append(controller.write_queue)
    if not queues:
        return None

    by_bank: Dict[Tuple[int, int, int, int], List[MemoryRequest]] = {}
    for queue in queues:
        for request in queue:
            by_bank.setdefault(request.address.bank_key, []).append(request)

    best = None
    for bank_key, requests in by_bank.items():
        candidate = _legacy_bank_candidate(controller, bank_key, requests, cycle)
        if candidate is None:
            continue
        issue_cycle, command, request = candidate
        order = (issue_cycle, request.arrival_cycle)
        if best is None or order < (best[0], best[1]):
            best = (issue_cycle, request.arrival_cycle, command, request)
    if best is None:
        return None
    return best[0], best[2], best[3]


def _measure(fn, rounds: int = 400) -> float:
    return min(timeit.repeat(fn, number=rounds, repeat=5))


def test_micro_ready_queue_selection(benchmark):
    artifact = {"rounds": 400, "scenarios": {}}
    for label, num_reads, num_writes in SCENARIOS:
        controller = _populated_controller(num_reads, num_writes)
        cycle = controller.current_cycle + 1
        # Same state, same answer: the refactor must agree with the legacy
        # algorithm before its timing means anything.
        new = controller._demand_command(cycle)
        old = _legacy_demand_command(controller, cycle)
        assert (new[0], new[1], new[2]) == (old[0], old[1], old[2])

        incremental_s = _measure(lambda: controller._demand_command(cycle))
        legacy_s = _measure(lambda: _legacy_demand_command(controller, cycle))
        speedup = legacy_s / incremental_s
        artifact["scenarios"][label] = {
            "queue_depth": num_reads + num_writes,
            "legacy_seconds": legacy_s,
            "incremental_seconds": incremental_s,
            "speedup_x": speedup,
        }

    benchmark(_populated_controller(64, 0)._demand_command, 1)

    # JSON is the single artifact now (the old bench_controller.txt twin was
    # dropped): one machine-readable file per harness, uploaded by CI.
    RESULTS_DIR.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    speedups = {
        label: scenario["speedup_x"]
        for label, scenario in artifact["scenarios"].items()
    }
    # Deep queues are the point of the refactor (~1.6x / ~1.9x measured on
    # an idle machine): the incremental index must win clearly there.  The
    # shallow/medium gates only guard against a real regression — they get
    # generous noise margins so a loaded CI runner cannot flake the job.
    assert speedups["deep_64r"] > 1.25
    assert speedups["drain_64r_48w"] > 1.2
    assert speedups["medium_16r"] > 0.8
    assert speedups["shallow_4r"] > 0.5
