"""Figure 14: single-core DRAM energy of CoMeT vs the state of the art.

Paper observations reproduced as assertions: CoMeT consumes less DRAM energy
than Hydra, REGA and PARA on average at every threshold, and stays within a
percent or two of Graphene.
"""

from _bench_utils import THRESHOLDS, bench_workloads, record, run_once
from repro.analysis.reporting import format_table
from repro.sim.metrics import geometric_mean

MECHANISMS = ["comet", "graphene", "hydra", "rega", "para"]


def _experiment(sim_cache):
    workloads = bench_workloads()
    rows = []
    geomeans = {}
    for nrh in THRESHOLDS:
        for mechanism in MECHANISMS:
            normalized = []
            for workload in workloads:
                baseline = sim_cache.baseline(workload)
                result = sim_cache.run(workload, mechanism, nrh)
                normalized.append(sim_cache.normalized_energy(result, baseline))
            geomeans[(mechanism, nrh)] = geometric_mean(normalized)
            rows.append(
                {
                    "nrh": nrh,
                    "mitigation": mechanism,
                    "geomean_norm_energy": round(geomeans[(mechanism, nrh)], 4),
                    "max_norm_energy": round(max(normalized), 4),
                }
            )
    return rows, geomeans


def test_fig14_energy_comparison(benchmark, sim_cache):
    rows, geomeans = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(
        rows, title="Figure 14: normalized DRAM energy, CoMeT vs state-of-the-art"
    )
    record("fig14_energy_comparison", text)

    for nrh in THRESHOLDS:
        comet = geomeans[("comet", nrh)]
        # CoMeT at or below Hydra / PARA energy at every threshold.
        assert comet <= geomeans[("hydra", nrh)] + 0.002
        assert comet <= geomeans[("para", nrh)] + 0.002
        # Close to Graphene everywhere.
        assert abs(comet - geomeans[("graphene", nrh)]) < 0.03
    # At the lowest threshold PARA's probabilistic refreshes cost clearly more.
    assert geomeans[("para", 125)] > geomeans[("comet", 125)]
