"""Figure 7: Recent Aggressor Table size sweep.

Paper observations: for benign workloads, growing the RAT beyond 128 entries
does not improve performance, and the RAT matters most at low thresholds
where more rows reach the preventive refresh threshold.  To expose the
low-end penalty (RAT thrashing) within a scaled simulation, the sweep is also
run against the RAT-thrashing attack trace, where an undersized RAT causes
evictions, capacity misses and early preventive refreshes.
"""

from _bench_utils import bench_workloads, record, run_once
from repro.analysis.reporting import format_table
from repro.core.config import CoMeTConfig
from repro.experiment.spec import ExperimentSpec, MitigationSpec, WorkloadSpec

RAT_SIZES = [4, 32, 128, 512]
NRH = 125


def _experiment(sim_cache):
    rows = []
    benign_ipc = {}
    attack_evictions = {}

    workload = bench_workloads()[0]
    baseline = sim_cache.baseline(workload)
    attack_workload = WorkloadSpec(
        name="attack_comet_targeted",
        num_requests=6000,
        params={"distinct_rows": 48, "npr": CoMeTConfig(nrh=NRH).npr},
    )

    for rat_entries in RAT_SIZES:
        config = CoMeTConfig(nrh=NRH, rat_entries=rat_entries)
        benign = sim_cache.run(
            workload,
            "comet",
            NRH,
            overrides={"config": config},
            overrides_key=f"rat_{rat_entries}",
        )
        benign_ipc[rat_entries] = sim_cache.normalized_ipc(benign, baseline)

        attack = sim_cache.simulate(
            ExperimentSpec(
                workload=attack_workload,
                mitigation=MitigationSpec(
                    name="comet", nrh=NRH, overrides={"config": config}
                ),
            )
        )
        attack_evictions[rat_entries] = attack.mitigation_stats.get("rat_evictions", 0)
        rows.append(
            {
                "RAT_entries": rat_entries,
                "benign_norm_IPC": round(benign_ipc[rat_entries], 4),
                "attack_rat_evictions": attack_evictions[rat_entries],
                "attack_early_refreshes": attack.early_refresh_operations,
                "attack_secure": attack.security_ok,
            }
        )
    return rows, benign_ipc, attack_evictions


def test_fig7_rat_sweep(benchmark, sim_cache):
    rows, benign_ipc, attack_evictions = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(rows, title=f"Figure 7: RAT size sweep at NRH = {NRH}")
    record("fig7_rat_sweep", text)

    # Benign workloads: a 128-entry RAT is as good as a 512-entry one, and no
    # worse than the undersized ones (paper: >=128 entries is the plateau).
    assert abs(benign_ipc[128] - benign_ipc[512]) < 0.01
    assert benign_ipc[128] >= benign_ipc[4] - 0.005

    # Under the RAT-thrashing attack, undersized RATs evict far more entries.
    assert attack_evictions[4] >= attack_evictions[128]
    assert attack_evictions[4] > 0
    # Every configuration stayed secure.
    assert all(row["attack_secure"] for row in rows)
