"""End-to-end benchmark: the whole-run hot path, legacy vs fast, in-process.

The SoA bank-timing fast path (:mod:`repro.dram.bank`'s shared
:class:`BankTimingTable` plus the controller's fused fast select
scan) and the kernel's untouched-channel event skip
(:meth:`repro.sim.engine.EventKernel._schedule_controller`) are both
latched from :mod:`repro.fastpath` at component construction time.  That
makes a same-process A/B possible: build and run the identical experiment
once inside ``fastpath.forced(False)`` (every fast path off — the legacy
per-event recompute) and once inside ``fastpath.forced(True)``, time the
whole runs, and demand bit-identical :class:`SimulationResult` contents
before the timings mean anything.

Three whole-run scenarios cover the simulator's load profiles:

* ``single_core_attack`` — the traditional RowHammer attack under CoMeT
  with full violation-recording verification (the ``repro attack`` shape);
* ``multicore_benign_4c2ch`` — a 4-core 429.mcf mix on a 2-channel fabric
  (the figure-13 shape, and the headline gate: the fast path must win
  >= 1.5x here);
* ``audit_streaming`` — an adversarial synth pattern with the cheap
  streaming verifier (the audit campaigns' shape).

A fourth scenario, ``sampled_vs_full``, gates the sampled-fidelity executor
(:mod:`repro.sim.sampled`): a long benign run must be >= 3x faster in
sampled mode with IPC and max_disturbance inside the documented error
bounds.  (The floor was 5x before the fused fast path cut the *full* run's
time — the ratio's denominator — nearly in half.)

A fifth scenario, ``campaign_warm_pool``, gates the shared warm worker
pool (:mod:`repro.sim.pool`): a burst of consecutive short sweeps through
the shared pool must never lose to the old per-run pool construction it
replaced (and wins ~1.2x on fork platforms; much more where workers are
spawned).

Results land in ``benchmarks/results/BENCH_kernel.json``; the committed
copy is the CI baseline (the micro-benchmark job re-measures and fails if
the headline scenario regresses more than 20% against it).
"""

import json
import time

import pytest

from _bench_utils import RESULTS_DIR, run_once
from repro import fastpath
from repro.experiment.execute import execute_spec
from repro.experiment.spec import (
    ExperimentSpec,
    MitigationSpec,
    PlatformSpec,
    SampledConfig,
    WorkloadSpec,
)

ARTIFACT = RESULTS_DIR / "BENCH_kernel.json"

#: Best-of-N whole runs per mode; the first run also warms the per-process
#: trace memo, so trace synthesis never lands in one mode's timing only.
REPEATS = 2

#: (label, spec, speedup floor).  The multi-core benign mix is the point of
#: the fast path (~2x measured on an idle machine); the attack run must
#: still win clearly.  The streaming-audit run has the least skippable idle
#: time (one hammered channel, short decision distances), so its win has to
#: come from per-event cost instead: the fused select
#: (:meth:`~repro.controller.controller.MemoryController._build_fast_select`),
#: the fused issue+bookkeeping closure (``_build_fast_issue``) and the
#: kernel's inlined fast loop (``EventKernel._run_fast``) together measure
#: ~1.6x on an idle machine, and its floor holds the headline >= 1.5x gate
#: from the issue on exactly the audit-campaign shape.
SCENARIOS = [
    (
        "single_core_attack",
        ExperimentSpec(
            workload=WorkloadSpec(name="attack_traditional", num_requests=6000),
            mitigation=MitigationSpec(name="comet", nrh=125),
            verify_security=True,
        ),
        1.1,
    ),
    (
        "multicore_benign_4c2ch",
        ExperimentSpec(
            workload=WorkloadSpec(name="429.mcf", num_requests=1500, num_cores=4),
            mitigation=MitigationSpec(name="comet", nrh=250),
            platform=PlatformSpec(channels=2),
            verify_security=True,
        ),
        1.5,
    ),
    (
        "audit_streaming",
        ExperimentSpec(
            workload=WorkloadSpec(name="synth_blacksmith", num_requests=6000),
            mitigation=MitigationSpec(name="comet", nrh=125),
            verify_security="streaming",
        ),
        1.5,
    ),
]

#: The sampled-fidelity gate: a long benign run must be at least this much
#: faster in sampled mode than in full fidelity while staying within the
#: error bounds below (the tolerances mirror tests/test_sampled_fidelity.py).
#: Both modes run with the fast path on, so every detailed-path speedup
#: *shrinks* this ratio (the fused select/issue work took the full run from
#: ~5.9x to ~3.6x slower than sampled); the floor tracks the denominator.
SAMPLED_SPEEDUP_FLOOR = 3.0
SAMPLED_IPC_TOLERANCE = 0.15
SAMPLED_DISTURBANCE_TOLERANCE = 0.5

_SAMPLED_BASE = dict(
    workload=WorkloadSpec(name="synth_uniform", num_requests=60000),
    mitigation=MitigationSpec(name="comet", nrh=500),
    verify_security=True,
)
SAMPLED_FULL_SPEC = ExperimentSpec(**_SAMPLED_BASE)
SAMPLED_SPEC = ExperimentSpec(
    **_SAMPLED_BASE,
    fidelity="sampled",
    sampled=SampledConfig(interval=8000, detailed_window=250, warmup=250),
)


def _timed_run(spec, fast):
    """Best-of-REPEATS wall time of one whole run; returns (seconds, result)."""
    best, result = float("inf"), None
    for _ in range(REPEATS):
        with fastpath.forced(fast):
            start = time.perf_counter()
            result = execute_spec(spec)
            best = min(best, time.perf_counter() - start)
    return best, result


def test_e2e_kernel_speedup(benchmark):
    artifact = {"repeats": REPEATS, "scenarios": {}}
    floors = {}
    for label, spec, floor in SCENARIOS:
        legacy_seconds, legacy = _timed_run(spec, fast=False)
        fast_seconds, fast = _timed_run(spec, fast=True)
        # Same experiment, same answer: the fast path is only a fast path if
        # every field of the result — cycles, per-core IPC, DRAM and
        # mitigation statistics, verifier verdict — is bit-identical.
        assert fast.__dict__ == legacy.__dict__, f"{label}: fast path diverged"
        speedup = legacy_seconds / fast_seconds
        artifact["scenarios"][label] = {
            "legacy_seconds": legacy_seconds,
            "fast_seconds": fast_seconds,
            "speedup_x": speedup,
            "cycles": fast.cycles,
            "steps": fast.steps,
        }
        floors[label] = (speedup, floor)

    run_once(benchmark, lambda: execute_spec(SCENARIOS[0][1]))

    RESULTS_DIR.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    for label, (speedup, floor) in floors.items():
        assert speedup > floor, (
            f"{label}: whole-run speedup {speedup:.2f}x under the {floor}x floor"
        )


#: The warm-pool gate: a burst of short consecutive sweeps reusing the
#: shared pool must never lose to rebuilding the pool per run.  The floor is
#: deliberately "not a loss" rather than a win: on fork platforms (Linux CI)
#: pool construction is only process spawn, so the measured ~1.2x win sits
#: close enough to timing noise that a harder floor would flake.
WARM_POOL_FLOOR = 1.0
WARM_POOL_RUNS = 6
WARM_POOL_CELLS = 2
WARM_POOL_REQUESTS = 200


def _warm_pool_specs(tag):
    return [
        ExperimentSpec(
            workload=WorkloadSpec(
                name="synth_uniform",
                num_requests=WARM_POOL_REQUESTS,
                seed=100 * tag + s,
            ),
            mitigation=MitigationSpec(name="comet", nrh=250),
            verify_security="streaming",
        )
        for s in range(WARM_POOL_CELLS)
    ]


def test_campaign_warm_pool():
    """Consecutive short sweeps must not pay pool construction per run.

    Models the audit-campaign steady state: many short cells arriving in
    bursts.  "Cold" tears the shared pool down between bursts (the old
    one-pool-per-``run()`` behaviour); "warm" reuses it the way
    ``SweepRunner``/``CampaignRunner`` now do.  Cell results are identical
    either way — workers rebuild the whole system per cell — so only the
    wall clock may differ.
    """
    from repro.sim.pool import shutdown_shared_pool
    from repro.sim.sweep import SweepRunner

    runner = SweepRunner(max_workers=2, use_cache=False)
    runner.run(_warm_pool_specs(999))  # warm the per-process trace memo

    cold_seconds = 0.0
    for i in range(WARM_POOL_RUNS):
        shutdown_shared_pool()
        start = time.perf_counter()
        runner.run(_warm_pool_specs(i))
        cold_seconds += time.perf_counter() - start
    warm_seconds = 0.0
    for i in range(WARM_POOL_RUNS):
        start = time.perf_counter()
        runner.run(_warm_pool_specs(100 + i))
        warm_seconds += time.perf_counter() - start
    speedup = cold_seconds / warm_seconds

    artifact = (
        json.loads(ARTIFACT.read_text())
        if ARTIFACT.exists()
        else {"repeats": REPEATS, "scenarios": {}}
    )
    artifact["scenarios"]["campaign_warm_pool"] = {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup_x": speedup,
        "runs": WARM_POOL_RUNS,
        "cells_per_run": WARM_POOL_CELLS,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    assert speedup > WARM_POOL_FLOOR, (
        f"campaign_warm_pool: warm-pool sweeps {speedup:.2f}x vs per-run pools "
        f"under the {WARM_POOL_FLOOR}x floor"
    )


def test_sampled_vs_full_speedup():
    """Sampled fidelity must buy a real speedup on the shape it exists for.

    A long benign run (the sweep-campaign steady state) in sampled mode must
    beat the full-fidelity run by at least ``SAMPLED_SPEEDUP_FLOOR`` while
    IPC and max_disturbance stay within the documented error bounds and the
    security verdict is unchanged.  The measurement lands in the same
    BENCH_kernel.json artifact as the fast-path scenarios.
    """
    full_seconds, full = _timed_run(SAMPLED_FULL_SPEC, fast=True)
    sampled_seconds, sampled = _timed_run(SAMPLED_SPEC, fast=True)
    speedup = full_seconds / sampled_seconds
    ipc_error = abs(sampled.ipc - full.ipc) / full.ipc

    artifact = (
        json.loads(ARTIFACT.read_text())
        if ARTIFACT.exists()
        else {"repeats": REPEATS, "scenarios": {}}
    )
    artifact["scenarios"]["sampled_vs_full"] = {
        "full_seconds": full_seconds,
        "sampled_seconds": sampled_seconds,
        "speedup_x": speedup,
        "ipc_error": ipc_error,
        "full_max_disturbance": full.max_disturbance,
        "sampled_max_disturbance": sampled.max_disturbance,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    assert sampled.security_ok == full.security_ok
    assert ipc_error < SAMPLED_IPC_TOLERANCE, (
        f"sampled IPC error {ipc_error:.3f} over tolerance"
    )
    assert sampled.max_disturbance == pytest.approx(
        full.max_disturbance, rel=SAMPLED_DISTURBANCE_TOLERANCE, abs=2
    )
    assert speedup > SAMPLED_SPEEDUP_FLOOR, (
        f"sampled_vs_full speedup {speedup:.2f}x under the "
        f"{SAMPLED_SPEEDUP_FLOOR}x floor"
    )
