"""Figure 12: single-core performance of CoMeT vs the state of the art.

Paper observations reproduced as assertions:

1. CoMeT performs similarly to Graphene at every threshold (within 1.75% on
   average at NRH = 125).
2. CoMeT outperforms Hydra below NRH = 1K (up to 39% at 125 in the paper).
3. PARA is the most expensive mechanism at very low thresholds.
4. REGA's overhead grows as the threshold drops (tRC inflation).

The harness prints the normalized-IPC distribution summary (min / quartiles /
median / max / geomean) per mechanism and threshold, the same statistics the
paper's box plot encodes.
"""

from _bench_utils import THRESHOLDS, bench_workloads, record, run_once
from repro.analysis.reporting import format_table
from repro.sim.metrics import geometric_mean, summarize_distribution

MECHANISMS = ["comet", "graphene", "hydra", "rega", "para"]


def _experiment(sim_cache):
    workloads = bench_workloads()
    rows = []
    geomeans = {}
    for nrh in THRESHOLDS:
        for mechanism in MECHANISMS:
            normalized = []
            for workload in workloads:
                baseline = sim_cache.baseline(workload)
                result = sim_cache.run(workload, mechanism, nrh)
                normalized.append(sim_cache.normalized_ipc(result, baseline))
            summary = summarize_distribution(normalized)
            geomeans[(mechanism, nrh)] = geometric_mean(normalized)
            rows.append(
                {
                    "nrh": nrh,
                    "mitigation": mechanism,
                    "min": round(summary["min"], 4),
                    "median": round(summary["median"], 4),
                    "max": round(summary["max"], 4),
                    "geomean": round(geomeans[(mechanism, nrh)], 4),
                }
            )
    return rows, geomeans


def test_fig12_singlecore_comparison(benchmark, sim_cache):
    rows, geomeans = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(
        rows, title="Figure 12: normalized IPC distribution, CoMeT vs state-of-the-art"
    )
    record("fig12_singlecore_comparison", text)

    # (1) CoMeT tracks Graphene closely at every threshold.
    for nrh in THRESHOLDS:
        assert abs(geomeans[("comet", nrh)] - geomeans[("graphene", nrh)]) < 0.03

    # (2) CoMeT outperforms Hydra below NRH = 1K.
    for nrh in (500, 250, 125):
        assert geomeans[("comet", nrh)] >= geomeans[("hydra", nrh)] - 0.005
    assert geomeans[("comet", 125)] > geomeans[("hydra", 125)]

    # (3) PARA is the most expensive mechanism at NRH = 125.
    assert geomeans[("para", 125)] <= min(
        geomeans[(m, 125)] for m in ("comet", "graphene", "hydra")
    )

    # (4) REGA's overhead grows as the threshold drops.
    assert geomeans[("rega", 125)] <= geomeans[("rega", 1000)] + 1e-9
    assert geomeans[("rega", 1000)] > 0.99
