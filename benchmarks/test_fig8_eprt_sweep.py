"""Figure 8: early-preventive-refresh threshold (EPRT) and history length sweep.

Paper observations (8-core, NRH = 125): a very low EPRT triggers early
preventive refreshes too eagerly (costly rank-wide refreshes), a very high
EPRT almost never triggers them (so RAT-thrashing workloads keep paying for
unnecessary per-row preventive refreshes); 25% of a 256-entry history vector
is the chosen balance.

Adaptation (EXPERIMENTS.md): instead of 8-core memory-intensive mixes, the
scaled harness stresses the RAT with the RAT-thrashing attack trace, which
produces the same capacity-miss pressure that drives this mechanism, at a
fraction of the simulation cost.
"""

from _bench_utils import record, run_once
from repro.analysis.reporting import format_table
from repro.core.config import CoMeTConfig
from repro.experiment.spec import ExperimentSpec, MitigationSpec, WorkloadSpec

NRH = 125
SETTINGS = [
    # (history length, EPRT fraction)
    (64, 0.02),
    (256, 0.25),
    (256, 1.00),
]


def _experiment(sim_cache):
    attack_workload = WorkloadSpec(
        name="attack_comet_targeted",
        num_requests=8000,
        params={"distinct_rows": 48, "npr": CoMeTConfig(nrh=NRH).npr},
    )
    rows = []
    early_counts = {}
    for history, fraction in SETTINGS:
        config = CoMeTConfig(
            nrh=NRH,
            rat_entries=32,
            rat_miss_history_length=history,
            early_refresh_threshold_fraction=fraction,
        )
        result = sim_cache.simulate(
            ExperimentSpec(
                workload=attack_workload,
                mitigation=MitigationSpec(
                    name="comet", nrh=NRH, overrides={"config": config}
                ),
            )
        )
        early_counts[(history, fraction)] = result.early_refresh_operations
        rows.append(
            {
                "history_length": history,
                "EPRT_fraction": fraction,
                "early_refreshes": result.early_refresh_operations,
                "preventive_refreshes": result.preventive_refreshes,
                "refresh_commands": result.dram_stats["refreshes"],
                "secure": result.security_ok,
            }
        )
    return rows, early_counts


def test_fig8_eprt_sweep(benchmark, sim_cache):
    rows, early_counts = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(
        rows, title=f"Figure 8: EPRT / RAT-miss-history sweep under RAT-thrashing attack (NRH={NRH})"
    )
    record("fig8_eprt_sweep", text)

    # A permissive EPRT (100%) performs no early refreshes; an aggressive one
    # (2% of a short history) performs at least as many as the default 25%.
    assert early_counts[(256, 1.00)] <= early_counts[(256, 0.25)]
    assert early_counts[(64, 0.02)] >= early_counts[(256, 0.25)]
    # The aggressive setting must fire under this attack (the RAT thrashes).
    assert early_counts[(64, 0.02)] > 0
    # All configurations remain secure.
    assert all(row["secure"] for row in rows)
