"""Section 8.4: CoMeT at high RowHammer thresholds (NRH = 2K and 4K).

Paper observation: CoMeT's average performance overhead is negligible at high
thresholds (0.015% at NRH = 2000, 0.0053% at NRH = 4000), because essentially
no benign row ever reaches the preventive refresh threshold.
"""

from _bench_utils import bench_workloads, record, run_once
from repro.analysis.reporting import format_table
from repro.sim.metrics import geometric_mean

HIGH_THRESHOLDS = [2000, 4000]


def _experiment(sim_cache):
    rows = []
    geomeans = {}
    for nrh in HIGH_THRESHOLDS:
        normalized = []
        preventive = 0
        for workload in bench_workloads():
            baseline = sim_cache.baseline(workload)
            result = sim_cache.run(workload, "comet", nrh)
            normalized.append(sim_cache.normalized_ipc(result, baseline))
            preventive += result.preventive_refreshes
        geomeans[nrh] = geometric_mean(normalized)
        rows.append(
            {
                "nrh": nrh,
                "geomean_norm_IPC": round(geomeans[nrh], 5),
                "total_preventive_refreshes": preventive,
            }
        )
    return rows, geomeans


def test_sec84_high_thresholds(benchmark, sim_cache):
    rows, geomeans = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(rows, title="Section 8.4: CoMeT at high RowHammer thresholds")
    record("sec84_high_nrh", text)

    # Negligible overhead at high thresholds.
    for nrh in HIGH_THRESHOLDS:
        assert geomeans[nrh] > 0.995
