"""Figure 16: performance of benign applications under RowHammer attacks.

Two scenarios from Section 8.2, both run as two-core mixes (one benign core,
one attacker core) at NRH = 500 (traditional attack, as in the paper) and
NRH = 125 (targeted attacks):

(a) a traditional many-row RowHammer attack running alongside a benign
    workload — CoMeT's overhead on the benign application stays small and
    below PARA's;
(b) mechanism-targeted attacks — a RAT-thrashing attack against CoMeT and a
    group-counter-saturation attack against Hydra.  The two attack traces
    have very different intrinsic memory contention (the RAT-thrasher
    serializes on a single bank and starves the benign core even with *no*
    mitigation attached), so each mechanism's benign-core IPC is normalized
    to the same mix under the unprotected baseline: the normalized value
    isolates the *mitigation-induced* slowdown, which is what the paper
    compares (CoMeT's bounded worst case beats Hydra's counter traffic).

Every protected run must remain secure (no victim row reaches NRH aggressor
activations without a refresh).
"""

from _bench_utils import MULTICORE_REQUESTS, record, run_once
from repro.analysis.reporting import format_table
from repro.core.config import CoMeTConfig
from repro.experiment.spec import ExperimentSpec, MitigationSpec, WorkloadSpec

BENIGN = "429.mcf"
TRADITIONAL_NRH = 500
TARGETED_NRH = 125
MECHANISMS_A = ["none", "comet", "graphene", "hydra", "para"]


def _mix(attack_name: str, **attack_params) -> WorkloadSpec:
    """One benign core plus one attacker core (the Figure 16 pattern)."""
    requests = MULTICORE_REQUESTS * 2
    return WorkloadSpec(
        name=f"{BENIGN}+{attack_name}",
        num_requests=requests,
        mix=(
            WorkloadSpec(name=BENIGN, num_requests=requests),
            WorkloadSpec(name=attack_name, num_requests=requests, params=attack_params),
        ),
    )


def _benign_plus_attack(sim_cache, mix_workload, mechanism, nrh):
    return sim_cache.simulate(
        ExperimentSpec(
            workload=mix_workload,
            mitigation=MitigationSpec(name=mechanism, nrh=nrh),
            verify_security=mechanism != "none",
        )
    )


def _experiment(sim_cache):
    rows_a = []
    benign_ipc_a = {}
    traditional = _mix("attack_traditional", aggressor_rows_per_bank=2)
    for mechanism in MECHANISMS_A:
        result = _benign_plus_attack(sim_cache, traditional, mechanism, TRADITIONAL_NRH)
        benign_ipc_a[mechanism] = result.per_core_ipc[0]
        rows_a.append(
            {
                "mitigation": mechanism,
                "benign_core_IPC": round(result.per_core_ipc[0], 4),
                "norm_to_unprotected": 1.0,
                "secure": result.security_ok if mechanism != "none" else False,
            }
        )
    for row in rows_a:
        row["norm_to_unprotected"] = round(
            row["benign_core_IPC"] / benign_ipc_a["none"], 4
        ) if benign_ipc_a["none"] else 0.0

    # (b) mechanism-targeted attacks.  Each targeted mix also runs under the
    # unprotected baseline so the mechanisms' benign-core slowdowns can be
    # compared on equal footing (the two attack traces contend differently).
    npr = CoMeTConfig(nrh=TARGETED_NRH).npr
    comet_mix = _mix("attack_comet_targeted", distinct_rows=64, npr=npr)
    hydra_mix = _mix("attack_hydra_targeted")
    comet_result = _benign_plus_attack(sim_cache, comet_mix, "comet", TARGETED_NRH)
    hydra_result = _benign_plus_attack(sim_cache, hydra_mix, "hydra", TARGETED_NRH)
    comet_unprot = _benign_plus_attack(sim_cache, comet_mix, "none", TARGETED_NRH)
    hydra_unprot = _benign_plus_attack(sim_cache, hydra_mix, "none", TARGETED_NRH)
    norm_b = {
        "comet": (
            comet_result.per_core_ipc[0] / comet_unprot.per_core_ipc[0]
            if comet_unprot.per_core_ipc[0]
            else 0.0
        ),
        "hydra": (
            hydra_result.per_core_ipc[0] / hydra_unprot.per_core_ipc[0]
            if hydra_unprot.per_core_ipc[0]
            else 0.0
        ),
    }
    rows_b = [
        {
            "mitigation": "comet (RAT-thrashing attack)",
            "benign_core_IPC": round(comet_result.per_core_ipc[0], 4),
            "norm_to_unprotected": round(norm_b["comet"], 4),
            "secure": comet_result.security_ok,
            "early_refreshes": comet_result.early_refresh_operations,
        },
        {
            "mitigation": "hydra (group-counter attack)",
            "benign_core_IPC": round(hydra_result.per_core_ipc[0], 4),
            "norm_to_unprotected": round(norm_b["hydra"], 4),
            "secure": hydra_result.security_ok,
            "early_refreshes": 0,
        },
    ]
    return rows_a, rows_b, benign_ipc_a, norm_b, comet_result, hydra_result


def test_fig16_adversarial_workloads(benchmark, sim_cache):
    rows_a, rows_b, benign_ipc_a, norm_b, comet_result, hydra_result = run_once(
        benchmark, lambda: _experiment(sim_cache)
    )
    text_a = format_table(
        rows_a, title=f"Figure 16a: benign IPC alongside a traditional attack (NRH={TRADITIONAL_NRH})"
    )
    text_b = format_table(
        rows_b, title=f"Figure 16b: benign IPC alongside mechanism-targeted attacks (NRH={TARGETED_NRH})"
    )
    record("fig16_adversarial_workloads", text_a + "\n\n" + text_b)

    # Every protected configuration defends the attack.
    for row in rows_a:
        if row["mitigation"] != "none":
            assert row["secure"], f"{row['mitigation']} was not secure under attack"
    assert comet_result.security_ok and hydra_result.security_ok

    # (a) CoMeT's benign-core slowdown under attack is no worse than PARA's.
    assert benign_ipc_a["comet"] >= benign_ipc_a["para"] - 1e-6
    # (b) Normalized to the same attack mix without protection, CoMeT slows
    # the benign core no more under its targeted attack than Hydra does under
    # Hydra's (the paper's Figure 16b ordering).
    assert norm_b["comet"] >= norm_b["hydra"] - 1e-6
