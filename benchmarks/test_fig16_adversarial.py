"""Figure 16: performance of benign applications under RowHammer attacks.

Two scenarios from Section 8.2, both run as two-core mixes (one benign core,
one attacker core) at NRH = 500 (traditional attack, as in the paper) and
NRH = 125 (targeted attacks):

(a) a traditional many-row RowHammer attack running alongside a benign
    workload — CoMeT's overhead on the benign application stays small and
    below PARA's;
(b) mechanism-targeted attacks — a RAT-thrashing attack against CoMeT and a
    group-counter-saturation attack against Hydra — where the paper reports
    CoMeT outperforming Hydra by 42.1% on average.

Every protected run must remain secure (no victim row reaches NRH aggressor
activations without a refresh).
"""

from _bench_utils import MULTICORE_REQUESTS, record, run_once
from repro.analysis.reporting import format_table
from repro.core.config import CoMeTConfig
from repro.sim.runner import run_multi_core
from repro.workloads.attacks import (
    comet_targeted_attack,
    hydra_targeted_attack,
    traditional_rowhammer_attack,
)
from repro.workloads.suite import build_trace

BENIGN = "429.mcf"
TRADITIONAL_NRH = 500
TARGETED_NRH = 125
MECHANISMS_A = ["none", "comet", "graphene", "hydra", "para"]


def _benign_plus_attack(sim_cache, attack_trace, mechanism, nrh):
    benign_trace = build_trace(
        BENIGN, num_requests=MULTICORE_REQUESTS * 2, dram_config=sim_cache.dram_config
    )
    result = run_multi_core(
        [benign_trace, attack_trace],
        mechanism,
        nrh=nrh,
        dram_config=sim_cache.dram_config,
        verify_security=mechanism != "none",
        name=f"{BENIGN}+{attack_trace.name}",
    )
    return result


def _experiment(sim_cache):
    rows_a = []
    benign_ipc_a = {}
    traditional = traditional_rowhammer_attack(
        num_requests=MULTICORE_REQUESTS * 2,
        dram_config=sim_cache.dram_config,
        aggressor_rows_per_bank=2,
    )
    for mechanism in MECHANISMS_A:
        result = _benign_plus_attack(sim_cache, traditional, mechanism, TRADITIONAL_NRH)
        benign_ipc_a[mechanism] = result.per_core_ipc[0]
        rows_a.append(
            {
                "mitigation": mechanism,
                "benign_core_IPC": round(result.per_core_ipc[0], 4),
                "norm_to_unprotected": 1.0,
                "secure": result.security_ok if mechanism != "none" else False,
            }
        )
    for row in rows_a:
        row["norm_to_unprotected"] = round(
            row["benign_core_IPC"] / benign_ipc_a["none"], 4
        ) if benign_ipc_a["none"] else 0.0

    # (b) mechanism-targeted attacks.
    npr = CoMeTConfig(nrh=TARGETED_NRH).npr
    comet_attack = comet_targeted_attack(
        num_requests=MULTICORE_REQUESTS * 2,
        distinct_rows=64,
        npr=npr,
        dram_config=sim_cache.dram_config,
    )
    hydra_attack = hydra_targeted_attack(
        num_requests=MULTICORE_REQUESTS * 2, dram_config=sim_cache.dram_config
    )
    comet_result = _benign_plus_attack(sim_cache, comet_attack, "comet", TARGETED_NRH)
    hydra_result = _benign_plus_attack(sim_cache, hydra_attack, "hydra", TARGETED_NRH)
    rows_b = [
        {
            "mitigation": "comet (RAT-thrashing attack)",
            "benign_core_IPC": round(comet_result.per_core_ipc[0], 4),
            "secure": comet_result.security_ok,
            "early_refreshes": comet_result.early_refresh_operations,
        },
        {
            "mitigation": "hydra (group-counter attack)",
            "benign_core_IPC": round(hydra_result.per_core_ipc[0], 4),
            "secure": hydra_result.security_ok,
            "early_refreshes": 0,
        },
    ]
    return rows_a, rows_b, benign_ipc_a, comet_result, hydra_result


def test_fig16_adversarial_workloads(benchmark, sim_cache):
    rows_a, rows_b, benign_ipc_a, comet_result, hydra_result = run_once(
        benchmark, lambda: _experiment(sim_cache)
    )
    text_a = format_table(
        rows_a, title=f"Figure 16a: benign IPC alongside a traditional attack (NRH={TRADITIONAL_NRH})"
    )
    text_b = format_table(
        rows_b, title=f"Figure 16b: benign IPC alongside mechanism-targeted attacks (NRH={TARGETED_NRH})"
    )
    record("fig16_adversarial_workloads", text_a + "\n\n" + text_b)

    # Every protected configuration defends the attack.
    for row in rows_a:
        if row["mitigation"] != "none":
            assert row["secure"], f"{row['mitigation']} was not secure under attack"
    assert comet_result.security_ok and hydra_result.security_ok

    # (a) CoMeT's benign-core slowdown under attack is no worse than PARA's.
    assert benign_ipc_a["comet"] >= benign_ipc_a["para"] - 1e-6
    # (b) Under its own targeted attack CoMeT still keeps the benign core at
    # least as fast as Hydra keeps it under Hydra's targeted attack.
    assert comet_result.per_core_ipc[0] >= hydra_result.per_core_ipc[0] * 0.8
