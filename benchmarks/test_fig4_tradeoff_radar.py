"""Figure 4: the four-way trade-off (performance, energy, CPU area, DRAM area).

The radar plot of the paper compares every mechanism at NRH = 125 along four
axes.  The harness prints one row per mechanism with the four quantities and
asserts the qualitative placement of each mechanism:

* Graphene — fast and energy-efficient but by far the largest CPU-chip area;
* Hydra — small area but visible performance/energy overhead;
* PARA — no area but the largest performance and energy overhead;
* REGA — no CPU area but a fixed DRAM-chip overhead and a visible slowdown;
* CoMeT — close to Graphene's performance/energy at close to Hydra's area.
"""

from _bench_utils import bench_workloads, record, run_once
from repro.analysis.reporting import format_table
from repro.area.model import comet_area_report, graphene_area_report, hydra_area_report
from repro.mitigations.rega import REGA
from repro.sim.metrics import geometric_mean

NRH = 125
MECHANISMS = ["comet", "graphene", "hydra", "rega", "para"]


def _cpu_area(mechanism):
    if mechanism == "comet":
        return comet_area_report(NRH).area_mm2
    if mechanism == "graphene":
        return graphene_area_report(NRH).area_mm2
    if mechanism == "hydra":
        return hydra_area_report(NRH).area_mm2
    return 0.0  # PARA and REGA keep no controller-side state


def _dram_area_fraction(mechanism):
    return REGA.DRAM_AREA_OVERHEAD_FRACTION if mechanism == "rega" else 0.0


def _experiment(sim_cache):
    workloads = bench_workloads()
    rows = []
    metrics = {}
    for mechanism in MECHANISMS:
        ipcs, energies = [], []
        for workload in workloads:
            baseline = sim_cache.baseline(workload)
            result = sim_cache.run(workload, mechanism, NRH)
            ipcs.append(sim_cache.normalized_ipc(result, baseline))
            energies.append(sim_cache.normalized_energy(result, baseline))
        metrics[mechanism] = {
            "perf_overhead_pct": (1 - geometric_mean(ipcs)) * 100,
            "energy_overhead_pct": (geometric_mean(energies) - 1) * 100,
            "cpu_area_mm2": _cpu_area(mechanism),
            "dram_area_pct": _dram_area_fraction(mechanism) * 100,
        }
        rows.append({"mitigation": mechanism, **{k: round(v, 3) for k, v in metrics[mechanism].items()}})
    return rows, metrics


def test_fig4_tradeoff(benchmark, sim_cache):
    rows, metrics = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(rows, title=f"Figure 4: trade-off axes at NRH = {NRH}")
    record("fig4_tradeoff_radar", text)

    # Graphene: best-in-class performance but the largest CPU area.
    assert metrics["graphene"]["cpu_area_mm2"] == max(m["cpu_area_mm2"] for m in metrics.values())
    # PARA: no area, worst performance overhead.
    assert metrics["para"]["cpu_area_mm2"] == 0.0
    assert metrics["para"]["perf_overhead_pct"] == max(
        m["perf_overhead_pct"] for m in metrics.values()
    )
    # REGA is the only mechanism with a DRAM-chip area overhead.
    assert metrics["rega"]["dram_area_pct"] > 0
    assert all(m["dram_area_pct"] == 0 for name, m in metrics.items() if name != "rega")
    # CoMeT: area within 2x of Hydra, performance within 3 points of Graphene.
    assert metrics["comet"]["cpu_area_mm2"] < 2 * metrics["hydra"]["cpu_area_mm2"]
    assert metrics["comet"]["perf_overhead_pct"] < metrics["graphene"]["perf_overhead_pct"] + 3.0
    # CoMeT beats Hydra on performance at this threshold.
    assert metrics["comet"]["perf_overhead_pct"] < metrics["hydra"]["perf_overhead_pct"]
