"""Shared infrastructure for the benchmark harnesses.

Every benchmark regenerates one table or figure of the CoMeT paper
(see DESIGN.md's experiment index).  They share:

* a single scaled DRAM configuration (:func:`experiment_config`);
* a session-wide simulation cache so that e.g. the unprotected baseline of a
  workload is simulated once and reused by every figure that normalizes to it;
* a result recorder that prints each regenerated table/figure at the end of
  the pytest session (so ``pytest benchmarks/ --benchmark-only`` shows the
  rows/series the paper reports).

Artifact policy: machine-readable JSON only.  The files that live (and are
committed) under ``benchmarks/results/`` are the ``BENCH_*.json``
artifacts the CI micro-benchmark job diffs against; the old per-figure
``.txt`` twins were plain renderings of the same data, nothing read them,
and they churned on every timing-sensitive run — so :func:`record` keeps
figures in memory for the end-of-session printout and writes nothing to
disk.  Benchmarks that want a persistent artifact write JSON explicitly
(see ``test_micro_kernel_e2e.py``).

Every simulation is described as an
:class:`~repro.experiment.spec.ExperimentSpec` and executed through
:func:`repro.experiment.execute.execute_spec`, the same execution core the
:class:`~repro.experiment.session.Session` facade and the sweep workers
use, so benchmark runs can share the sweep executor's on-disk result cache
(keys are the specs' canonical-JSON content hashes).

Environment knobs:

* ``REPRO_FULL_SUITE=1`` — use the full 61-workload suite instead of the
  5-workload representative subset (much slower).
* ``REPRO_BENCH_REQUESTS=<n>`` — override the per-workload trace length.
* ``REPRO_BENCH_DISK_CACHE=<dir>`` — also memoize results on disk (keyed by
  config hash, see EXPERIMENTS.md), so re-running a figure after an
  unrelated edit reuses every simulation.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.dram.dram_system import DRAMStatistics
from repro.energy.model import DRAMEnergyModel
from repro.experiment.execute import execute_spec
from repro.experiment.spec import ExperimentSpec, MitigationSpec, WorkloadSpec
from repro.sim.sweep import SweepCache, spec_cache_key
from repro.sim.system import SimulationResult
from repro.workloads.suite import workload_names

# --------------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------------- #
THRESHOLDS = [1000, 500, 250, 125]

#: Representative subset: two high-, two medium-, one low-intensity workload.
DEFAULT_WORKLOADS = ["429.mcf", "bfs_dblp", "462.libquantum", "473.astar", "502.gcc"]

NUM_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "12000"))
MULTICORE_REQUESTS = max(1000, NUM_REQUESTS // 8)
RESULTS_DIR = Path(__file__).parent / "results"

_RECORDED: List[Tuple[str, str]] = []


def bench_workloads() -> List[str]:
    if os.environ.get("REPRO_FULL_SUITE") == "1":
        return workload_names()
    return list(DEFAULT_WORKLOADS)


def record(title: str, text: str) -> None:
    """Record a regenerated table/figure for the end-of-session printout.

    In-memory only — see the module docstring's artifact policy.  The
    JSON artifacts under ``benchmarks/results/`` are written by the
    benchmarks that own them, not here.
    """
    _RECORDED.append((title, text))


def recorded_results() -> List[Tuple[str, str]]:
    """All (title, text) pairs recorded so far in this session."""
    return list(_RECORDED)


# --------------------------------------------------------------------------- #
# Simulation cache
# --------------------------------------------------------------------------- #
class SimulationCache:
    """Caches traces and simulation results across benchmark files.

    Every simulation is described as an
    :class:`~repro.experiment.spec.ExperimentSpec` and executed through
    :func:`~repro.experiment.execute.execute_spec`, so results are
    interchangeable with (and, when ``REPRO_BENCH_DISK_CACHE`` is set,
    shared with) the Session/sweep executor's cache.
    """

    def __init__(self) -> None:
        self.energy_model = DRAMEnergyModel(num_ranks=2)
        self._results: Dict[Tuple, SimulationResult] = {}
        disk_dir = os.environ.get("REPRO_BENCH_DISK_CACHE")
        self.disk_cache: Optional[SweepCache] = (
            SweepCache(Path(disk_dir)) if disk_dir else None
        )

    def simulate(self, spec: ExperimentSpec) -> SimulationResult:
        """Execute one spec through the optional on-disk result cache."""
        if self.disk_cache is not None:
            key = spec_cache_key(spec)
            cached = self.disk_cache.get(key)
            if cached is not None:
                return cached
        result = execute_spec(spec)
        if self.disk_cache is not None:
            self.disk_cache.put(key, result)
        return result

    def _spec(
        self,
        workload: str,
        mitigation: str,
        nrh: int,
        num_requests: int,
        num_cores: int = 1,
        overrides: Optional[dict] = None,
    ) -> ExperimentSpec:
        return ExperimentSpec(
            workload=WorkloadSpec(
                name=workload, num_requests=num_requests, num_cores=num_cores
            ),
            mitigation=MitigationSpec(
                name=mitigation, nrh=nrh, overrides=overrides or ()
            ),
            verify_security=mitigation != "none",
        )

    # -- single-core runs --------------------------------------------------
    def run(
        self,
        workload: str,
        mitigation: str,
        nrh: int,
        num_requests: int = NUM_REQUESTS,
        overrides: Optional[dict] = None,
        overrides_key: Optional[str] = None,
    ) -> SimulationResult:
        if mitigation == "none":
            nrh = 0  # the baseline is threshold-independent; share one run
        key = ("run", workload, mitigation, nrh, num_requests, overrides_key)
        if key not in self._results:
            self._results[key] = self.simulate(
                self._spec(
                    workload,
                    mitigation,
                    nrh=max(1, nrh) if mitigation == "none" else nrh,
                    num_requests=num_requests,
                    overrides=overrides,
                )
            )
        return self._results[key]

    def baseline(self, workload: str, num_requests: int = NUM_REQUESTS) -> SimulationResult:
        return self.run(workload, "none", 1000, num_requests)

    # -- multi-core runs ----------------------------------------------------
    def run_multicore(
        self,
        workload: str,
        mitigation: str,
        nrh: int,
        num_cores: int = 8,
        num_requests: int = MULTICORE_REQUESTS,
        overrides: Optional[dict] = None,
        overrides_key: Optional[str] = None,
    ) -> SimulationResult:
        if mitigation == "none":
            nrh = 0
        key = ("mc_run", workload, mitigation, nrh, num_cores, num_requests, overrides_key)
        if key not in self._results:
            self._results[key] = self.simulate(
                self._spec(
                    workload,
                    mitigation,
                    nrh=max(1, nrh) if mitigation == "none" else nrh,
                    num_requests=num_requests,
                    num_cores=num_cores,
                    overrides=overrides,
                )
            )
        return self._results[key]

    def multicore_baseline(self, workload: str, num_cores: int = 8) -> SimulationResult:
        return self.run_multicore(workload, "none", 1000, num_cores)

    # -- derived metrics -----------------------------------------------------
    @staticmethod
    def _to_stats(result: SimulationResult) -> DRAMStatistics:
        d = result.dram_stats
        return DRAMStatistics(
            acts=d["acts"],
            pres=d["pres"],
            reads=d["reads"],
            writes=d["writes"],
            refreshes=d["refreshes"],
            preventive_acts=d["preventive_acts"],
        )

    def normalized_ipc(self, result: SimulationResult, baseline: SimulationResult) -> float:
        if baseline.ipc == 0:
            return 0.0
        return result.ipc / baseline.ipc

    def normalized_weighted_speedup(
        self, result: SimulationResult, baseline: SimulationResult
    ) -> float:
        base_sum = sum(baseline.per_core_ipc)
        if base_sum == 0:
            return 0.0
        return sum(result.per_core_ipc) / base_sum

    def normalized_energy(self, result: SimulationResult, baseline: SimulationResult) -> float:
        return self.energy_model.normalized_energy(
            self._to_stats(result), result.cycles, self._to_stats(baseline), baseline.cycles
        )


_CACHE = SimulationCache()


def get_cache() -> SimulationCache:
    """The process-wide simulation cache shared by every benchmark file."""
    return _CACHE


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
