"""Shared infrastructure for the benchmark harnesses.

Every benchmark regenerates one table or figure of the CoMeT paper
(see DESIGN.md's experiment index).  They share:

* a single scaled DRAM configuration (:func:`experiment_config`);
* a session-wide simulation cache so that e.g. the unprotected baseline of a
  workload is simulated once and reused by every figure that normalizes to it;
* a result recorder that prints each regenerated table/figure at the end of
  the pytest session (so ``pytest benchmarks/ --benchmark-only`` shows the
  rows/series the paper reports) and also writes them to
  ``benchmarks/results/``.

Environment knobs:

* ``REPRO_FULL_SUITE=1`` — use the full 61-workload suite instead of the
  5-workload representative subset (much slower).
* ``REPRO_BENCH_REQUESTS=<n>`` — override the per-workload trace length.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.dram.dram_system import DRAMStatistics
from repro.energy.model import DRAMEnergyModel
from repro.sim.runner import default_experiment_config, run_multi_core, run_single_core
from repro.sim.system import SimulationResult
from repro.workloads.suite import build_multicore_traces, build_trace, workload_names

# --------------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------------- #
THRESHOLDS = [1000, 500, 250, 125]

#: Representative subset: two high-, two medium-, one low-intensity workload.
DEFAULT_WORKLOADS = ["429.mcf", "bfs_dblp", "462.libquantum", "473.astar", "502.gcc"]

NUM_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "12000"))
MULTICORE_REQUESTS = max(1000, NUM_REQUESTS // 8)
RESULTS_DIR = Path(__file__).parent / "results"

_RECORDED: List[Tuple[str, str]] = []


def bench_workloads() -> List[str]:
    if os.environ.get("REPRO_FULL_SUITE") == "1":
        return workload_names()
    return list(DEFAULT_WORKLOADS)


def record(title: str, text: str) -> None:
    """Record a regenerated table/figure for the terminal summary and disk."""
    _RECORDED.append((title, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = "".join(c if c.isalnum() else "_" for c in title.lower()).strip("_")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n", encoding="utf-8")


def recorded_results() -> List[Tuple[str, str]]:
    """All (title, text) pairs recorded so far in this session."""
    return list(_RECORDED)


# --------------------------------------------------------------------------- #
# Simulation cache
# --------------------------------------------------------------------------- #
class SimulationCache:
    """Caches traces and simulation results across benchmark files."""

    def __init__(self) -> None:
        self.dram_config = default_experiment_config()
        self.energy_model = DRAMEnergyModel(num_ranks=2)
        self._traces: Dict[Tuple, object] = {}
        self._results: Dict[Tuple, SimulationResult] = {}

    # -- traces -----------------------------------------------------------
    def trace(self, workload: str, num_requests: int = NUM_REQUESTS):
        key = ("trace", workload, num_requests)
        if key not in self._traces:
            self._traces[key] = build_trace(
                workload, num_requests=num_requests, dram_config=self.dram_config
            )
        return self._traces[key]

    def multicore_traces(self, workload: str, num_cores: int = 8,
                         num_requests: int = MULTICORE_REQUESTS):
        key = ("mc_traces", workload, num_cores, num_requests)
        if key not in self._traces:
            self._traces[key] = build_multicore_traces(
                workload,
                num_cores=num_cores,
                num_requests=num_requests,
                dram_config=self.dram_config,
            )
        return self._traces[key]

    # -- single-core runs --------------------------------------------------
    def run(
        self,
        workload: str,
        mitigation: str,
        nrh: int,
        num_requests: int = NUM_REQUESTS,
        overrides: Optional[dict] = None,
        overrides_key: Optional[str] = None,
    ) -> SimulationResult:
        if mitigation == "none":
            nrh = 0  # the baseline is threshold-independent; share one run
        key = ("run", workload, mitigation, nrh, num_requests, overrides_key)
        if key not in self._results:
            trace = self.trace(workload, num_requests)
            self._results[key] = run_single_core(
                trace,
                mitigation,
                nrh=max(1, nrh) if mitigation == "none" else nrh,
                dram_config=self.dram_config,
                mitigation_overrides=overrides,
                verify_security=mitigation != "none",
            )
        return self._results[key]

    def baseline(self, workload: str, num_requests: int = NUM_REQUESTS) -> SimulationResult:
        return self.run(workload, "none", 1000, num_requests)

    # -- multi-core runs ----------------------------------------------------
    def run_multicore(
        self,
        workload: str,
        mitigation: str,
        nrh: int,
        num_cores: int = 8,
        num_requests: int = MULTICORE_REQUESTS,
        overrides: Optional[dict] = None,
        overrides_key: Optional[str] = None,
    ) -> SimulationResult:
        if mitigation == "none":
            nrh = 0
        key = ("mc_run", workload, mitigation, nrh, num_cores, num_requests, overrides_key)
        if key not in self._results:
            traces = self.multicore_traces(workload, num_cores, num_requests)
            self._results[key] = run_multi_core(
                traces,
                mitigation,
                nrh=max(1, nrh) if mitigation == "none" else nrh,
                dram_config=self.dram_config,
                mitigation_overrides=overrides,
                verify_security=mitigation != "none",
                name=f"{workload}_x{num_cores}",
            )
        return self._results[key]

    def multicore_baseline(self, workload: str, num_cores: int = 8) -> SimulationResult:
        return self.run_multicore(workload, "none", 1000, num_cores)

    # -- derived metrics -----------------------------------------------------
    @staticmethod
    def _to_stats(result: SimulationResult) -> DRAMStatistics:
        d = result.dram_stats
        return DRAMStatistics(
            acts=d["acts"],
            pres=d["pres"],
            reads=d["reads"],
            writes=d["writes"],
            refreshes=d["refreshes"],
            preventive_acts=d["preventive_acts"],
        )

    def normalized_ipc(self, result: SimulationResult, baseline: SimulationResult) -> float:
        if baseline.ipc == 0:
            return 0.0
        return result.ipc / baseline.ipc

    def normalized_weighted_speedup(
        self, result: SimulationResult, baseline: SimulationResult
    ) -> float:
        base_sum = sum(baseline.per_core_ipc)
        if base_sum == 0:
            return 0.0
        return sum(result.per_core_ipc) / base_sum

    def normalized_energy(self, result: SimulationResult, baseline: SimulationResult) -> float:
        return self.energy_model.normalized_energy(
            self._to_stats(result), result.cycles, self._to_stats(baseline), baseline.cycles
        )


_CACHE = SimulationCache()


def get_cache() -> SimulationCache:
    """The process-wide simulation cache shared by every benchmark file."""
    return _CACHE


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
