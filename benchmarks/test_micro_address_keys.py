"""Micro-benchmark: cached vs. per-read ``DRAMAddress`` bank/row keys.

The FR-FCFS scheduler groups every queued request by ``bank_key`` on every
command selection, so while a request waits in a deep (multi-core) queue its
address is asked for the same tuple dozens of times; the mitigation hooks
and preventive-refresh scans add more reads on top.  The keys are therefore
cached per instance (a lock-free ``cached_property`` variant — the stdlib
one takes an RLock on 3.11 and loses the race it is meant to win).

This harness pits the shipped descriptor against the pre-change plain
``@property`` across read multiplicities.  Caching costs a little on the
first read and wins on every later one, so the crossover multiplicity is
the interesting number: low-read addresses (single-core, shallow queues)
must not get much slower, and queue-scan multiplicities must win.  On the
reference machine the change is ~1.16x end-to-end on an 8-core CoMeT run
and neutral (<3% either way) on single-core runs.
"""

import timeit
from dataclasses import dataclass

from _bench_utils import record
from repro.analysis.reporting import format_table
from repro.dram.address import DRAMAddress

NUM_ADDRESSES = 2000


@dataclass(frozen=True, order=True)
class _PropertyAddress:
    """The pre-change implementation: tuples rebuilt on every read."""

    channel: int
    rank: int
    bankgroup: int
    bank: int
    row: int
    column: int

    @property
    def bank_key(self):
        return (self.channel, self.rank, self.bankgroup, self.bank)

    @property
    def row_key(self):
        return (self.channel, self.rank, self.bankgroup, self.bank, self.row)


def _addresses(cls):
    return [
        cls(
            channel=i & 1,
            rank=(i >> 1) & 1,
            bankgroup=(i >> 2) & 1,
            bank=(i >> 3) & 1,
            row=i % 509,
            column=0,
        )
        for i in range(NUM_ADDRESSES)
    ]


def _consume(addresses, reads):
    total = 0
    for address in addresses:
        for _ in range(reads):
            total += address.bank_key[3] + address.row_key[4]
    return total


def _measure(cls, reads):
    # Fresh addresses per round so the cached variant pays its first-read
    # cost inside the measurement, exactly as the simulator does.
    return min(
        timeit.repeat(lambda: _consume(_addresses(cls), reads), number=3, repeat=5)
    )


def test_micro_cached_address_keys(benchmark):
    rows = []
    speedups = {}
    for reads in (1, 4, 16, 64):
        property_s = _measure(_PropertyAddress, reads)
        cached_s = _measure(DRAMAddress, reads)
        speedups[reads] = property_s / cached_s
        rows.append(
            {
                "reads_per_address": reads,
                "property_ms": round(property_s * 1e3, 2),
                "cached_ms": round(cached_s * 1e3, 2),
                "speedup_x": round(speedups[reads], 3),
            }
        )
    benchmark(_consume, _addresses(DRAMAddress), 16)

    record(
        "micro_address_keys",
        format_table(
            rows, title="DRAMAddress key caching vs plain @property by read count"
        ),
    )
    # Queue-scan multiplicities (deep multi-core read queues) must win ...
    assert speedups[64] > 1.3
    assert speedups[16] > 1.0
    # ... and rarely-read addresses must not regress badly (noise margin).
    assert speedups[1] > 0.5
