"""Micro-benchmarks for two construction/read hot spots outside the kernel.

1. Cached vs. per-read ``DRAMAddress`` bank/row keys.
2. Shared vs. per-instance hash-family constants (tracker construction).

The FR-FCFS scheduler groups every queued request by ``bank_key`` on every
command selection, so while a request waits in a deep (multi-core) queue its
address is asked for the same tuple dozens of times; the mitigation hooks
and preventive-refresh scans add more reads on top.  The keys are therefore
cached per instance (a lock-free ``cached_property`` variant — the stdlib
one takes an RLock on 3.11 and loses the race it is meant to win).

This harness pits the shipped descriptor against the pre-change plain
``@property`` across read multiplicities.  Caching costs a little on the
first read and wins on every later one, so the crossover multiplicity is
the interesting number: low-read addresses (single-core, shallow queues)
must not get much slower, and queue-scan multiplicities must win.  On the
reference machine the change is ~1.16x end-to-end on an 8-core CoMeT run
and neutral (<3% either way) on single-core runs.
"""

import timeit
from dataclasses import dataclass

from _bench_utils import record
from repro.analysis.reporting import format_table
from repro.dram.address import DRAMAddress
from repro.sketch import hashes

NUM_ADDRESSES = 2000


@dataclass(frozen=True, order=True)
class _PropertyAddress:
    """The pre-change implementation: tuples rebuilt on every read."""

    channel: int
    rank: int
    bankgroup: int
    bank: int
    row: int
    column: int

    @property
    def bank_key(self):
        return (self.channel, self.rank, self.bankgroup, self.bank)

    @property
    def row_key(self):
        return (self.channel, self.rank, self.bankgroup, self.bank, self.row)


def _addresses(cls):
    return [
        cls(
            channel=i & 1,
            rank=(i >> 1) & 1,
            bankgroup=(i >> 2) & 1,
            bank=(i >> 3) & 1,
            row=i % 509,
            column=0,
        )
        for i in range(NUM_ADDRESSES)
    ]


def _consume(addresses, reads):
    total = 0
    for address in addresses:
        for _ in range(reads):
            total += address.bank_key[3] + address.row_key[4]
    return total


def _measure(cls, reads):
    # Fresh addresses per round so the cached variant pays its first-read
    # cost inside the measurement, exactly as the simulator does.
    return min(
        timeit.repeat(lambda: _consume(_addresses(cls), reads), number=3, repeat=5)
    )


def test_micro_cached_address_keys(benchmark):
    rows = []
    speedups = {}
    for reads in (1, 4, 16, 64):
        property_s = _measure(_PropertyAddress, reads)
        cached_s = _measure(DRAMAddress, reads)
        speedups[reads] = property_s / cached_s
        rows.append(
            {
                "reads_per_address": reads,
                "property_ms": round(property_s * 1e3, 2),
                "cached_ms": round(cached_s * 1e3, 2),
                "speedup_x": round(speedups[reads], 3),
            }
        )
    benchmark(_consume, _addresses(DRAMAddress), 16)

    record(
        "micro_address_keys",
        format_table(
            rows, title="DRAMAddress key caching vs plain @property by read count"
        ),
    )
    # Queue-scan multiplicities (deep multi-core read queues) must win ...
    assert speedups[64] > 1.3
    assert speedups[16] > 1.0
    # ... and rarely-read addresses must not regress badly (noise margin).
    assert speedups[1] > 0.5


# --------------------------------------------------------------------------- #
# Hash-family constant sharing
# --------------------------------------------------------------------------- #
#: The per-bank tracker shape: BlockHammer builds two CBFs per bank, CoMeT
#: one Counter Table per bank, on a 2-channel/2-rank/8-bankgroup fabric —
#: every one with the same (num_hashes, seed), so the constants are shared.
NUM_FAMILIES = 64
FAMILY_HASHES = 4
FAMILY_BUCKETS = 512


def _build_families(shift_mask_params, tabulation_tables):
    """Construct the per-bank tracker families with injected param builders."""
    for _ in range(NUM_FAMILIES):
        shift_mask_params(FAMILY_HASHES, 0)
        tabulation_tables(FAMILY_HASHES, 0)


def _measure_families(shift_mask_params, tabulation_tables):
    return min(
        timeit.repeat(
            lambda: _build_families(shift_mask_params, tabulation_tables),
            number=5,
            repeat=5,
        )
    )


def test_micro_hash_family_constants(benchmark):
    """Module-level constant sharing vs regenerating per construction.

    The shipped param builders (:func:`repro.sketch.hashes._shift_mask_params`
    etc.) are ``lru_cache``-shared across instances; ``.__wrapped__`` is the
    pre-change behaviour — every family re-derives its constants (and, for
    tabulation, 4x256 random table entries) from its own ``random.Random``.
    This is the claim in :mod:`repro.sketch.hashes`'s docstring that shared
    constants stop dominating per-bank tracker setup.
    """
    shared_s = _measure_families(
        hashes._shift_mask_params, hashes._tabulation_tables
    )
    rebuilt_s = _measure_families(
        hashes._shift_mask_params.__wrapped__,
        hashes._tabulation_tables.__wrapped__,
    )
    speedup = rebuilt_s / shared_s
    benchmark(
        _build_families, hashes._shift_mask_params, hashes._tabulation_tables
    )

    record(
        "micro_hash_family_constants",
        format_table(
            [
                {
                    "families": NUM_FAMILIES,
                    "rebuilt_ms": round(rebuilt_s * 1e3, 2),
                    "shared_ms": round(shared_s * 1e3, 3),
                    "speedup_x": round(speedup, 1),
                }
            ],
            title="Hash-family constants: shared (lru_cache) vs per-instance",
        ),
    )
    # Regenerating tabulation tables alone is thousands of RNG draws per
    # family; the shared path is a dict hit.  Enormous margin, so the floor
    # can be strict without flaking.
    assert speedup > 20.0
