"""Table 4: dual-rank storage and chip area of CoMeT vs Graphene vs Hydra.

Paper values:
    CoMeT    : 76.5 KiB / 0.09 mm^2 at NRH=1K  ->  51.0 KiB / 0.07 mm^2 at 125
    Graphene : 207 KiB / 0.49 mm^2            ->  1466 KiB / 4.89 mm^2
    Hydra    : 61.6 KiB / 0.08 mm^2           ->  46.8 KiB / 0.07 mm^2

Headline claims checked: CoMeT needs several-fold less area than Graphene at
NRH=1K, the gap grows by an order of magnitude at NRH=125, and CoMeT's area is
comparable to Hydra's.
"""

from _bench_utils import THRESHOLDS, record, run_once
from repro.analysis.reporting import format_table
from repro.area.model import area_comparison_table


def test_table4_area_comparison(benchmark):
    reports = run_once(benchmark, lambda: area_comparison_table(THRESHOLDS))
    rows = [report.as_row() for report in reports]
    text = format_table(rows, title="Table 4: storage and processor-chip area per mechanism")
    record("table4_area_comparison", text)

    by_key = {(r.mechanism, r.nrh): r for r in reports}

    # CoMeT storage matches the paper exactly (the arithmetic of Section 7.2).
    assert abs(by_key[("CoMeT", 1000)].storage_kib - 76.5) < 1.0
    assert abs(by_key[("CoMeT", 125)].storage_kib - 51.0) < 1.0

    # Area ratios: CoMeT much smaller than Graphene, similar to Hydra.
    ratio_1k = by_key[("Graphene", 1000)].area_mm2 / by_key[("CoMeT", 1000)].area_mm2
    ratio_125 = by_key[("Graphene", 125)].area_mm2 / by_key[("CoMeT", 125)].area_mm2
    assert ratio_1k > 3
    assert ratio_125 > 40
    hydra_ratio = by_key[("CoMeT", 1000)].area_mm2 / by_key[("Hydra", 1000)].area_mm2
    assert 0.5 < hydra_ratio < 2.0
