"""Figure 18: CoMeT versus BlockHammer, single-core performance.

Paper observation: CoMeT outperforms BlockHammer by 9.5% on average at
NRH = 125 because BlockHammer's counting-Bloom-filter tracker has a higher
false-positive rate (Figure 17) and its throttling delays benign requests.
"""

from _bench_utils import bench_workloads, record, run_once
from repro.analysis.reporting import format_table
from repro.sim.metrics import geometric_mean

THRESHOLDS = [1000, 125]


def _experiment(sim_cache):
    rows = []
    geomeans = {}
    for nrh in THRESHOLDS:
        for mechanism in ("comet", "blockhammer"):
            normalized = []
            for workload in bench_workloads():
                baseline = sim_cache.baseline(workload)
                result = sim_cache.run(workload, mechanism, nrh)
                normalized.append(sim_cache.normalized_ipc(result, baseline))
            geomeans[(mechanism, nrh)] = geometric_mean(normalized)
            rows.append(
                {
                    "nrh": nrh,
                    "mitigation": mechanism,
                    "geomean_norm_IPC": round(geomeans[(mechanism, nrh)], 4),
                    "min_norm_IPC": round(min(normalized), 4),
                }
            )
    return rows, geomeans


def test_fig18_blockhammer_comparison(benchmark, sim_cache):
    rows, geomeans = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(rows, title="Figure 18: CoMeT vs BlockHammer normalized IPC")
    record("fig18_blockhammer_comparison", text)

    # CoMeT performs at least as well as BlockHammer at both thresholds and
    # strictly better at the very low threshold (the paper's 9.5% average gap).
    assert geomeans[("comet", 1000)] >= geomeans[("blockhammer", 1000)] - 0.005
    assert geomeans[("comet", 125)] >= geomeans[("blockhammer", 125)]
    # BlockHammer's throttling hurts more as the threshold drops.
    assert geomeans[("blockhammer", 125)] <= geomeans[("blockhammer", 1000)] + 1e-6
