"""Pytest wiring for the benchmark harnesses.

The heavy lifting (simulation cache, workload selection, result recording)
lives in :mod:`_bench_utils`; this conftest exposes the session-scoped cache
fixture and prints every regenerated table/figure in the terminal summary so
``pytest benchmarks/ --benchmark-only`` shows the paper's rows and series.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import _bench_utils


def pytest_collection_modifyitems(config, items):
    """Every benchmark harness regenerates a full figure: all are `slow`.

    The default `-m "not slow"` (pytest.ini) keeps them out of tier-1; run
    them with `python -m pytest benchmarks -m slow`.  The hook receives the
    whole session's items, so restrict to this directory.
    """
    here = Path(__file__).parent
    for item in items:
        if here in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def sim_cache() -> "_bench_utils.SimulationCache":
    return _bench_utils.get_cache()


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # pragma: no cover
    recorded = _bench_utils.recorded_results()
    if not recorded:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for title, text in recorded:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
