"""Figure 3 (motivation): Hydra's performance overhead grows at low thresholds.

Paper: Hydra's average (maximum) single-core slowdown grows from 0.85% (8.18%)
at NRH = 1K to 5.66% (51.24%) at NRH = 125, driven by preventive refreshes and
by the off-chip traffic of its in-DRAM row counter table.

The harness prints Hydra's normalized-IPC distribution per threshold plus the
memory-read-latency inflation that causes it.
"""

from _bench_utils import THRESHOLDS, bench_workloads, record, run_once
from repro.analysis.reporting import format_table
from repro.sim.metrics import geometric_mean, summarize_distribution


def _experiment(sim_cache):
    rows = []
    geomeans = {}
    latency_inflation = {}
    for nrh in THRESHOLDS:
        normalized = []
        latencies = []
        for workload in bench_workloads():
            baseline = sim_cache.baseline(workload)
            result = sim_cache.run(workload, "hydra", nrh)
            normalized.append(sim_cache.normalized_ipc(result, baseline))
            if baseline.average_read_latency > 0:
                latencies.append(result.average_read_latency / baseline.average_read_latency)
        summary = summarize_distribution(normalized)
        geomeans[nrh] = geometric_mean(normalized)
        latency_inflation[nrh] = sum(latencies) / len(latencies)
        rows.append(
            {
                "nrh": nrh,
                "min": round(summary["min"], 4),
                "median": round(summary["median"], 4),
                "max": round(summary["max"], 4),
                "geomean": round(geomeans[nrh], 4),
                "read_latency_x": round(latency_inflation[nrh], 3),
            }
        )
    return rows, geomeans, latency_inflation


def test_fig3_hydra_overhead(benchmark, sim_cache):
    rows, geomeans, latency_inflation = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(rows, title="Figure 3: Hydra normalized IPC distribution vs NRH")
    record("fig3_hydra_overhead", text)

    # Overhead grows as the threshold drops (the motivation of Section 3.2).
    assert geomeans[125] < geomeans[1000] - 0.01
    # Small overhead at NRH=1K, clearly visible overhead at NRH=125.
    assert geomeans[1000] > 0.95
    assert geomeans[125] < 0.97
    # Hydra's counter traffic inflates memory read latency at low thresholds.
    assert latency_inflation[125] > latency_inflation[1000]
