"""Figure 17: false-positive rate of CoMeT's tracker vs BlockHammer's.

The experiment distributes 10,000 activations (the benign per-bank per-window
average, footnote 13 of the paper) over a varying number of unique rows and
measures the fraction of benign rows each tracker would incorrectly flag at
the preventive-action threshold (NPR = 31 for NRH = 125 with k = 3).

Adaptation (documented in EXPERIMENTS.md): the two trackers are compared at an
equal, scaled-down counter budget — CoMeT's partitioned Counter Table with
4 x 128 counters versus BlockHammer's dual counting Bloom filter with 2 x 256
counters — so the activation-to-counter pressure sits in the regime where the
paper's curves live.  The claims under test are the paper's qualitative ones:
the curve rises towards 1.0 as unique rows grow, CoMeT's false-positive rate
is lower than BlockHammer's while tracking at most ~2,500 unique rows, and the
two converge for very large unique-row counts.
"""

from _bench_utils import record, run_once
from repro.analysis.false_positive import (
    blockhammer_dual_tracker,
    comet_tracker,
    false_positive_rate_curve,
)
from repro.analysis.reporting import render_series
from repro.core.config import CoMeTConfig

UNIQUE_ROWS = [10, 100, 250, 500, 1000, 2500, 10_000]
THRESHOLD = 31  # NPR at NRH=125, k=3
TOTAL_ACTIVATIONS = 10_000
SEED = 7


def _curve():
    config = CoMeTConfig(nrh=124, num_hashes=4, counters_per_hash=128, hash_seed=SEED)
    trackers = [
        comet_tracker(nrh=THRESHOLD, config=config, seed=SEED),
        blockhammer_dual_tracker(nrh=125, counters_per_filter=256, seed=SEED),
    ]
    return false_positive_rate_curve(
        UNIQUE_ROWS,
        total_activations=TOTAL_ACTIVATIONS,
        threshold=THRESHOLD,
        seed=SEED,
        trackers=trackers,
    )


def test_fig17_false_positive_rate(benchmark):
    curve = run_once(benchmark, _curve)
    text = render_series(
        curve,
        x_values=UNIQUE_ROWS,
        x_label="unique_rows",
        title="Figure 17: tracker false-positive rate (10K activations, flag threshold = NPR)",
    )
    record("fig17_false_positive_rate", text)

    comet = curve["CoMeT"]
    blockhammer = curve["BlockHammer"]
    # CoMeT never worse than BlockHammer across the tracked range.
    for comet_rate, blockhammer_rate in zip(comet, blockhammer):
        assert comet_rate <= blockhammer_rate + 1e-9
    # Strictly better somewhere in the 250-2500 unique-row region (Section 8.3).
    middle = range(UNIQUE_ROWS.index(250), UNIQUE_ROWS.index(2500) + 1)
    assert any(comet[i] < blockhammer[i] - 0.02 for i in middle)
    # Few unique rows: both exact.  Very many unique rows: both saturate.
    assert comet[0] == blockhammer[0] == 0.0
    assert comet[-1] > 0.9 and blockhammer[-1] > 0.9
