"""Figure 6: Counter Table design-space sweep (NHash x NCounters).

Paper observations: increasing either the number of hash functions or the
number of counters per hash function reduces counter collisions, and hence
unnecessary preventive refreshes and slowdown; beyond 4 x 512 there is no
further benefit, which is why that geometry is CoMeT's default.

The harness sweeps (NHash, NCounters) pairs at NRH = 1K and NRH = 125 on the
most memory-intensive workloads of the subset and reports normalized IPC and
the number of preventive refreshes (the direct measure of collisions).
"""

from _bench_utils import bench_workloads, record, run_once
from repro.analysis.reporting import format_table
from repro.core.config import CoMeTConfig
from repro.sim.metrics import geometric_mean

PAIRS = [(1, 128), (2, 256), (4, 512), (8, 512)]
THRESHOLDS = [1000, 125]


def _sweep_workloads():
    workloads = bench_workloads()
    return workloads[:2] if len(workloads) > 2 else workloads


def _experiment(sim_cache):
    rows = []
    refreshes = {}
    ipcs = {}
    for nrh in THRESHOLDS:
        for num_hashes, counters in PAIRS:
            normalized = []
            preventive = 0
            for workload in _sweep_workloads():
                baseline = sim_cache.baseline(workload)
                config = CoMeTConfig(
                    nrh=nrh, num_hashes=num_hashes, counters_per_hash=counters
                )
                result = sim_cache.run(
                    workload,
                    "comet",
                    nrh,
                    overrides={"config": config},
                    overrides_key=f"ct_{num_hashes}x{counters}",
                )
                normalized.append(sim_cache.normalized_ipc(result, baseline))
                preventive += result.preventive_refreshes
            key = (nrh, num_hashes, counters)
            ipcs[key] = geometric_mean(normalized)
            refreshes[key] = preventive
            rows.append(
                {
                    "nrh": nrh,
                    "NHash": num_hashes,
                    "NCounters": counters,
                    "geomean_norm_IPC": round(ipcs[key], 4),
                    "preventive_refreshes": preventive,
                }
            )
    return rows, ipcs, refreshes


def test_fig6_counter_table_sweep(benchmark, sim_cache):
    rows, ipcs, refreshes = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(rows, title="Figure 6: CoMeT Counter Table (NHash x NCounters) sweep")
    record("fig6_counter_table_sweep", text)

    # At NRH = 1K even the smallest table suffices (overhead ~0 everywhere).
    for pair in PAIRS:
        assert ipcs[(1000, *pair)] > 0.98

    # At NRH = 125 the smallest table causes at least as many preventive
    # refreshes (collisions) as the paper's default geometry, and the default
    # geometry performs at least as well.
    assert refreshes[(125, 1, 128)] >= refreshes[(125, 4, 512)]
    assert ipcs[(125, 4, 512)] >= ipcs[(125, 1, 128)] - 0.002
    # Growing beyond 4 x 512 brings no further benefit (paper's conclusion).
    assert abs(ipcs[(125, 8, 512)] - ipcs[(125, 4, 512)]) < 0.01
