"""Figure 11: CoMeT's single-core DRAM energy, normalized to no mitigation.

Paper results: +0.08% (max 1.13%) average DRAM energy at NRH = 1K and +2.07%
(max 14.11%) at NRH = 125.  The overhead comes from (i) the extra ACT/PRE
pairs of preventive refreshes and (ii) longer execution time (background
energy), both of which this harness accounts for.
"""

from _bench_utils import THRESHOLDS, bench_workloads, record, run_once
from repro.analysis.reporting import format_table
from repro.sim.metrics import geometric_mean


def _experiment(sim_cache):
    rows = []
    series = {nrh: [] for nrh in THRESHOLDS}
    for workload in bench_workloads():
        baseline = sim_cache.baseline(workload)
        row = {"workload": workload}
        for nrh in THRESHOLDS:
            result = sim_cache.run(workload, "comet", nrh)
            normalized = sim_cache.normalized_energy(result, baseline)
            row[f"nrh_{nrh}"] = round(normalized, 4)
            series[nrh].append(normalized)
        rows.append(row)
    rows.append(
        {"workload": "GeoMean", **{f"nrh_{n}": round(geometric_mean(v), 4) for n, v in series.items()}}
    )
    return rows, series


def test_fig11_comet_singlecore_energy(benchmark, sim_cache):
    rows, series = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(rows, title="Figure 11: CoMeT normalized DRAM energy per workload")
    record("fig11_comet_singlecore_energy", text)

    geomeans = {nrh: geometric_mean(values) for nrh, values in series.items()}
    # Negligible energy overhead at NRH=1K.
    assert 0.995 < geomeans[1000] < 1.01
    # Energy overhead grows (or stays equal) as the threshold drops, but stays small.
    assert geomeans[125] >= geomeans[1000] - 1e-6
    assert geomeans[125] < 1.10
