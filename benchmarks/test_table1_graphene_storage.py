"""Table 1: storage overhead of Graphene versus RowHammer threshold.

Paper values (KB for a 32-bank, dual-rank channel):
    NRH=1000 -> 207.19, 500 -> 498.44, 250 -> 765.00, 125 -> 1466.25

The reproduction computes storage from the Misra-Gries table sizing rule
(entries = activations-per-window / threshold), so the absolute numbers differ
slightly from the paper's exact Graphene configuration; the shape — storage
growing roughly inversely with the threshold into the MiB range — is the
result under test.
"""

from _bench_utils import THRESHOLDS, record, run_once
from repro.analysis.reporting import format_table
from repro.area.model import graphene_storage_table


def test_table1_graphene_storage(benchmark):
    rows = run_once(benchmark, lambda: graphene_storage_table(THRESHOLDS))
    text = format_table(rows, title="Table 1: Graphene storage overhead per channel")
    record("table1_graphene_storage", text)

    storage = {row["nrh"]: row["storage_KiB"] for row in rows}
    # Monotonically increasing as the threshold drops ...
    assert storage[125] > storage[250] > storage[500] > storage[1000]
    # ... reaching the MiB range at NRH=125 (paper: ~1.43 MiB).
    assert storage[1000] > 100
    assert storage[125] > 1000
    # Scaling factor comparable to the paper's 7.1x from NRH=1K to 125.
    assert 4 < storage[125] / storage[1000] < 12
