"""Figure 10: CoMeT's single-core performance, normalized to no mitigation.

Paper results: 0.19% (2.64%) average (maximum) slowdown at NRH = 1K and
4.01% (19.82%) at NRH = 125; overhead grows monotonically as the threshold
drops because more rows reach the preventive refresh threshold per reset
period.

The harness prints one normalized-IPC row per workload and threshold (the
per-workload bars of Figure 10) plus the geometric mean across the workload
subset.
"""

from _bench_utils import THRESHOLDS, bench_workloads, record, run_once
from repro.analysis.reporting import format_table
from repro.sim.metrics import geometric_mean


def _experiment(sim_cache):
    workloads = bench_workloads()
    rows = []
    series = {nrh: [] for nrh in THRESHOLDS}
    for workload in workloads:
        baseline = sim_cache.baseline(workload)
        row = {"workload": workload}
        for nrh in THRESHOLDS:
            result = sim_cache.run(workload, "comet", nrh)
            normalized = sim_cache.normalized_ipc(result, baseline)
            row[f"nrh_{nrh}"] = round(normalized, 4)
            series[nrh].append(normalized)
        rows.append(row)
    rows.append(
        {"workload": "GeoMean", **{f"nrh_{n}": round(geometric_mean(v), 4) for n, v in series.items()}}
    )
    return rows, series


def test_fig10_comet_singlecore_performance(benchmark, sim_cache):
    rows, series = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(rows, title="Figure 10: CoMeT normalized IPC per workload")
    record("fig10_comet_singlecore_performance", text)

    geomeans = {nrh: geometric_mean(values) for nrh, values in series.items()}
    # Small overhead at NRH=1K (paper: 0.19% average).
    assert geomeans[1000] > 0.98
    # Overhead grows monotonically (within noise) as the threshold drops.
    assert geomeans[125] <= geomeans[1000] + 1e-6
    assert geomeans[125] <= geomeans[500] + 0.005
    # Still modest at NRH=125 (paper: 4% average) — well under 15% here.
    assert geomeans[125] > 0.85
    # Every run remained secure (checked during simulation).
    for workload in bench_workloads():
        for nrh in THRESHOLDS:
            assert sim_cache.run(workload, "comet", nrh).security_ok
