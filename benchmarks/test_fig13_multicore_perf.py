"""Figure 13: 8-core weighted-speedup comparison, normalized to no mitigation.

Paper observations reproduced: CoMeT's multi-core overhead is small at
NRH = 1K (0.73%), grows at NRH = 125 (workloads hammer more rows and saturate
counters faster), stays close to Graphene, and beats Hydra and PARA at every
threshold.

Scaling note: the harness uses 8-core homogeneous mixes of two representative
workloads with shorter per-core traces (EXPERIMENTS.md), and two thresholds
(the extremes 1K and 125) to bound simulation time.
"""

from _bench_utils import record, run_once
from repro.analysis.reporting import format_table
from repro.sim.metrics import geometric_mean

WORKLOADS = ["429.mcf", "462.libquantum"]
MECHANISMS = ["comet", "graphene", "hydra", "para"]
THRESHOLDS = [1000, 125]
NUM_CORES = 8


def _experiment(sim_cache):
    rows = []
    geomeans = {}
    for nrh in THRESHOLDS:
        for mechanism in MECHANISMS:
            values = []
            for workload in WORKLOADS:
                baseline = sim_cache.multicore_baseline(workload, num_cores=NUM_CORES)
                result = sim_cache.run_multicore(workload, mechanism, nrh, num_cores=NUM_CORES)
                values.append(sim_cache.normalized_weighted_speedup(result, baseline))
            geomeans[(mechanism, nrh)] = geometric_mean(values)
            rows.append(
                {
                    "nrh": nrh,
                    "mitigation": mechanism,
                    "geomean_norm_weighted_speedup": round(geomeans[(mechanism, nrh)], 4),
                    "min": round(min(values), 4),
                }
            )
    return rows, geomeans


def test_fig13_multicore_performance(benchmark, sim_cache):
    rows, geomeans = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(rows, title="Figure 13: 8-core normalized weighted speedup")
    record("fig13_multicore_performance", text)

    # Small overhead at NRH = 1K for CoMeT.
    assert geomeans[("comet", 1000)] > 0.97
    # Overhead grows (or stays equal) at NRH = 125.
    assert geomeans[("comet", 125)] <= geomeans[("comet", 1000)] + 1e-6
    # CoMeT beats Hydra and PARA at both thresholds.
    for nrh in THRESHOLDS:
        assert geomeans[("comet", nrh)] >= geomeans[("hydra", nrh)] - 0.01
        assert geomeans[("comet", nrh)] >= geomeans[("para", nrh)] - 0.01
    # CoMeT stays in Graphene's neighbourhood (paper: within ~15% at 125).
    assert geomeans[("comet", 125)] >= geomeans[("graphene", 125)] - 0.2
