"""Figure 9: counter reset period (k) sweep.

CoMeT resets its counters every tREFW/k and must therefore use a preventive
refresh threshold NPR = NRH/(k+1) (Equation 1).  The paper finds k = 3 to be
the sweet spot: larger k avoids saturated counters (helping the worst case)
but shrinks NPR, so beyond k = 3 the extra necessary refreshes outweigh the
avoided unnecessary ones.

The harness sweeps k for the benign subset and for the traditional RowHammer
attack at NRH = 125, reporting normalized IPC and preventive refresh counts.
"""

from _bench_utils import bench_workloads, record, run_once
from repro.analysis.reporting import format_table
from repro.core.config import CoMeTConfig
from repro.experiment.spec import ExperimentSpec, MitigationSpec, WorkloadSpec
from repro.sim.metrics import geometric_mean

NRH = 125
K_VALUES = [1, 2, 3, 4]


def _experiment(sim_cache):
    workloads = bench_workloads()[:2]
    attack_workload = WorkloadSpec(
        name="attack_traditional",
        num_requests=6000,
        params={"aggressor_rows_per_bank": 2},
    )
    rows = []
    benign_ipc = {}
    attack_refreshes = {}
    for k in K_VALUES:
        config = CoMeTConfig(nrh=NRH, reset_period_divider=k)
        normalized = []
        preventive = 0
        for workload in workloads:
            baseline = sim_cache.baseline(workload)
            result = sim_cache.run(
                workload,
                "comet",
                NRH,
                overrides={"config": config},
                overrides_key=f"k_{k}",
            )
            normalized.append(sim_cache.normalized_ipc(result, baseline))
            preventive += result.preventive_refreshes
        benign_ipc[k] = geometric_mean(normalized)

        attack = sim_cache.simulate(
            ExperimentSpec(
                workload=attack_workload,
                mitigation=MitigationSpec(
                    name="comet", nrh=NRH, overrides={"config": config}
                ),
            )
        )
        attack_refreshes[k] = attack.preventive_refreshes
        rows.append(
            {
                "k": k,
                "NPR": config.npr,
                "benign_geomean_norm_IPC": round(benign_ipc[k], 4),
                "benign_preventive_refreshes": preventive,
                "attack_preventive_refreshes": attack.preventive_refreshes,
                "attack_secure": attack.security_ok,
            }
        )
    return rows, benign_ipc, attack_refreshes


def test_fig9_reset_period_sweep(benchmark, sim_cache):
    rows, benign_ipc, attack_refreshes = run_once(benchmark, lambda: _experiment(sim_cache))
    text = format_table(rows, title=f"Figure 9: counter reset period (k) sweep at NRH = {NRH}")
    record("fig9_reset_period_sweep", text)

    # Benign overhead stays small for every k (paper: all means within ~5%).
    assert all(value > 0.90 for value in benign_ipc.values())
    # A larger k means a smaller NPR, so the attack triggers at least as many
    # preventive refreshes (the cost side of the trade-off beyond k=3).
    assert attack_refreshes[4] >= attack_refreshes[1]
    # Every configuration defends the attack.
    assert all(row["attack_secure"] for row in rows)
