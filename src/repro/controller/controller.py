"""FR-FCFS memory controller with RowHammer-mitigation hooks.

The controller owns the read/write queues, the refresh schedule and the
preventive-refresh queue, and drives the :class:`~repro.dram.dram_system.DRAMSystem`
one command at a time.  It is deliberately event-driven: the system simulation
asks for the earliest cycle at which the controller can do useful work
(:meth:`MemoryController.next_issue_cycle`) and then tells it to issue exactly
one command (:meth:`MemoryController.issue_next`), so no cycles are spent
spinning over idle periods.

Scheduling policy (Table 2 of the paper):

* FR-FCFS — among requests to a bank, row hits are served first, oldest
  first, with a *column cap* of 16 consecutive column accesses per open row
  so a stream of row hits cannot starve row-miss requests.
* Open-page policy — rows stay open until a conflicting request or a refresh
  needs the bank.
* Writes are buffered and drained in bursts when the write queue passes a
  high watermark or the read queue is empty.
* Periodic refresh — each rank receives one REF every tREFI; refreshes take
  priority once due.  Mitigations may also schedule extra rank-level
  refreshes (CoMeT's early preventive refresh) and per-row preventive
  refreshes, which are served with priority over demand traffic
  (Section 7.2.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.controller.request import MemoryRequest, RequestType
from repro.dram.address import AddressMapper, DRAMAddress
from repro.dram.commands import Command, CommandKind
from repro.dram.config import DRAMConfig
from repro.dram.dram_system import DRAMSystem

_INFINITY = float("inf")


@dataclass(frozen=True)
class ControllerConfig:
    """Scheduling parameters of the memory controller."""

    read_queue_size: int = 64
    write_queue_size: int = 64
    column_cap: int = 16
    write_drain_high: int = 48
    write_drain_low: int = 16


@dataclass
class ControllerStatistics:
    """Aggregate controller statistics used by metrics and reports."""

    read_requests: int = 0
    write_requests: int = 0
    mitigation_requests: int = 0
    preventive_refreshes: int = 0
    early_refresh_operations: int = 0
    total_read_latency: int = 0
    completed_reads: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    per_core_read_latency: Dict[int, int] = field(default_factory=dict)
    per_core_reads: Dict[int, int] = field(default_factory=dict)

    @property
    def average_read_latency(self) -> float:
        if self.completed_reads == 0:
            return 0.0
        return self.total_read_latency / self.completed_reads

    def record_read_completion(self, request: MemoryRequest) -> None:
        latency = request.latency or 0
        self.total_read_latency += latency
        self.completed_reads += 1
        if request.core_id is not None:
            self.per_core_read_latency[request.core_id] = (
                self.per_core_read_latency.get(request.core_id, 0) + latency
            )
            self.per_core_reads[request.core_id] = (
                self.per_core_reads.get(request.core_id, 0) + 1
            )


class MemoryController:
    """One memory controller: all channels (legacy) or a single channel.

    Parameters
    ----------
    dram_config:
        DRAM organization/timing; a fresh :class:`DRAMSystem` is built from it.
    config:
        Queue sizes and scheduling knobs.
    mitigation:
        Optional RowHammer mitigation implementing the
        :class:`repro.mitigations.base.RowHammerMitigation` interface.  The
        mitigation may rewrite the DRAM config (REGA), observe activations,
        schedule preventive refreshes, inject its own memory traffic (Hydra)
        and throttle activations (BlockHammer).
    channel:
        When given, the controller is channel-scoped: it owns only that
        channel's DRAM ranks, schedules only that channel's refreshes, and
        expects every enqueued request to target that channel.  ``None``
        (the default) keeps the monolithic all-channel behaviour used by
        direct unit tests; the :class:`~repro.controller.fabric.ChannelFabric`
        always builds channel-scoped controllers.
    """

    def __init__(
        self,
        dram_config: DRAMConfig,
        config: Optional[ControllerConfig] = None,
        mitigation=None,
        channel: Optional[int] = None,
    ) -> None:
        self.config = config or ControllerConfig()
        self.mitigation = mitigation
        self.channel = channel
        if mitigation is not None:
            dram_config = mitigation.adjust_dram_config(dram_config)
        self.dram_config = dram_config
        self.dram = DRAMSystem(dram_config, channel=channel)
        self.mapper = AddressMapper(dram_config)
        self.stats = ControllerStatistics()
        #: Monotonic count of scheduler-visible state changes (enqueues,
        #: issues, request retirements, owed extra refreshes).  The event
        #: kernel compares snapshots of this counter to prove an idle
        #: channel's cached (non-)decision is still valid without re-running
        #: command selection.
        self.mutations = 0

        self.read_queue: List[MemoryRequest] = []
        self.write_queue: List[MemoryRequest] = []
        self.preventive_queue: List[MemoryRequest] = []

        org = dram_config.organization
        channels = range(org.channels) if channel is None else (channel,)
        self._rank_keys = [
            (ch, rank)
            for ch in channels
            for rank in range(org.ranks_per_channel)
        ]
        # Stagger periodic refreshes across ranks so they do not collide.
        stagger = max(1, self.dram_config.tREFI // max(1, len(self._rank_keys)))
        self.next_refresh_due: Dict[Tuple[int, int], int] = {
            key: self.dram_config.tREFI + index * stagger
            for index, key in enumerate(self._rank_keys)
        }
        self.extra_rank_refreshes: Dict[Tuple[int, int], int] = {
            key: 0 for key in self._rank_keys
        }
        self._draining_writes = False
        self._slot_free_callbacks: List[Callable[[], None]] = []
        self.current_cycle = 0

        if mitigation is not None:
            mitigation.attach(self)
            self.dram.add_activation_observer(self._on_activation)
            self.dram.add_refresh_observer(self._on_refresh)

    # ------------------------------------------------------------------ #
    # External interface (cores, mitigations)
    # ------------------------------------------------------------------ #
    def add_slot_free_callback(self, callback: Callable[[], None]) -> None:
        """Register a callback fired whenever queue space frees up."""
        self._slot_free_callbacks.append(callback)

    def enqueue(self, request: MemoryRequest, cycle: int) -> bool:
        """Add a request to the appropriate queue; returns False when full."""
        self.mutations += 1
        request.arrival_cycle = cycle
        if request.request_type is RequestType.READ:
            if len(self.read_queue) >= self.config.read_queue_size:
                return False
            self.read_queue.append(request)
            if request.is_mitigation_traffic:
                self.stats.mitigation_requests += 1
            else:
                self.stats.read_requests += 1
        elif request.request_type is RequestType.WRITE:
            if len(self.write_queue) >= self.config.write_queue_size:
                return False
            self.write_queue.append(request)
            if request.is_mitigation_traffic:
                self.stats.mitigation_requests += 1
            else:
                self.stats.write_requests += 1
        else:
            self.preventive_queue.append(request)
            self.stats.preventive_refreshes += 1
        return True

    def schedule_preventive_refresh(self, address: DRAMAddress, cycle: int) -> None:
        """Queue a preventive refresh (ACT+PRE) of ``address``'s row."""
        request = MemoryRequest(
            request_type=RequestType.PREVENTIVE_REFRESH,
            address=address,
            arrival_cycle=cycle,
            is_mitigation_traffic=True,
        )
        self.enqueue(request, cycle)

    def schedule_rank_refresh(self, channel: int, rank: int, count: int) -> None:
        """Queue ``count`` extra rank-level REF commands (early preventive refresh)."""
        self.mutations += 1
        self.extra_rank_refreshes[(channel, rank)] += count
        self.stats.early_refresh_operations += 1

    def enqueue_mitigation_request(
        self, address: DRAMAddress, is_write: bool, cycle: int
    ) -> bool:
        """Inject mitigation-generated DRAM traffic (e.g. Hydra counter accesses)."""
        request = MemoryRequest(
            request_type=RequestType.WRITE if is_write else RequestType.READ,
            address=address,
            arrival_cycle=cycle,
            is_mitigation_traffic=True,
        )
        return self.enqueue(request, cycle)

    def pending_requests(self) -> int:
        return len(self.read_queue) + len(self.write_queue) + len(self.preventive_queue)

    def has_work(self) -> bool:
        if self.pending_requests() > 0:
            return True
        return any(count > 0 for count in self.extra_rank_refreshes.values())

    # ------------------------------------------------------------------ #
    # Observers wiring mitigation <-> DRAM
    # ------------------------------------------------------------------ #
    def _on_activation(self, cycle: int, address: DRAMAddress, is_preventive: bool) -> None:
        if self.mitigation is not None:
            self.mitigation.on_activation(cycle, address, is_preventive)

    def _on_refresh(
        self, cycle: int, rank_key: Tuple[int, int], start_row: int, count: int
    ) -> None:
        if self.mitigation is not None:
            self.mitigation.on_refresh(cycle, rank_key, start_row, count)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def next_issue_cycle(self, cycle: int) -> Optional[int]:
        """Earliest cycle >= ``cycle`` at which some command can issue (None if idle)."""
        decision = self._choose_command(cycle)
        if decision is None:
            return None
        return decision[0]

    def next_decision(self, cycle: int) -> Optional[Tuple[int, Command, Optional[MemoryRequest]]]:
        """Pick the best command as of ``cycle``: ``(issue_cycle, command, request)``.

        The event kernel caches the returned decision and, provided no queue
        state changed in between, hands it back to :meth:`issue_decision` so
        command selection runs once per issued command instead of twice.  A
        cached decision stays the right choice at its issue cycle unless a
        periodic refresh becomes due in between — check
        :meth:`refresh_crosses_due` before trusting it.
        """
        return self._choose_command(cycle)

    def issue_decision(
        self, decision: Tuple[int, Command, Optional[MemoryRequest]]
    ) -> int:
        """Issue a decision produced by :meth:`next_decision`; returns its cycle."""
        issue_cycle, command, request = decision
        self.mutations += 1
        self.current_cycle = issue_cycle
        result = self.dram.issue(command, issue_cycle)
        self._post_issue(command, request, issue_cycle, result)
        return issue_cycle

    def refresh_crosses_due(self, start: int, end: int) -> bool:
        """True when a periodic refresh becomes due in ``(start, end]``.

        A decision made at ``start`` that issues at ``end`` considered every
        refresh already due at ``start``; only a deadline strictly inside the
        interval can change what the scheduler would pick.
        """
        if not self.dram_config.refresh_enabled:
            return False
        return any(start < due <= end for due in self.next_refresh_due.values())

    def issue_next(self, cycle: int) -> Optional[int]:
        """Issue the best command at the earliest legal cycle >= ``cycle``.

        Returns the cycle at which the command was issued, or None if the
        controller has nothing to do.
        """
        decision = self._choose_command(cycle)
        if decision is None:
            return None
        return self.issue_decision(decision)

    # -- command selection ------------------------------------------------
    def _choose_command(
        self, cycle: int
    ) -> Optional[Tuple[int, Command, Optional[MemoryRequest]]]:
        """Pick the highest-priority issuable command and its issue cycle."""
        refresh_decision = self._refresh_command(cycle)
        if refresh_decision is not None:
            return refresh_decision
        preventive_decision = self._preventive_command(cycle)
        if preventive_decision is not None:
            return preventive_decision
        return self._demand_command(cycle)

    def _refresh_command(
        self, cycle: int
    ) -> Optional[Tuple[int, Command, Optional[MemoryRequest]]]:
        if not self.dram_config.refresh_enabled:
            return None
        best: Optional[Tuple[int, Command]] = None
        for rank_key in self._rank_keys:
            channel, rank_id = rank_key
            due = self.next_refresh_due[rank_key]
            owed_extra = self.extra_rank_refreshes[rank_key]
            if cycle < due and owed_extra == 0:
                continue
            rank = self.dram.rank(channel, rank_id)
            open_banks = [
                (bankgroup, bank)
                for (bankgroup, bank), state in rank.banks.items()
                if not state.is_closed()
            ]
            if open_banks:
                # Close one open bank so the REF can go out.
                candidates = []
                for bankgroup, bank in open_banks:
                    command = Command(
                        CommandKind.PRE,
                        channel=channel,
                        rank=rank_id,
                        bankgroup=bankgroup,
                        bank=bank,
                    )
                    candidates.append(
                        (self.dram.earliest_issue_cycle(command, cycle), command)
                    )
                candidate = min(candidates, key=lambda item: item[0])
            else:
                command = Command(CommandKind.REF, channel=channel, rank=rank_id)
                candidate = (self.dram.earliest_issue_cycle(command, cycle), command)
            if best is None or candidate[0] < best[0]:
                best = candidate
        if best is None:
            return None
        return best[0], best[1], None

    def _preventive_command(
        self, cycle: int
    ) -> Optional[Tuple[int, Command, Optional[MemoryRequest]]]:
        self._prune_preventive_queue(cycle)
        best: Optional[Tuple[int, Command, MemoryRequest]] = None
        seen_categories = set()
        for request in self.preventive_queue:
            # All queued refreshes of one bank in the same phase (awaiting
            # their ACT, or awaiting the closing PRE) produce the same command
            # kind at the same earliest cycle — the ACT/PRE constraints do not
            # depend on the row — and ties keep the earliest-queued request,
            # so only the first request per (bank, phase) can win the scan.
            category = (
                request.address.bank_key,
                request.__dict__.get("_refresh_activated", False),
            )
            if category in seen_categories:
                continue
            seen_categories.add(category)
            command = self._next_command_for_refresh(request)
            issue_cycle = self.dram.earliest_issue_cycle(command, cycle)
            if best is None or issue_cycle < best[0]:
                best = (issue_cycle, command, request)
        return best

    def _prune_preventive_queue(self, cycle: int) -> None:
        """Complete preventive refreshes whose victim row was already closed.

        The victim row is refreshed by its preventive ACT; the trailing PRE
        only closes it.  If another command (a refresh PRE, a demand conflict
        PRE or another preventive refresh to the same bank) already closed the
        bank, the refresh is done and the request can retire.
        """
        finished = []
        for request in self.preventive_queue:
            if not request.__dict__.get("_refresh_activated", False):
                continue
            bank = self.dram.bank_for(request.address)
            if bank.is_closed() or bank.open_row != request.address.row:
                finished.append(request)
        for request in finished:
            self.mutations += 1
            self.preventive_queue.remove(request)
            request.complete(cycle)
            self.dram.stats.preventive_refresh_pairs += 1
            self._notify_slot_free()

    def _next_command_for_refresh(self, request: MemoryRequest) -> Command:
        address = request.address
        bank = self.dram.bank_for(address)
        activated = request.__dict__.get("_refresh_activated", False)
        if not activated:
            if bank.is_closed():
                return Command(
                    CommandKind.ACT,
                    channel=address.channel,
                    rank=address.rank,
                    bankgroup=address.bankgroup,
                    bank=address.bank,
                    row=address.row,
                    is_preventive=True,
                )
            return Command(
                CommandKind.PRE,
                channel=address.channel,
                rank=address.rank,
                bankgroup=address.bankgroup,
                bank=address.bank,
            )
        # Already activated: close the victim row to finish the refresh.
        return Command(
            CommandKind.PRE,
            channel=address.channel,
            rank=address.rank,
            bankgroup=address.bankgroup,
            bank=address.bank,
            is_preventive=True,
        )

    def _demand_command(
        self, cycle: int
    ) -> Optional[Tuple[int, Command, Optional[MemoryRequest]]]:
        self._update_drain_mode()
        queues: List[List[MemoryRequest]] = []
        if self.read_queue:
            queues.append(self.read_queue)
        if self.write_queue and (self._draining_writes or not self.read_queue):
            queues.append(self.write_queue)
        if not queues:
            return None

        # Group requests by bank, preserving arrival order inside each bank.
        by_bank: Dict[Tuple[int, int, int, int], List[MemoryRequest]] = {}
        for queue in queues:
            for request in queue:
                by_bank.setdefault(request.address.bank_key, []).append(request)

        best: Optional[Tuple[int, int, Command, MemoryRequest]] = None
        for bank_key, requests in by_bank.items():
            candidate = self._bank_candidate(bank_key, requests, cycle)
            if candidate is None:
                continue
            issue_cycle, command, request = candidate
            order = (issue_cycle, request.arrival_cycle)
            if best is None or order < (best[0], best[1]):
                best = (issue_cycle, request.arrival_cycle, command, request)
        if best is None:
            return None
        return best[0], best[2], best[3]

    def _bank_candidate(
        self,
        bank_key: Tuple[int, int, int, int],
        requests: List[MemoryRequest],
        cycle: int,
    ) -> Optional[Tuple[int, Command, MemoryRequest]]:
        channel, rank_id, bankgroup, bank_id = bank_key
        bank = self.dram.bank(channel, rank_id, bankgroup, bank_id)
        requests = sorted(requests, key=lambda r: (r.arrival_cycle, r.request_id))

        if bank.is_closed():
            # Oldest request wins; it needs an ACT first.
            request = requests[0]
            command = Command(
                CommandKind.ACT,
                channel=channel,
                rank=rank_id,
                bankgroup=bankgroup,
                bank=bank_id,
                row=request.address.row,
            )
            issue_cycle = self.dram.earliest_issue_cycle(command, cycle)
            issue_cycle = self._apply_act_throttle(request, issue_cycle)
            return issue_cycle, command, request

        open_row = bank.open_row
        row_hits = [r for r in requests if r.address.row == open_row]
        cap_reached = bank.open_row_column_accesses >= self.config.column_cap
        has_conflict = any(r.address.row != open_row for r in requests)

        if row_hits and not (cap_reached and has_conflict):
            request = row_hits[0]
            kind = CommandKind.WR if request.is_write else CommandKind.RD
            command = Command(
                kind,
                channel=channel,
                rank=rank_id,
                bankgroup=bankgroup,
                bank=bank_id,
                column=request.address.column,
            )
            return self.dram.earliest_issue_cycle(command, cycle), command, request

        # Row conflict (or column cap reached): precharge on behalf of the
        # oldest conflicting request.
        conflicting = [r for r in requests if r.address.row != open_row]
        if not conflicting:
            return None
        request = conflicting[0]
        command = Command(
            CommandKind.PRE,
            channel=channel,
            rank=rank_id,
            bankgroup=bankgroup,
            bank=bank_id,
        )
        return self.dram.earliest_issue_cycle(command, cycle), command, request

    def _apply_act_throttle(self, request: MemoryRequest, issue_cycle: int) -> int:
        """Let the mitigation delay an activation (BlockHammer-style throttling)."""
        if self.mitigation is None:
            return issue_cycle
        allowed = self.mitigation.act_allowed_cycle(request.address, issue_cycle)
        return max(issue_cycle, allowed)

    def _update_drain_mode(self) -> None:
        if self._draining_writes:
            if len(self.write_queue) <= self.config.write_drain_low:
                self._draining_writes = False
        elif len(self.write_queue) >= self.config.write_drain_high:
            self._draining_writes = True

    # -- post-issue bookkeeping -------------------------------------------
    def _post_issue(
        self,
        command: Command,
        request: Optional[MemoryRequest],
        cycle: int,
        result: Optional[int],
    ) -> None:
        if command.kind is CommandKind.REF:
            rank_key = (command.channel, command.rank)
            if self.extra_rank_refreshes[rank_key] > 0:
                self.extra_rank_refreshes[rank_key] -= 1
            else:
                self.next_refresh_due[rank_key] += self.dram_config.tREFI
            return

        if command.kind is CommandKind.ACT and request is not None:
            if request.request_type is RequestType.PREVENTIVE_REFRESH:
                request.__dict__["_refresh_activated"] = True
            return

        if command.kind is CommandKind.PRE:
            if (
                request is not None
                and request.request_type is RequestType.PREVENTIVE_REFRESH
                and request.__dict__.get("_refresh_activated", False)
            ):
                self.preventive_queue.remove(request)
                request.complete(cycle)
                self.dram.stats.preventive_refresh_pairs += 1
                self._notify_slot_free()
            return

        if command.kind in (CommandKind.RD, CommandKind.WR) and request is not None:
            request.issue_cycle = cycle
            completion = result if result is not None else cycle
            queue = self.write_queue if request.is_write else self.read_queue
            queue.remove(request)
            request.complete(completion)
            if request.is_read and not request.is_mitigation_traffic:
                self.stats.record_read_completion(request)
            self._classify_row_buffer_outcome(request)
            self._notify_slot_free()

    def _classify_row_buffer_outcome(self, request: MemoryRequest) -> None:
        # A request that was served with a single column command (no ACT on
        # its behalf) is a row hit; this approximation counts hits by whether
        # its issue happened while the row was already open long enough.
        bank = self.dram.bank_for(request.address)
        if bank.open_row_column_accesses > 1:
            self.stats.row_hits += 1
        else:
            self.stats.row_misses += 1

    def _notify_slot_free(self) -> None:
        for callback in self._slot_free_callbacks:
            callback()

    # ------------------------------------------------------------------ #
    # Draining (used at the end of simulations)
    # ------------------------------------------------------------------ #
    def drain(self, cycle: int, max_commands: int = 10_000_000) -> int:
        """Issue commands until all queues are empty; returns the final cycle."""
        issued = 0
        current = cycle
        while self.has_work() and issued < max_commands:
            next_cycle = self.issue_next(current)
            if next_cycle is None:
                break
            current = next_cycle
            issued += 1
        return current
