"""Policy-driven memory controller with RowHammer-mitigation hooks.

The controller owns the read/write queues, the refresh schedule and the
preventive-refresh queue, and drives the :class:`~repro.dram.dram_system.DRAMSystem`
one command at a time.  It is deliberately event-driven: the system simulation
asks for the earliest cycle at which the controller can do useful work
(:meth:`MemoryController.next_issue_cycle`) and then tells it to issue exactly
one command (:meth:`MemoryController.issue_next`), so no cycles are spent
spinning over idle periods.

What used to be one monolithic FR-FCFS/open-page/all-bank scheduler is now a
:class:`~repro.controller.policies.ControllerPolicySpec` naming one policy
per axis (see :mod:`repro.controller.policies`):

* the **scheduling policy** picks which pending request each bank serves
  next (``fr_fcfs`` with the column-cap starvation guard — the paper's
  Table 2 controller and the default — plus ``fcfs`` and the BLISS-style
  ``bliss``);
* the **row policy** decides what happens to an open row once its bank has
  no queued work (``open_page`` — the default — plus ``closed_page`` and
  ``adaptive_timeout``), contributing speculative PRE candidates that
  compete with demand commands on issue cycle;
* the **refresh policy** shapes the periodic-refresh schedule by rewriting
  ``tREFI``/``tRFC`` before the device model is built (``all_bank`` — the
  default — plus DDR4 ``fine_granularity`` 2x/4x modes).

The controller still owns everything policy-independent: queue capacity and
the write-drain watermarks (writes buffer until the queue passes
``write_drain_high`` and drain until ``write_drain_low``), refresh due-time
bookkeeping with priority over demand traffic, the preventive-refresh queue
mitigations fill (CoMeT's ACT+PRE victim refreshes, served with priority per
Section 7.2.2 of the paper), and the mitigation hooks (activation observers,
BlockHammer-style ACT throttling, mitigation-injected traffic).

Command selection is incremental: pending requests are indexed per bank in
arrival order as they enqueue (:class:`_BankPending`), so each selection
visits only banks that have work and stops scanning a bank as soon as the
scheduling policy's answer is determined, instead of re-bucketing and
re-sorting the full queues on every call.  The default policy triple is
bit-identical to the pre-policy controller — decision ties are broken by an
explicit scan key that reproduces the old queue-scan order exactly — and is
pinned by the golden traces under ``tests/golden/``.
"""

from __future__ import annotations

from bisect import insort
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import fastpath
from repro.controller.policies import (
    NEVER,
    ControllerPolicySpec,
    DEFAULT_POLICY,
    RowPolicy,
    SchedulingPolicy,
)
from repro.controller.request import MemoryRequest, RequestType
from repro.dram.address import AddressMapper, DRAMAddress
from repro.dram.commands import Command, CommandKind
from repro.dram.config import DRAMConfig
from repro.dram.dram_system import DRAMSystem


@dataclass(frozen=True)
class ControllerConfig:
    """Scheduling parameters of the memory controller."""

    read_queue_size: int = 64
    write_queue_size: int = 64
    column_cap: int = 16
    write_drain_high: int = 48
    write_drain_low: int = 16


@dataclass
class ControllerStatistics:
    """Aggregate controller statistics used by metrics and reports.

    ``row_hits``/``row_misses``/``row_conflicts`` attribute every demand
    scheduling decision: a column command served from the open row is a hit,
    a demand ACT is a miss (the row had to be opened) and a demand PRE is a
    conflict (an open row had to make way).  Per-core dicts default missing
    cores to zero, so hot-path accounting needs no existence checks.
    """

    read_requests: int = 0
    write_requests: int = 0
    mitigation_requests: int = 0
    preventive_refreshes: int = 0
    early_refresh_operations: int = 0
    total_read_latency: int = 0
    completed_reads: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    #: Speculative precharges issued on behalf of the row policy.
    policy_precharges: int = 0
    per_core_read_latency: Dict[int, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    per_core_reads: Dict[int, int] = field(default_factory=lambda: defaultdict(int))

    @property
    def average_read_latency(self) -> float:
        if self.completed_reads == 0:
            return 0.0
        return self.total_read_latency / self.completed_reads

    def record_read_completion(self, request: MemoryRequest) -> None:
        latency = request.latency or 0
        self.total_read_latency += latency
        self.completed_reads += 1
        if request.core_id is not None:
            self.per_core_read_latency[request.core_id] += latency
            self.per_core_reads[request.core_id] += 1


def _request_sort_key(request: MemoryRequest) -> Tuple[int, int]:
    return (request.arrival_cycle, request.request_id)


class _BankPending:
    """Pending requests of one bank, kept in (arrival, request-id) order.

    ``min_seq`` is the smallest controller enqueue sequence number among the
    requests — the deterministic tie-break reproducing the order in which
    the old full-queue scan first encountered each bank.
    """

    __slots__ = ("requests", "min_seq", "row_counts")

    def __init__(self) -> None:
        self.requests: List[MemoryRequest] = []
        self.min_seq: int = NEVER
        #: Pending-request count per row.  The FR-FCFS hit scan only has to
        #: walk ``requests`` when the open row actually has a pending
        #: request (``open_row in row_counts``); under a hammering pattern
        #: nearly every selection is a conflict and the scan is skipped.
        self.row_counts: Dict[int, int] = {}

    def add(self, request: MemoryRequest, seq: int) -> None:
        if seq < self.min_seq:
            self.min_seq = seq
        row = request.address.row
        self.row_counts[row] = self.row_counts.get(row, 0) + 1
        requests = self.requests
        if not requests or _request_sort_key(requests[-1]) <= _request_sort_key(request):
            requests.append(request)
        else:
            # Out-of-order arrival (a retried request that was created before
            # requests that beat it into the queue): keep the list sorted.
            insort(requests, request, key=_request_sort_key)

    def remove(self, request: MemoryRequest) -> None:
        self.requests.remove(request)
        row = request.address.row
        count = self.row_counts[row] - 1
        if count:
            self.row_counts[row] = count
        else:
            del self.row_counts[row]
        if getattr(request, "_enqueue_seq", NEVER) == self.min_seq:
            self.min_seq = min(
                (getattr(r, "_enqueue_seq", NEVER) for r in self.requests),
                default=NEVER,
            )


def _merge_pending(
    read_list: List[MemoryRequest], write_list: List[MemoryRequest]
) -> List[MemoryRequest]:
    """Merge two sorted per-bank lists in global (arrival, request-id) order."""
    merged: List[MemoryRequest] = []
    i = j = 0
    while i < len(read_list) and j < len(write_list):
        if _request_sort_key(read_list[i]) <= _request_sort_key(write_list[j]):
            merged.append(read_list[i])
            i += 1
        else:
            merged.append(write_list[j])
            j += 1
    merged.extend(read_list[i:])
    merged.extend(write_list[j:])
    return merged


#: Shared empty index for inactive queue classes (skips per-call dict churn).
_NO_PENDING: Dict[Tuple[int, int, int, int], _BankPending] = {}


class MemoryController:
    """One memory controller: all channels (legacy) or a single channel.

    Parameters
    ----------
    dram_config:
        DRAM organization/timing; a fresh :class:`DRAMSystem` is built from it
        (after the refresh policy and the mitigation had their chance to
        rewrite it).
    config:
        Queue sizes and scheduling knobs.
    mitigation:
        Optional RowHammer mitigation implementing the
        :class:`repro.mitigations.base.RowHammerMitigation` interface.  The
        mitigation may rewrite the DRAM config (REGA), observe activations,
        schedule preventive refreshes, inject its own memory traffic (Hydra)
        and throttle activations (BlockHammer).
    channel:
        When given, the controller is channel-scoped: it owns only that
        channel's DRAM ranks, schedules only that channel's refreshes, and
        expects every enqueued request to target that channel.  ``None``
        (the default) keeps the monolithic all-channel behaviour used by
        direct unit tests; the :class:`~repro.controller.fabric.ChannelFabric`
        always builds channel-scoped controllers.
    policy:
        The :class:`~repro.controller.policies.ControllerPolicySpec` naming
        the scheduling, row and refresh policies.  ``None`` selects the
        default triple (``fr_fcfs``, ``open_page``, ``all_bank``), which is
        bit-identical to the pre-policy controller.  Policy instances are
        built per controller (they may be stateful).
    """

    def __init__(
        self,
        dram_config: DRAMConfig,
        config: Optional[ControllerConfig] = None,
        mitigation=None,
        channel: Optional[int] = None,
        policy: Optional[ControllerPolicySpec] = None,
    ) -> None:
        self.config = config or ControllerConfig()
        self.mitigation = mitigation
        self.channel = channel
        self.policy_spec = policy or DEFAULT_POLICY
        self.scheduler, self.row_policy, self.refresh_policy = self.policy_spec.build()
        dram_config = self.refresh_policy.adjust_dram_config(dram_config)
        if mitigation is not None:
            dram_config = mitigation.adjust_dram_config(dram_config)
        self.dram_config = dram_config
        self.dram = DRAMSystem(dram_config, channel=channel)
        self.mapper = AddressMapper(dram_config)
        self.stats = ControllerStatistics()
        #: Monotonic count of scheduler-visible state changes (accepted
        #: enqueues, issues, request retirements, owed extra refreshes — a
        #: rejected enqueue changes nothing and does not count).  The event
        #: kernel compares snapshots of this counter to prove a channel's
        #: cached decision (or cached "nothing to do") is still valid
        #: without re-running command selection.
        self.mutations = 0
        #: The struct-of-arrays demand scan applies only when the scheduler
        #: declares exact equivalence (see SchedulingPolicy.SUPPORTS_FAST_SCAN)
        #: and the global fast-path switch was on at construction time.
        self._fast_demand = fastpath.enabled() and getattr(
            self.scheduler, "SUPPORTS_FAST_SCAN", False
        )
        #: Under the fast path, decisions are issued with ``validated=True``:
        #: every path through _choose_command computes the command's earliest
        #: legal cycle before deciding, and the event kernel re-validates
        #: cached decisions (mutation counter + decision_crosses_boundary),
        #: so the DRAM model's own recheck in issue() is pure overhead.
        self._fast_issue = fastpath.enabled()
        #: Static proof that the row policy never emits close candidates
        #: (the default open-page case), letting the fast scan skip the
        #: close-candidate pass entirely.
        self._row_policy_closes = (
            type(self.row_policy).close_candidates is not RowPolicy.close_candidates
        )
        #: Active refresh policies (DDR5 RFM) observe ACT/REF traffic and
        #: owe bank-scoped RFM commands; passive policies skip all wiring.
        self._refresh_policy_rfm = getattr(self.refresh_policy, "ISSUES_RFM", False)
        #: Mitigations that assert Alert Back-Off (PRAC) stall demand issue;
        #: everything else skips the per-decision hook call.
        self._mitigation_blocks = mitigation is not None and getattr(
            mitigation, "BLOCKS_DEMAND", False
        )
        #: Per-bank-key (rank, timing-table index, channel, bankgroup)
        #: cache for the fast scan: everything about a bank key that never
        #: changes, resolved once instead of per scan.
        self._bank_meta: Dict[Tuple[int, int, int, int], tuple] = {}

        self.read_queue: List[MemoryRequest] = []
        self.write_queue: List[MemoryRequest] = []
        self.preventive_queue: List[MemoryRequest] = []
        #: Incremental per-bank index over the demand queues: requests are
        #: filed under their bank at enqueue time and removed at completion,
        #: so command selection never re-buckets the full queues.
        self._bank_reads: Dict[Tuple[int, int, int, int], _BankPending] = {}
        self._bank_writes: Dict[Tuple[int, int, int, int], _BankPending] = {}
        #: Per-bank read+write merge, reused across selections while the
        #: bank's queues are untouched (ACT/PRE issues touch no queue, so a
        #: multi-command service pays for at most one merge per bank).
        self._merged_cache: Dict[Tuple[int, int, int, int], List[MemoryRequest]] = {}
        self._enqueue_seq = 0

        org = dram_config.organization
        channels = range(org.channels) if channel is None else (channel,)
        self._rank_keys = [
            (ch, rank)
            for ch in channels
            for rank in range(org.ranks_per_channel)
        ]
        # Stagger periodic refreshes across ranks so they do not collide.
        stagger = max(1, self.dram_config.tREFI // max(1, len(self._rank_keys)))
        self.next_refresh_due: Dict[Tuple[int, int], int] = {
            key: self.dram_config.tREFI + index * stagger
            for index, key in enumerate(self._rank_keys)
        }
        self.extra_rank_refreshes: Dict[Tuple[int, int], int] = {
            key: 0 for key in self._rank_keys
        }
        self._draining_writes = False
        self._slot_free_callbacks: List[Callable[[], None]] = []
        self.current_cycle = 0

        if mitigation is not None:
            mitigation.attach(self)
            self.dram.add_activation_observer(self._on_activation)
            self.dram.add_refresh_observer(self._on_refresh)
        if self._refresh_policy_rfm:
            self.refresh_policy.attach(self)
        #: The fused command select with every construction-stable input
        #: pre-bound (fast path only; the generic chain reads ``self``
        #: directly).  Built last: it binds the queues, indexes, caches and
        #: the attached mitigation's hook resolutions.
        self._fast_select = (
            self._build_fast_select() if self._fast_demand else None
        )
        #: The fused issue+bookkeeping path (fast path only): one closure
        #: covering ``DRAMSystem.issue`` plus :meth:`_post_issue` for the
        #: per-command kinds (ACT/PRE/RD/WR) with no-op policy hooks
        #: resolved away.  Guarded against subclass/instance overrides of
        #: the methods it inlines so specialized models keep the generic
        #: path; pinned by the same identity tests as the fast select.
        self._fast_issue_fn = (
            self._build_fast_issue()
            if (
                self._fast_issue
                and self._fast_demand
                and type(self)._post_issue is MemoryController._post_issue
                and type(self.dram).issue is DRAMSystem.issue
                and "issue" not in self.dram.__dict__
            )
            else None
        )

    # ------------------------------------------------------------------ #
    # External interface (cores, mitigations)
    # ------------------------------------------------------------------ #
    def add_slot_free_callback(self, callback: Callable[[], None]) -> None:
        """Register a callback fired whenever queue space frees up."""
        self._slot_free_callbacks.append(callback)

    def enqueue(self, request: MemoryRequest, cycle: int) -> bool:
        """Add a request to the appropriate queue; returns False when full."""
        request.arrival_cycle = cycle
        if request.request_type is RequestType.READ:
            if len(self.read_queue) >= self.config.read_queue_size:
                return False
            self.mutations += 1
            self.read_queue.append(request)
            self._index_request(self._bank_reads, request)
            if request.is_mitigation_traffic:
                self.stats.mitigation_requests += 1
            else:
                self.stats.read_requests += 1
        elif request.request_type is RequestType.WRITE:
            if len(self.write_queue) >= self.config.write_queue_size:
                return False
            self.mutations += 1
            self.write_queue.append(request)
            self._index_request(self._bank_writes, request)
            if request.is_mitigation_traffic:
                self.stats.mitigation_requests += 1
            else:
                self.stats.write_requests += 1
        else:
            self.mutations += 1
            self.preventive_queue.append(request)
            self.stats.preventive_refreshes += 1
        return True

    def _index_request(
        self,
        index: Dict[Tuple[int, int, int, int], _BankPending],
        request: MemoryRequest,
    ) -> None:
        seq = self._enqueue_seq
        self._enqueue_seq += 1
        request.__dict__["_enqueue_seq"] = seq
        bank_key = request.address.bank_key
        self._merged_cache.pop(bank_key, None)
        pending = index.get(bank_key)
        if pending is None:
            pending = index[bank_key] = _BankPending()
        pending.add(request, seq)

    def _unindex_request(self, request: MemoryRequest) -> None:
        index = self._bank_writes if request.is_write else self._bank_reads
        bank_key = request.address.bank_key
        self._merged_cache.pop(bank_key, None)
        pending = index[bank_key]
        pending.remove(request)
        if not pending.requests:
            del index[bank_key]

    def schedule_preventive_refresh(self, address: DRAMAddress, cycle: int) -> None:
        """Queue a preventive refresh (ACT+PRE) of ``address``'s row."""
        request = MemoryRequest(
            request_type=RequestType.PREVENTIVE_REFRESH,
            address=address,
            arrival_cycle=cycle,
            is_mitigation_traffic=True,
        )
        self.enqueue(request, cycle)

    def schedule_rank_refresh(self, channel: int, rank: int, count: int) -> None:
        """Queue ``count`` extra rank-level REF commands (early preventive refresh)."""
        self.mutations += 1
        self.extra_rank_refreshes[(channel, rank)] += count
        self.stats.early_refresh_operations += 1

    def enqueue_mitigation_request(
        self, address: DRAMAddress, is_write: bool, cycle: int
    ) -> bool:
        """Inject mitigation-generated DRAM traffic (e.g. Hydra counter accesses)."""
        request = MemoryRequest(
            request_type=RequestType.WRITE if is_write else RequestType.READ,
            address=address,
            arrival_cycle=cycle,
            is_mitigation_traffic=True,
        )
        return self.enqueue(request, cycle)

    def pending_requests(self) -> int:
        return len(self.read_queue) + len(self.write_queue) + len(self.preventive_queue)

    def has_work(self) -> bool:
        if self.pending_requests() > 0:
            return True
        return any(count > 0 for count in self.extra_rank_refreshes.values())

    def has_pending_for_bank(self, bank_key: Tuple[int, int, int, int]) -> bool:
        """True when any demand request targets ``bank_key`` (row policies)."""
        return bank_key in self._bank_reads or bank_key in self._bank_writes

    # ------------------------------------------------------------------ #
    # Observers wiring mitigation <-> DRAM
    # ------------------------------------------------------------------ #
    def _on_activation(self, cycle: int, address: DRAMAddress, is_preventive: bool) -> None:
        if self.mitigation is not None:
            self.mitigation.on_activation(cycle, address, is_preventive)

    def _on_refresh(
        self, cycle: int, rank_key: Tuple[int, int], start_row: int, count: int
    ) -> None:
        if self.mitigation is not None:
            self.mitigation.on_refresh(cycle, rank_key, start_row, count)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def next_issue_cycle(self, cycle: int) -> Optional[int]:
        """Earliest cycle >= ``cycle`` at which some command can issue (None if idle)."""
        decision = self._choose_command(cycle)
        if decision is None:
            return None
        return decision[0]

    def next_decision(self, cycle: int) -> Optional[Tuple[int, Command, Optional[MemoryRequest]]]:
        """Pick the best command as of ``cycle``: ``(issue_cycle, command, request)``.

        The event kernel caches the returned decision and, provided no queue
        state changed in between, hands it back to :meth:`issue_decision` so
        command selection runs once per issued command instead of twice.  A
        cached decision stays the right choice at its issue cycle unless a
        periodic refresh becomes due in between or the scheduling policy's
        priorities shift (BLISS' clearing interval) — check
        :meth:`decision_crosses_boundary` before trusting it.
        """
        return self._choose_command(cycle)

    def issue_decision(
        self, decision: Tuple[int, Command, Optional[MemoryRequest]]
    ) -> int:
        """Issue a decision produced by :meth:`next_decision`; returns its cycle."""
        fused = self._fast_issue_fn
        if fused is not None:
            return fused(decision)
        issue_cycle, command, request = decision
        self.mutations += 1
        self.current_cycle = issue_cycle
        result = self.dram.issue(command, issue_cycle, validated=self._fast_issue)
        self._post_issue(command, request, issue_cycle, result)
        return issue_cycle

    def refresh_crosses_due(self, start: int, end: int) -> bool:
        """True when a periodic refresh becomes due in ``(start, end]``.

        A decision made at ``start`` that issues at ``end`` considered every
        refresh already due at ``start``; only a deadline strictly inside the
        interval can change what the scheduler would pick.
        """
        if not self.dram_config.refresh_enabled:
            return False
        return any(start < due <= end for due in self.next_refresh_due.values())

    def decision_crosses_boundary(self, start: int, end: int) -> bool:
        """True when a decision made at ``start`` may be wrong by ``end``.

        Covers both invalidation sources the queues cannot signal: a
        periodic refresh becoming due (outranks any cached demand command)
        and a scheduling-policy priority boundary (a time-varying scheduler
        such as BLISS re-ranks pending requests at its clearing interval).
        """
        return self.refresh_crosses_due(start, end) or (
            self.scheduler.priority_boundary_crossed(start, end)
        )

    def issue_next(self, cycle: int) -> Optional[int]:
        """Issue the best command at the earliest legal cycle >= ``cycle``.

        Returns the cycle at which the command was issued, or None if the
        controller has nothing to do.
        """
        decision = self._choose_command(cycle)
        if decision is None:
            return None
        return self.issue_decision(decision)

    def demand_act_cycle(
        self, request: MemoryRequest, command: Command, cycle: int
    ) -> int:
        """Earliest legal cycle for a demand ACT, mitigation throttle applied."""
        issue_cycle = self.dram.earliest_issue_cycle(command, cycle)
        if self.mitigation is None:
            return issue_cycle
        allowed = self.mitigation.act_allowed_cycle(request.address, issue_cycle)
        return max(issue_cycle, allowed)

    # -- command selection ------------------------------------------------
    def _choose_command(
        self, cycle: int
    ) -> Optional[Tuple[int, Command, Optional[MemoryRequest]]]:
        """Pick the highest-priority issuable command and its issue cycle."""
        if self._fast_demand:
            # The fused fast select covers the whole priority chain
            # (refresh > RFM > preventive > demand) with cheap pre-bound
            # guards; same decisions, pinned by the identity tests.
            return self._fast_select(cycle)
        refresh_decision = self._refresh_command(cycle)
        if refresh_decision is not None:
            return refresh_decision
        if self._refresh_policy_rfm:
            rfm_decision = self._rfm_command(cycle)
            if rfm_decision is not None:
                return rfm_decision
        preventive_decision = self._preventive_command(cycle)
        if preventive_decision is not None:
            return preventive_decision
        return self._demand_command(cycle)

    def _refresh_command(
        self, cycle: int
    ) -> Optional[Tuple[int, Command, Optional[MemoryRequest]]]:
        if not self.dram_config.refresh_enabled:
            return None
        best: Optional[Tuple[int, Command]] = None
        for rank_key in self._rank_keys:
            channel, rank_id = rank_key
            due = self.next_refresh_due[rank_key]
            owed_extra = self.extra_rank_refreshes[rank_key]
            if cycle < due and owed_extra == 0:
                continue
            rank = self.dram.rank(channel, rank_id)
            open_banks = [
                (bankgroup, bank)
                for (bankgroup, bank), state in rank.banks.items()
                if not state.is_closed()
            ]
            if open_banks:
                # Close one open bank so the REF can go out.
                candidates = []
                for bankgroup, bank in open_banks:
                    command = Command(
                        CommandKind.PRE,
                        channel=channel,
                        rank=rank_id,
                        bankgroup=bankgroup,
                        bank=bank,
                    )
                    candidates.append(
                        (self.dram.earliest_issue_cycle(command, cycle), command)
                    )
                candidate = min(candidates, key=lambda item: item[0])
            else:
                command = Command(CommandKind.REF, channel=channel, rank=rank_id)
                candidate = (self.dram.earliest_issue_cycle(command, cycle), command)
            if best is None or candidate[0] < best[0]:
                best = candidate
        if best is None:
            return None
        return best[0], best[1], None

    def _rfm_command(
        self, cycle: int
    ) -> Optional[Tuple[int, Command, Optional[MemoryRequest]]]:
        """Serve banks whose rolling activation count owes an RFM.

        Mirrors :meth:`_refresh_command`: an open bank is first closed with
        a PRE so the bank-scoped RFM can go out, and the earliest-issuable
        candidate wins.  Ranked above preventive and demand traffic so a
        bank at ``raaimt`` cannot keep accumulating activations — the DDR5
        contract that keeps RAA below ``raammt``.
        """
        best: Optional[Tuple[int, Command]] = None
        trfm = getattr(self.refresh_policy, "trfm", self.dram_config.timing.tRFC)
        for bank_key in self.refresh_policy.rfm_pending():
            channel, rank_id, bankgroup, bank = bank_key
            if self.dram.bank(channel, rank_id, bankgroup, bank).is_closed():
                command = Command(
                    CommandKind.RFM,
                    channel=channel,
                    rank=rank_id,
                    bankgroup=bankgroup,
                    bank=bank,
                    metadata={"trfm": trfm},
                )
            else:
                command = Command(
                    CommandKind.PRE,
                    channel=channel,
                    rank=rank_id,
                    bankgroup=bankgroup,
                    bank=bank,
                )
            issue_cycle = self.dram.earliest_issue_cycle(command, cycle)
            if best is None or issue_cycle < best[0]:
                best = (issue_cycle, command)
        if best is None:
            return None
        return best[0], best[1], None

    def _preventive_command(
        self, cycle: int
    ) -> Optional[Tuple[int, Command, Optional[MemoryRequest]]]:
        self._prune_preventive_queue(cycle)
        best: Optional[Tuple[int, Command, MemoryRequest]] = None
        seen_categories = set()
        for request in self.preventive_queue:
            # All queued refreshes of one bank in the same phase (awaiting
            # their ACT, or awaiting the closing PRE) produce the same command
            # kind at the same earliest cycle — the ACT/PRE constraints do not
            # depend on the row — and ties keep the earliest-queued request,
            # so only the first request per (bank, phase) can win the scan.
            category = (
                request.address.bank_key,
                request.__dict__.get("_refresh_activated", False),
            )
            if category in seen_categories:
                continue
            seen_categories.add(category)
            command = self._next_command_for_refresh(request)
            issue_cycle = self.dram.earliest_issue_cycle(command, cycle)
            if best is None or issue_cycle < best[0]:
                best = (issue_cycle, command, request)
        return best

    def _prune_preventive_queue(self, cycle: int) -> None:
        """Complete preventive refreshes whose victim row was already closed.

        The victim row is refreshed by its preventive ACT; the trailing PRE
        only closes it.  If another command (a refresh PRE, a demand conflict
        PRE or another preventive refresh to the same bank) already closed the
        bank, the refresh is done and the request can retire.
        """
        finished = []
        for request in self.preventive_queue:
            if not request.__dict__.get("_refresh_activated", False):
                continue
            bank = self.dram.bank_for(request.address)
            if bank.is_closed() or bank.open_row != request.address.row:
                finished.append(request)
        for request in finished:
            self.mutations += 1
            self.preventive_queue.remove(request)
            request.complete(cycle)
            self.dram.stats.preventive_refresh_pairs += 1
            self._notify_slot_free()

    def _next_command_for_refresh(self, request: MemoryRequest) -> Command:
        address = request.address
        bank = self.dram.bank_for(address)
        activated = request.__dict__.get("_refresh_activated", False)
        if not activated:
            if bank.is_closed():
                return Command(
                    CommandKind.ACT,
                    channel=address.channel,
                    rank=address.rank,
                    bankgroup=address.bankgroup,
                    bank=address.bank,
                    row=address.row,
                    is_preventive=True,
                )
            return Command(
                CommandKind.PRE,
                channel=address.channel,
                rank=address.rank,
                bankgroup=address.bankgroup,
                bank=address.bank,
            )
        # Already activated: close the victim row to finish the refresh.
        return Command(
            CommandKind.PRE,
            channel=address.channel,
            rank=address.rank,
            bankgroup=address.bankgroup,
            bank=address.bank,
            is_preventive=True,
        )

    def _demand_command(
        self, cycle: int
    ) -> Optional[Tuple[int, Command, Optional[MemoryRequest]]]:
        if self._mitigation_blocks:
            # Alert Back-Off (PRAC): the device asserted ALERT_n, so demand
            # issue stalls until the alert window closes.  Refresh, RFM and
            # preventive traffic — the commands that clear the alert — are
            # selected before this point and are not held back.
            blocked = self.mitigation.demand_blocked_until(cycle)
            if blocked > cycle:
                cycle = blocked
        return self._generic_demand_command(cycle)

    def _build_fast_select(self):
        """Build the fused fast command select with every invariant pre-bound.

        One closure covers :meth:`_choose_command`'s whole priority chain.
        The refresh, RFM and preventive stages run behind cheap guards that
        replicate each helper's own "nothing to do" test (a due/owed rank, an
        attached active refresh policy, a non-empty preventive queue) and
        delegate to the existing helper the moment the guard trips — so the
        rarely-taken stages stay one implementation.  The demand stage is the
        FR-FCFS scan against the struct-of-arrays timing table: semantically
        identical to :meth:`_generic_demand_command` with the default
        scheduler — same bank iteration order, same early-exit hit/conflict
        scan, same ``(issue_cycle, arrival, scan_key)`` ordering — but it
        reads the shared :class:`~repro.dram.bank.BankTimingTable` arrays and
        rank scalars directly and constructs a single
        :class:`~repro.dram.commands.Command` for the winner, instead of
        materializing one per candidate through ``Bank``/``Rank`` method
        chains.  Equivalence is pinned by ``tests/test_fastpath_identity.py``
        and the golden traces.

        Selection runs once per scheduling decision, and on low-parallelism
        shapes (one pending bank) rebinding its ~30 invariant inputs from
        ``self`` dominated its cost — so they are bound once here as closure
        defaults.  Everything bound is construction-stable: the timing-table
        lists, bus dicts and refresh-due dicts are mutated in place (never
        reassigned — see ``DRAMSystem.restore``/``MemoryController.restore``),
        and the queues/indexes/caches live for the controller's lifetime.
        The mitigation's ACT throttle is pre-resolved to ``None`` when it is
        the base-class no-op (CoMeT, PARA, Hydra...) so only real throttlers
        (BlockHammer) pay the per-candidate call.
        """
        from repro.mitigations.base import RowHammerMitigation

        dram = self.dram
        table = dram.timing_table
        timing = self.dram_config.timing
        mitigation = self.mitigation
        act_throttled = mitigation is not None and (
            type(mitigation).act_allowed_cycle
            is not RowHammerMitigation.act_allowed_cycle
        )

        def select(
            cycle: int,
            *,
            self=self,
            refresh_enabled=self.dram_config.refresh_enabled,
            rank_keys=tuple(self._rank_keys),
            next_refresh_due=self.next_refresh_due,
            extra_rank_refreshes=self.extra_rank_refreshes,
            refresh_command=self._refresh_command,
            refresh_policy_rfm=self._refresh_policy_rfm,
            preventive_queue=self.preventive_queue,
            preventive_command=self._preventive_command,
            mitigation_blocks=self._mitigation_blocks,
            demand_blocked_until=(
                mitigation.demand_blocked_until
                if self._mitigation_blocks
                else None
            ),
            update_drain_mode=self._update_drain_mode,
            read_queue=self.read_queue,
            write_queue=self.write_queue,
            row_policy_closes=self._row_policy_closes,
            open_rows=table.open_row,
            col_accesses=table.col_accesses,
            next_act=table.next_act,
            next_pre=table.next_pre,
            next_read=table.next_read,
            next_write=table.next_write,
            tRRD_L=timing.tRRD_L,
            tRRD_S=timing.tRRD_S,
            tFAW=timing.tFAW,
            tCCD_L=timing.tCCD_L,
            tCCD_S=timing.tCCD_S,
            tWTR_L=timing.tWTR_L,
            tWTR_S=timing.tWTR_S,
            tRTW=timing.tRTW,
            tCL=timing.tCL,
            tCWL=timing.tCWL,
            command_bus_free=dram._command_bus_free,
            data_bus_free=dram._data_bus_free,
            column_cap=self.config.column_cap,
            act_allowed_cycle=(
                mitigation.act_allowed_cycle if act_throttled else None
            ),
            merged_cache=self._merged_cache,
            bank_meta=self._bank_meta,
            ranks=dram.ranks,
            all_bank_reads=self._bank_reads,
            all_bank_writes=self._bank_writes,
            ACT=CommandKind.ACT,
            PRE=CommandKind.PRE,
            RD=CommandKind.RD,
            WR=CommandKind.WR,
        ) -> Optional[Tuple[int, Command, Optional[MemoryRequest]]]:
            # Stage 1: periodic refresh (outranks everything).  The guard is
            # _refresh_command's own per-rank "due or owed" test; the helper
            # runs only when some rank trips it.
            if refresh_enabled:
                for rank_key in rank_keys:
                    if (
                        cycle >= next_refresh_due[rank_key]
                        or extra_rank_refreshes[rank_key]
                    ):
                        decision = refresh_command(cycle)
                        if decision is not None:
                            return decision
                        break
            # Stage 2: owed bank-scoped RFMs (DDR5 active refresh policies).
            if refresh_policy_rfm:
                decision = self._rfm_command(cycle)
                if decision is not None:
                    return decision
            # Stage 3: queued preventive refreshes (priority over demand).
            # On an empty queue _preventive_command is a no-op returning
            # None (nothing to prune, nothing to scan), so the truthiness
            # guard is exact.
            if preventive_queue:
                decision = preventive_command(cycle)
                if decision is not None:
                    return decision
            # Stage 4: demand, stalled by Alert Back-Off when asserted.
            if mitigation_blocks:
                blocked = demand_blocked_until(cycle)
                if blocked > cycle:
                    cycle = blocked
            update_drain_mode()
            reads_active = bool(read_queue)
            writes_active = bool(write_queue) and (
                self._draining_writes or not read_queue
            )

            best_order: Optional[tuple] = None
            best_kind: Optional[CommandKind] = None
            best_command: Optional[Command] = None
            best_request: Optional[MemoryRequest] = None

            bank_reads = all_bank_reads if reads_active else _NO_PENDING
            bank_writes = all_bank_writes if writes_active else _NO_PENDING
            if not bank_writes:
                # Common case (reads only): scan the read index in place —
                # no combined key list to allocate.
                bank_keys = bank_reads
            elif not bank_reads:
                bank_keys = bank_writes
            else:
                bank_keys = list(bank_reads)
                bank_keys.extend(
                    key for key in bank_writes if key not in bank_reads
                )

            for bank_key in bank_keys:
                reads = bank_reads.get(bank_key)
                writes = bank_writes.get(bank_key)
                if writes is None:
                    pending = reads.requests
                    scan_key = (0, reads.min_seq)
                elif reads is None:
                    pending = writes.requests
                    scan_key = (1, writes.min_seq)
                else:
                    pending = merged_cache.get(bank_key)
                    if pending is None:
                        pending = _merge_pending(reads.requests, writes.requests)
                        merged_cache[bank_key] = pending
                    scan_key = (0, reads.min_seq)

                meta = bank_meta.get(bank_key)
                if meta is None:
                    rank = ranks[(bank_key[0], bank_key[1])]
                    meta = bank_meta[bank_key] = (
                        rank,
                        rank.banks[(bank_key[2], bank_key[3])].index,
                        bank_key[0],
                        bank_key[2],
                    )
                rank, bank_index, channel, bankgroup = meta

                bus = command_bus_free[channel]
                issue = cycle if cycle > bus else bus
                row = open_rows[bank_index]
                if row is None:
                    # Closed bank: the oldest request wins and needs an ACT.
                    request = pending[0]
                    if next_act[bank_index] > issue:
                        issue = next_act[bank_index]
                    if rank.blocked_until > issue:
                        issue = rank.blocked_until
                    if rank.last_act_bankgroup is not None:
                        ready = rank.last_act_cycle + (
                            tRRD_L
                            if bankgroup == rank.last_act_bankgroup
                            else tRRD_S
                        )
                        if ready > issue:
                            issue = ready
                    recent = rank.recent_act_cycles
                    if len(recent) == recent.maxlen:
                        ready = recent[0] + tFAW
                        if ready > issue:
                            issue = ready
                    if act_allowed_cycle is not None:
                        allowed = act_allowed_cycle(request.address, issue)
                        if allowed > issue:
                            issue = allowed
                    kind = ACT
                else:
                    cap_reached = col_accesses[bank_index] >= column_cap
                    first_hit: Optional[MemoryRequest] = None
                    first_conflict: Optional[MemoryRequest] = None
                    # The row index answers "any pending hit?" without
                    # walking the list; when there is none (every selection
                    # under a hammering pattern) the oldest request is the
                    # conflict and the scan below is skipped entirely.
                    if reads is None:
                        has_hit = row in writes.row_counts
                    elif writes is None:
                        has_hit = row in reads.row_counts
                    else:
                        has_hit = row in reads.row_counts or row in writes.row_counts
                    if not has_hit:
                        first_conflict = pending[0]
                    else:
                        for request in pending:
                            if request.address.row == row:
                                if first_hit is None:
                                    first_hit = request
                                    if not cap_reached or first_conflict is not None:
                                        break
                            elif first_conflict is None:
                                first_conflict = request
                                if first_hit is not None:
                                    break
                    if first_hit is not None and not (
                        cap_reached and first_conflict is not None
                    ):
                        request = first_hit
                        is_write = request.is_write
                        ready = (
                            next_write[bank_index]
                            if is_write
                            else next_read[bank_index]
                        )
                        if ready > issue:
                            issue = ready
                        if rank.blocked_until > issue:
                            issue = rank.blocked_until
                        if rank.last_col_bankgroup is not None:
                            ready = rank.last_col_cycle + (
                                tCCD_L
                                if bankgroup == rank.last_col_bankgroup
                                else tCCD_S
                            )
                            if ready > issue:
                                issue = ready
                            if rank.last_col_was_write and not is_write:
                                ready = rank.last_col_data_end + (
                                    tWTR_L
                                    if bankgroup == rank.last_col_bankgroup
                                    else tWTR_S
                                )
                                if ready > issue:
                                    issue = ready
                            if not rank.last_col_was_write and is_write:
                                ready = rank.last_col_cycle + tRTW
                                if ready > issue:
                                    issue = ready
                        data_latency = tCWL if is_write else tCL
                        bus_free = data_bus_free[channel]
                        if issue + data_latency < bus_free:
                            issue = bus_free - data_latency
                        kind = WR if is_write else RD
                    elif first_conflict is None:
                        continue
                    else:
                        # Row conflict (or column cap reached): precharge on
                        # behalf of the oldest conflicting request.
                        request = first_conflict
                        if next_pre[bank_index] > issue:
                            issue = next_pre[bank_index]
                        if rank.blocked_until > issue:
                            issue = rank.blocked_until
                        kind = PRE

                order = (issue, request.arrival_cycle, scan_key)
                if best_order is None or order < best_order:
                    best_order = order
                    best_kind = kind
                    best_request = request

            if row_policy_closes:
                for bank_key, opened_cycle, not_before in (
                    self.row_policy.close_candidates(self, cycle)
                ):
                    bank = self.dram.bank(*bank_key)
                    if bank.is_closed():
                        continue
                    command = Command(
                        PRE,
                        channel=bank_key[0],
                        rank=bank_key[1],
                        bankgroup=bank_key[2],
                        bank=bank_key[3],
                        metadata={"policy_close": True},
                    )
                    issue_cycle = self.dram.earliest_issue_cycle(
                        command, max(cycle, not_before)
                    )
                    order = (
                        issue_cycle,
                        *self.scheduler.close_priority(opened_cycle),
                        (2, *bank_key),
                    )
                    if best_order is None or order < best_order:
                        best_order = order
                        best_command = command
                        best_request = None

            if best_order is None:
                return None
            if best_command is None:
                address = best_request.address
                if best_kind is ACT:
                    best_command = Command(
                        ACT,
                        channel=address.channel,
                        rank=address.rank,
                        bankgroup=address.bankgroup,
                        bank=address.bank,
                        row=address.row,
                    )
                elif best_kind is PRE:
                    best_command = Command(
                        PRE,
                        channel=address.channel,
                        rank=address.rank,
                        bankgroup=address.bankgroup,
                        bank=address.bank,
                    )
                else:
                    best_command = Command(
                        best_kind,
                        channel=address.channel,
                        rank=address.rank,
                        bankgroup=address.bankgroup,
                        bank=address.bank,
                        column=address.column,
                    )
            return best_order[0], best_command, best_request

        return select

    def _generic_demand_command(
        self, cycle: int
    ) -> Optional[Tuple[int, Command, Optional[MemoryRequest]]]:
        self._update_drain_mode()
        reads_active = bool(self.read_queue)
        writes_active = bool(self.write_queue) and (
            self._draining_writes or not self.read_queue
        )

        best_order: Optional[tuple] = None
        best_command: Optional[Command] = None
        best_request: Optional[MemoryRequest] = None

        if reads_active or writes_active:
            bank_reads = self._bank_reads if reads_active else _NO_PENDING
            bank_writes = self._bank_writes if writes_active else _NO_PENDING
            bank_keys: List[Tuple[int, int, int, int]] = list(bank_reads)
            if bank_writes:
                bank_keys.extend(
                    key for key in bank_writes if key not in bank_reads
                )
            dram_bank = self.dram.bank
            bank_candidate = self.scheduler.bank_candidate
            for bank_key in bank_keys:
                reads = bank_reads.get(bank_key)
                writes = bank_writes.get(bank_key)
                # The scan key reproduces the old full-queue scan's bank
                # order deterministically: reads before writes, then the
                # bank's earliest-enqueued pending request (a bank with
                # reads always keys on them — reads were scanned first).
                if writes is None:
                    pending = reads.requests
                    scan_key = (0, reads.min_seq)
                elif reads is None:
                    pending = writes.requests
                    scan_key = (1, writes.min_seq)
                else:
                    pending = self._merged_cache.get(bank_key)
                    if pending is None:
                        pending = _merge_pending(reads.requests, writes.requests)
                        self._merged_cache[bank_key] = pending
                    scan_key = (0, reads.min_seq)
                candidate = bank_candidate(
                    self, dram_bank(*bank_key), pending, cycle
                )
                if candidate is None:
                    continue
                issue_cycle, priority, command, request = candidate
                order = (issue_cycle, *priority, scan_key)
                if best_order is None or order < best_order:
                    best_order = order
                    best_command = command
                    best_request = request

        for bank_key, opened_cycle, not_before in self.row_policy.close_candidates(
            self, cycle
        ):
            bank = self.dram.bank(*bank_key)
            if bank.is_closed():
                continue
            command = Command(
                CommandKind.PRE,
                channel=bank_key[0],
                rank=bank_key[1],
                bankgroup=bank_key[2],
                bank=bank_key[3],
                metadata={"policy_close": True},
            )
            issue_cycle = self.dram.earliest_issue_cycle(
                command, max(cycle, not_before)
            )
            order = (
                issue_cycle,
                *self.scheduler.close_priority(opened_cycle),
                (2, *bank_key),
            )
            if best_order is None or order < best_order:
                best_order = order
                best_command = command
                best_request = None

        if best_order is None:
            return None
        return best_order[0], best_command, best_request

    def _update_drain_mode(self) -> None:
        if self._draining_writes:
            if len(self.write_queue) <= self.config.write_drain_low:
                self._draining_writes = False
        elif len(self.write_queue) >= self.config.write_drain_high:
            self._draining_writes = True

    # -- post-issue bookkeeping -------------------------------------------
    def _post_issue(
        self,
        command: Command,
        request: Optional[MemoryRequest],
        cycle: int,
        result: Optional[int],
    ) -> None:
        if command.kind is CommandKind.REF:
            rank_key = (command.channel, command.rank)
            if self.extra_rank_refreshes[rank_key] > 0:
                self.extra_rank_refreshes[rank_key] -= 1
            else:
                self.next_refresh_due[rank_key] += self.dram_config.tREFI
            return

        bank_key = (command.channel, command.rank, command.bankgroup, command.bank)

        if command.kind is CommandKind.RFM:
            # The device model already blocked the bank; the policy performs
            # the device's management action (victim refresh, RAA payback).
            self.refresh_policy.on_rfm(cycle, bank_key)
            return

        if command.kind is CommandKind.ACT:
            self.row_policy.on_act(bank_key, cycle)
            if request is not None:
                if request.request_type is RequestType.PREVENTIVE_REFRESH:
                    request.__dict__["_refresh_activated"] = True
                else:
                    # A demand request whose row had to be opened: a miss.
                    self.stats.row_misses += 1
            self.scheduler.on_issue(command, request, cycle)
            return

        if command.kind is CommandKind.PRE:
            self.row_policy.on_pre(bank_key)
            if (
                request is not None
                and request.request_type is RequestType.PREVENTIVE_REFRESH
                and request.__dict__.get("_refresh_activated", False)
            ):
                self.preventive_queue.remove(request)
                request.complete(cycle)
                self.dram.stats.preventive_refresh_pairs += 1
                self._notify_slot_free()
            elif (
                request is not None
                and request.request_type is not RequestType.PREVENTIVE_REFRESH
            ):
                # A demand PRE: an open row lost to a conflicting request.
                self.stats.row_conflicts += 1
            elif command.metadata.get("policy_close"):
                # The row policy closing an idle row (no request behind it).
                self.stats.policy_precharges += 1
            self.scheduler.on_issue(command, request, cycle)
            return

        if command.kind in (CommandKind.RD, CommandKind.WR) and request is not None:
            request.issue_cycle = cycle
            completion = result if result is not None else cycle
            queue = self.write_queue if request.is_write else self.read_queue
            queue.remove(request)
            self._unindex_request(request)
            request.complete(completion)
            if request.is_read and not request.is_mitigation_traffic:
                self.stats.record_read_completion(request)
            # Served straight from the open row: a row-buffer hit.
            self.stats.row_hits += 1
            self.scheduler.on_issue(command, request, cycle)
            self._notify_slot_free()

    def _notify_slot_free(self) -> None:
        for callback in self._slot_free_callbacks:
            callback()

    def _build_fast_issue(self):
        """Build the fused issue path for the fast demand scan.

        One closure replays ``DRAMSystem.issue`` + :meth:`_post_issue` for
        the per-bank command kinds (ACT/PRE/RD/WR) with every
        construction-stable input pre-bound, the no-op policy hooks
        resolved away (the default FR-FCFS scheduler and open-page row
        policy observe nothing), and the ACT-event :class:`DRAMAddress`
        memoized per row — hammering workloads re-activate the same rows by
        construction.  REF and RFM are once-per-tREFI rare and take the
        generic path unchanged.  Semantically this must stay a line-by-line
        transliteration of the two methods it fuses; the whole-run identity
        tests (``tests/test_fastpath_identity.py``) and the golden traces
        pin that equivalence.
        """
        dram = self.dram
        scheduler = self.scheduler
        row_policy = self.row_policy

        def issue_fused(
            decision,
            *,
            self=self,
            dram=dram,
            ranks=dram.ranks,
            dram_stats=dram.stats,
            ctl_stats=self.stats,
            command_bus_free=dram._command_bus_free,
            data_bus_free=dram._data_bus_free,
            deliver_activation=dram.deliver_activation,
            notify_row_refresh=dram.notify_row_refresh,
            on_act_hook=(
                row_policy.on_act
                if type(row_policy).on_act is not RowPolicy.on_act
                else None
            ),
            on_pre_hook=(
                row_policy.on_pre
                if type(row_policy).on_pre is not RowPolicy.on_pre
                else None
            ),
            on_issue_hook=(
                scheduler.on_issue
                if type(scheduler).on_issue is not SchedulingPolicy.on_issue
                else None
            ),
            read_queue=self.read_queue,
            write_queue=self.write_queue,
            preventive_queue=self.preventive_queue,
            unindex_request=self._unindex_request,
            slot_free_callbacks=self._slot_free_callbacks,
            act_addresses={},
            act_memo_limit=1 << 20,
            PREVENTIVE_REFRESH=RequestType.PREVENTIVE_REFRESH,
            ACT=CommandKind.ACT,
            PRE=CommandKind.PRE,
            RD=CommandKind.RD,
            WR=CommandKind.WR,
            DRAMAddress=DRAMAddress,
        ):
            issue_cycle, command, request = decision
            self.mutations += 1
            self.current_cycle = issue_cycle
            kind = command.kind
            if kind is not ACT and kind is not PRE and kind is not RD and kind is not WR:
                # REF / RFM: rank-scoped, rare, and full of policy plumbing
                # — the generic path costs nothing at their rate.
                result = dram.issue(command, issue_cycle, validated=True)
                self._post_issue(command, request, issue_cycle, result)
                return issue_cycle
            channel = command.channel
            rank_id = command.rank
            bankgroup = command.bankgroup
            bank = command.bank
            rank = ranks[(channel, rank_id)]
            if issue_cycle > dram.current_cycle:
                dram.current_cycle = issue_cycle
            command_bus_free[channel] = issue_cycle + 1
            bank_key = (channel, rank_id, bankgroup, bank)

            if kind is ACT:
                preventive = command.is_preventive
                rank.apply_act(issue_cycle, bankgroup, bank, command.row, preventive)
                dram_stats.acts += 1
                if preventive:
                    dram_stats.preventive_acts += 1
                row_key = (channel, rank_id, bankgroup, bank, command.row)
                address = act_addresses.get(row_key)
                if address is None:
                    address = DRAMAddress(
                        channel=channel,
                        rank=rank_id,
                        bankgroup=bankgroup,
                        bank=bank,
                        row=command.row,
                        column=0,
                    )
                    if len(act_addresses) < act_memo_limit:
                        act_addresses[row_key] = address
                deliver_activation(issue_cycle, address, preventive)
                if preventive:
                    notify_row_refresh(issue_cycle, address)
                if on_act_hook is not None:
                    on_act_hook(bank_key, issue_cycle)
                if request is not None:
                    if request.request_type is PREVENTIVE_REFRESH:
                        request.__dict__["_refresh_activated"] = True
                    else:
                        ctl_stats.row_misses += 1
                if on_issue_hook is not None:
                    on_issue_hook(command, request, issue_cycle)
                return issue_cycle

            if kind is PRE:
                rank.apply_pre(issue_cycle, bankgroup, bank)
                dram_stats.pres += 1
                if on_pre_hook is not None:
                    on_pre_hook(bank_key)
                if request is not None:
                    if request.request_type is PREVENTIVE_REFRESH:
                        if request.__dict__.get("_refresh_activated", False):
                            preventive_queue.remove(request)
                            request.complete(issue_cycle)
                            dram_stats.preventive_refresh_pairs += 1
                            for callback in slot_free_callbacks:
                                callback()
                        elif command.metadata.get("policy_close"):
                            ctl_stats.policy_precharges += 1
                    else:
                        ctl_stats.row_conflicts += 1
                elif command.metadata.get("policy_close"):
                    ctl_stats.policy_precharges += 1
                if on_issue_hook is not None:
                    on_issue_hook(command, request, issue_cycle)
                return issue_cycle

            # RD / WR
            is_write = kind is WR
            bank_state = rank.banks[(bankgroup, bank)]
            data_end = rank.apply_column(
                issue_cycle, bankgroup, bank, bank_state.open_row, is_write
            )
            data_bus_free[channel] = data_end
            if is_write:
                dram_stats.writes += 1
            else:
                dram_stats.reads += 1
            if request is not None:
                request.issue_cycle = issue_cycle
                queue = write_queue if request.is_write else read_queue
                queue.remove(request)
                unindex_request(request)
                request.complete(data_end)
                if request.is_read and not request.is_mitigation_traffic:
                    ctl_stats.record_read_completion(request)
                ctl_stats.row_hits += 1
                if on_issue_hook is not None:
                    on_issue_hook(command, request, issue_cycle)
                for callback in slot_free_callbacks:
                    callback()
            return issue_cycle

        return issue_fused

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict:
        """Plain-data checkpoint of the controller and everything it owns.

        Valid only at a *drained point*: in-flight :class:`MemoryRequest`
        objects carry completion closures that cannot round-trip through
        plain data, so all queues must be empty.  The composed snapshot
        covers the DRAM device state (timing table, activation counters,
        statistics) and the attached mitigation, making it a full
        memory-system checkpoint.
        """
        if self.pending_requests() > 0:
            raise RuntimeError(
                "MemoryController.snapshot() requires empty queues "
                f"({self.pending_requests()} requests still pending)"
            )
        stats = dict(vars(self.stats))
        stats["per_core_read_latency"] = dict(self.stats.per_core_read_latency)
        stats["per_core_reads"] = dict(self.stats.per_core_reads)
        return {
            "next_refresh_due": list(self.next_refresh_due.items()),
            "extra_rank_refreshes": list(self.extra_rank_refreshes.items()),
            "draining_writes": self._draining_writes,
            "current_cycle": self.current_cycle,
            "enqueue_seq": self._enqueue_seq,
            "stats": stats,
            "dram": self.dram.snapshot(),
            "mitigation": (
                self.mitigation.snapshot() if self.mitigation is not None else None
            ),
            "refresh_policy": (
                self.refresh_policy.snapshot() if self._refresh_policy_rfm else None
            ),
        }

    def restore(self, state: Dict) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        # In-place: the fast select binds these dicts at construction.
        self.next_refresh_due.clear()
        self.next_refresh_due.update(
            (tuple(key), due) for key, due in state["next_refresh_due"]
        )
        self.extra_rank_refreshes.clear()
        self.extra_rank_refreshes.update(
            (tuple(key), count) for key, count in state["extra_rank_refreshes"]
        )
        self._draining_writes = state["draining_writes"]
        self.current_cycle = state["current_cycle"]
        self._enqueue_seq = state["enqueue_seq"]
        for key, value in state["stats"].items():
            if key == "per_core_read_latency":
                self.stats.per_core_read_latency = defaultdict(int, value)
            elif key == "per_core_reads":
                self.stats.per_core_reads = defaultdict(int, value)
            else:
                setattr(self.stats, key, value)
        self.dram.restore(state["dram"])
        if self.mitigation is not None and state["mitigation"] is not None:
            self.mitigation.restore(state["mitigation"])
        # ``.get``: snapshots written before active refresh policies existed
        # carry no policy state (and passive policies have none to restore).
        policy_state = state.get("refresh_policy")
        if self._refresh_policy_rfm and policy_state is not None:
            self.refresh_policy.restore(policy_state)
        self.read_queue.clear()
        self.write_queue.clear()
        self.preventive_queue.clear()
        self._bank_reads.clear()
        self._bank_writes.clear()
        self._merged_cache.clear()
        self.mutations += 1

    # ------------------------------------------------------------------ #
    # Draining (used at the end of simulations)
    # ------------------------------------------------------------------ #
    def drain(self, cycle: int, max_commands: int = 10_000_000) -> int:
        """Issue commands until all queues are empty; returns the final cycle."""
        issued = 0
        current = cycle
        while self.has_work() and issued < max_commands:
            next_cycle = self.issue_next(current)
            if next_cycle is None:
                break
            current = next_cycle
            issued += 1
        return current
