"""Pluggable memory-controller policies.

The memory controller of Table 2 is one point in a three-axis policy space,
and this module makes each axis a first-class, registered, spec-serializable
component:

* :class:`SchedulingPolicy` — which pending request a bank serves next.
  ``fr_fcfs`` (row hits first under a column cap; the paper's controller),
  ``fcfs`` (strict arrival order, no hit-first reordering) and ``bliss``
  (a BLISS-style starvation-aware scheduler that blacklists cores streaming
  consecutive requests, after Subramanian et al.).
* :class:`RowPolicy` — what happens to a row after its column accesses.
  ``open_page`` (rows stay open until a conflict or refresh needs the bank;
  the paper's policy), ``closed_page`` (close a bank as soon as it has no
  queued work) and ``adaptive_timeout`` (close an idle row after a fixed
  residency timeout — which also bounds RowPress-style long-open-row
  disturbance).
* :class:`RefreshPolicy` — how periodic refresh is organized. ``all_bank``
  (one rank-level REF every tREFI; the paper's mode),
  ``fine_granularity`` (DDR4 FGR: REF 2x/4x as often, each refreshing a
  fraction of the rows and blocking the rank for the shorter tRFC2/tRFC4)
  and ``rfm`` (DDR5 Refresh Management: per-bank rolling activation
  accounting with ``raaimt``/``raammt`` thresholds, issuing bank-scoped
  RFM commands that block the bank for ``tRFM`` while the device refreshes
  likely victims).  True same-bank REFpb is deliberately not modelled: the
  mitigation observer protocol
  (:meth:`repro.mitigations.base.RowHammerMitigation.on_refresh`)
  is rank-scoped, and FGR reproduces the scheduling-relevant property —
  shorter, more frequent refresh blackouts — without changing it.

A :class:`ControllerPolicySpec` names one policy per axis (plus policy
parameters) and travels with :class:`~repro.experiment.spec.PlatformSpec`
through the experiment codec, the sweep grids, the security-audit campaigns
and the CLI.  The default triple ``(fr_fcfs, open_page, all_bank)`` is
bit-identical to the pre-policy monolithic controller (pinned by the golden
traces under ``tests/golden/``).

This module also defines :data:`NEVER`, the typed integer "no event"
sentinel that replaced the ``float("inf")`` value previously mixed into
integer cycle arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.dram.address import DRAMAddress
from repro.dram.commands import Command, CommandKind
from repro.dram.config import DRAMConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controller.controller import MemoryController
    from repro.controller.request import MemoryRequest
    from repro.dram.bank import Bank

#: "No event" cycle sentinel.  An ``int`` (not ``float("inf")``) so that
#: comparing or ``max``-ing it against cycle counters can never silently
#: promote integer cycle arithmetic to floats; any real cycle is far below
#: it.  Test for it with ``cycle >= NEVER``.
NEVER: int = 2**63

#: A scheduling decision for one bank: ``(issue_cycle, priority, command,
#: request)``.  ``priority`` is a scheduler-defined tuple compared after the
#: issue cycle (and before the controller's deterministic scan tie-break);
#: every candidate of one scheduler instance must use the same tuple shape.
BankCandidate = Tuple[int, tuple, Command, "MemoryRequest"]


# --------------------------------------------------------------------------- #
# Registries
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PolicyEntry:
    """One registered controller policy and its catalog metadata."""

    name: str
    kind: str  # "scheduler" | "row_policy" | "refresh_policy"
    cls: type = field(repr=False)
    description: str = ""

    @property
    def params(self) -> Tuple[str, ...]:
        """Names of the policy parameters this policy accepts."""
        return tuple(getattr(self.cls, "PARAMS", ()))

    def build(self, params: Mapping[str, Any]):
        """Construct one instance from the subset of ``params`` it accepts."""
        accepted = {k: v for k, v in params.items() if k in self.params}
        return self.cls(**accepted)


_SCHEDULERS: Dict[str, PolicyEntry] = {}
_ROW_POLICIES: Dict[str, PolicyEntry] = {}
_REFRESH_POLICIES: Dict[str, PolicyEntry] = {}

_REGISTRIES: Dict[str, Dict[str, PolicyEntry]] = {
    "scheduler": _SCHEDULERS,
    "row_policy": _ROW_POLICIES,
    "refresh_policy": _REFRESH_POLICIES,
}


class UnknownPolicyError(ValueError):
    """A policy name that is not in its axis' registry."""

    def __init__(self, kind: str, name: str) -> None:
        super().__init__(
            f"unknown {kind} {name!r}; known: {sorted(_REGISTRIES[kind])}"
        )
        self.kind = kind
        self.name = name


def _register(kind: str, name: str, description: str):
    def decorator(cls: type) -> type:
        _REGISTRIES[kind][name] = PolicyEntry(
            name=name, kind=kind, cls=cls, description=description
        )
        cls.name = name
        return cls

    return decorator


def register_scheduler(name: str, description: str = ""):
    """Class decorator registering a :class:`SchedulingPolicy`."""
    return _register("scheduler", name, description)


def register_row_policy(name: str, description: str = ""):
    """Class decorator registering a :class:`RowPolicy`."""
    return _register("row_policy", name, description)


def register_refresh_policy(name: str, description: str = ""):
    """Class decorator registering a :class:`RefreshPolicy`."""
    return _register("refresh_policy", name, description)


def policy_entry(kind: str, name: str) -> PolicyEntry:
    entry = _REGISTRIES[kind].get(name)
    if entry is None:
        raise UnknownPolicyError(kind, name)
    return entry


def scheduler_names() -> List[str]:
    return sorted(_SCHEDULERS)


def row_policy_names() -> List[str]:
    return sorted(_ROW_POLICIES)


def refresh_policy_names() -> List[str]:
    return sorted(_REFRESH_POLICIES)


def policy_catalog() -> List[PolicyEntry]:
    """Every registered policy across the three axes (for ``repro list``)."""
    entries: List[PolicyEntry] = []
    for registry in _REGISTRIES.values():
        entries.extend(registry[name] for name in sorted(registry))
    return entries


# --------------------------------------------------------------------------- #
# Protocol base classes
# --------------------------------------------------------------------------- #
class SchedulingPolicy:
    """Decides which pending request a bank serves next.

    The controller keeps an incremental per-bank index of pending requests
    (sorted by arrival) and asks the policy for one candidate per bank; the
    bank candidates then compete on ``(issue_cycle, *priority, scan_key)``
    where ``scan_key`` is the controller's deterministic tie-break.  Policies
    may keep internal state (BLISS' blacklist) — every controller owns its
    own policy instances.
    """

    name = "base"
    #: Policy parameters accepted by the constructor (spec ``params`` keys).
    PARAMS: Tuple[str, ...] = ()
    #: True when the controller's struct-of-arrays demand scan
    #: (:meth:`~repro.controller.controller.MemoryController._build_fast_select`)
    #: reproduces this policy's :meth:`bank_candidate` semantics exactly.
    #: Policies that reorder on anything beyond (row state, arrival, issue
    #: cycle) must leave this False and take the generic per-bank scan.
    SUPPORTS_FAST_SCAN = False

    def bank_candidate(
        self,
        controller: "MemoryController",
        bank: "Bank",
        pending: Sequence["MemoryRequest"],
        cycle: int,
    ) -> Optional[BankCandidate]:
        """Best command for one bank.

        ``pending`` is the bank's non-empty pending-request list in
        (arrival, request-id) order — the controller's live per-bank index,
        so policies must not mutate it.
        """
        raise NotImplementedError

    def close_priority(self, opened_cycle: int) -> tuple:
        """Priority tuple for a row-policy close (PRE) candidate.

        Must have the same shape as the tuples :meth:`bank_candidate`
        returns so close candidates compare against demand candidates.
        """
        return (opened_cycle,)

    def on_issue(
        self, command: Command, request: Optional["MemoryRequest"], cycle: int
    ) -> None:
        """Observe every issued command (BLISS tracks served streaks here)."""

    def priority_boundary_crossed(self, start: int, end: int) -> bool:
        """True when the policy's priorities change inside ``(start, end]``.

        The event kernel caches one decision per controller and replays it
        at its issue cycle; a time-varying scheduler (BLISS' clearing
        interval) must report its boundaries here so a decision spanning
        one is recomputed instead of issuing with stale priorities.
        """
        return False


class RowPolicy:
    """Decides whether an open row stays open once its bank has no work.

    The controller reports row transitions through :meth:`on_act` /
    :meth:`on_pre` and asks for :meth:`close_candidates` during command
    selection; a close candidate is a speculative PRE that competes with
    demand candidates on issue cycle.  The default (open-page) keeps every
    row open and emits nothing, which is what makes it zero-cost.
    """

    name = "base"
    PARAMS: Tuple[str, ...] = ()

    def on_act(self, bank_key: Tuple[int, int, int, int], cycle: int) -> None:
        """A row was opened in ``bank_key`` at ``cycle``."""

    def on_pre(self, bank_key: Tuple[int, int, int, int]) -> None:
        """``bank_key``'s open row was closed."""

    def close_candidates(
        self, controller: "MemoryController", cycle: int
    ) -> Iterable[Tuple[Tuple[int, int, int, int], int, int]]:
        """Banks the policy wants precharged: ``(bank_key, opened, not_before)``.

        ``opened`` is the cycle the row was opened (the candidate's age for
        tie-breaking); ``not_before`` is the earliest cycle the close may
        issue (``adaptive_timeout`` dates it at ``opened + timeout``).
        """
        return ()


class RefreshPolicy:
    """Shapes the periodic-refresh schedule.

    Passive policies rewrite the DRAM configuration before the device model
    is built (the same hook mitigations such as REGA use); the controller's
    refresh machinery — per-rank due times staggered across ranks, owed
    extra refreshes, PRE-before-REF — then operates on the adjusted
    ``tREFI``/``tRFC``/``rows_per_refresh`` without further policy calls.

    Policies that issue their own refresh-management traffic (DDR5 RFM)
    additionally set :attr:`ISSUES_RFM` and implement the active hooks: the
    controller then calls :meth:`attach` once after the DRAM system is built
    (the policy registers its own ACT/REF observers there), folds the banks
    reported by :meth:`rfm_pending` into command selection ahead of
    preventive and demand traffic, reports each issued RFM through
    :meth:`on_rfm`, and carries :meth:`snapshot`/:meth:`restore` in its
    checkpoint.
    """

    name = "base"
    PARAMS: Tuple[str, ...] = ()
    #: True for policies that track activations and owe RFM commands; the
    #: controller skips all active-hook wiring when False, so passive
    #: policies cost nothing on the scheduling path.
    ISSUES_RFM = False

    def adjust_dram_config(self, config: DRAMConfig) -> DRAMConfig:
        return config

    def attach(self, controller: "MemoryController") -> None:
        """Called once by the controller after its DRAM system is built."""

    def rfm_pending(self) -> Sequence[Tuple[int, int, int, int]]:
        """Bank keys whose rolling activation count currently owes an RFM."""
        return ()

    def on_rfm(self, cycle: int, bank_key: Tuple[int, int, int, int]) -> None:
        """An RFM command to ``bank_key`` was issued at ``cycle``."""

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data checkpoint of the policy's mutable state."""
        return {}

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore the state captured by :meth:`snapshot`."""


# --------------------------------------------------------------------------- #
# Command construction helpers
# --------------------------------------------------------------------------- #
def _act_command(request: "MemoryRequest") -> Command:
    address = request.address
    return Command(
        CommandKind.ACT,
        channel=address.channel,
        rank=address.rank,
        bankgroup=address.bankgroup,
        bank=address.bank,
        row=address.row,
    )


def _pre_command(request: "MemoryRequest") -> Command:
    address = request.address
    return Command(
        CommandKind.PRE,
        channel=address.channel,
        rank=address.rank,
        bankgroup=address.bankgroup,
        bank=address.bank,
    )


def _column_command(request: "MemoryRequest") -> Command:
    address = request.address
    return Command(
        CommandKind.WR if request.is_write else CommandKind.RD,
        channel=address.channel,
        rank=address.rank,
        bankgroup=address.bankgroup,
        bank=address.bank,
        column=address.column,
    )


# --------------------------------------------------------------------------- #
# Scheduling policies
# --------------------------------------------------------------------------- #
@register_scheduler(
    "fr_fcfs",
    "row hits first, oldest first, with a column cap so hit streams cannot "
    "starve row misses (the paper's Table 2 scheduler)",
)
class FRFCFSScheduler(SchedulingPolicy):
    """FR-FCFS with the column-cap starvation guard (the default).

    The controller's struct-of-arrays demand scan replicates this method's
    semantics — closed bank → ACT for the oldest request (mitigation
    throttle applied), open bank → first hit unless the column cap forces
    the oldest conflict's PRE — against the shared bank-timing table, so the
    two must change in lockstep (``tests/test_fastpath_identity.py`` and the
    golden traces pin the equivalence).
    """

    SUPPORTS_FAST_SCAN = True

    def bank_candidate(self, controller, bank, pending, cycle):
        if bank.is_closed():
            # Oldest request wins; it needs an ACT first.
            request = pending[0]
            command = _act_command(request)
            issue_cycle = controller.demand_act_cycle(request, command, cycle)
            return issue_cycle, (request.arrival_cycle,), command, request

        open_row = bank.open_row
        cap_reached = bank.open_row_column_accesses >= controller.config.column_cap
        first_hit: Optional["MemoryRequest"] = None
        first_conflict: Optional["MemoryRequest"] = None
        for request in pending:
            if request.address.row == open_row:
                if first_hit is None:
                    first_hit = request
                    # Conflict existence only matters once the cap is
                    # reached; stop scanning the moment the answer is known.
                    if not cap_reached or first_conflict is not None:
                        break
            elif first_conflict is None:
                first_conflict = request
                if first_hit is not None:
                    break
        if first_hit is not None and not (cap_reached and first_conflict is not None):
            command = _column_command(first_hit)
            issue_cycle = controller.dram.earliest_issue_cycle(command, cycle)
            return issue_cycle, (first_hit.arrival_cycle,), command, first_hit
        if first_conflict is None:
            return None
        # Row conflict (or column cap reached): precharge on behalf of the
        # oldest conflicting request.
        command = _pre_command(first_conflict)
        issue_cycle = controller.dram.earliest_issue_cycle(command, cycle)
        return issue_cycle, (first_conflict.arrival_cycle,), command, first_conflict


@register_scheduler(
    "fcfs",
    "strict arrival order per bank: no hit-first reordering, so row hits "
    "bring no scheduling advantage",
)
class FCFSScheduler(SchedulingPolicy):
    """First-come first-served: the oldest request per bank always wins."""

    def bank_candidate(self, controller, bank, pending, cycle):
        request = pending[0]
        priority = (request.arrival_cycle,)
        if bank.is_closed():
            command = _act_command(request)
            issue_cycle = controller.demand_act_cycle(request, command, cycle)
        elif request.address.row == bank.open_row:
            command = _column_command(request)
            issue_cycle = controller.dram.earliest_issue_cycle(command, cycle)
        else:
            command = _pre_command(request)
            issue_cycle = controller.dram.earliest_issue_cycle(command, cycle)
        return issue_cycle, priority, command, request


@register_scheduler(
    "bliss",
    "BLISS-style starvation-aware scheduling: cores served many consecutive "
    "requests are blacklisted for an interval and deprioritized",
)
class BLISSScheduler(SchedulingPolicy):
    """Blacklisting scheduler (after BLISS, Subramanian et al.).

    A core that gets ``blacklist_streak`` consecutive column commands served
    is blacklisted until the next clearing interval; requests from
    blacklisted cores lose to everyone else, then row hits and age break
    ties as in FR-FCFS.  This bounds how long one streaming core (or a
    row-hammering attacker) can monopolize a bank.
    """

    PARAMS = ("bliss_blacklist_streak", "bliss_clearing_interval")

    def __init__(
        self,
        bliss_blacklist_streak: int = 4,
        bliss_clearing_interval: int = 10_000,
    ) -> None:
        if bliss_blacklist_streak < 1:
            raise ValueError("bliss_blacklist_streak must be >= 1")
        if bliss_clearing_interval < 1:
            raise ValueError("bliss_clearing_interval must be >= 1")
        self.blacklist_streak = bliss_blacklist_streak
        self.clearing_interval = bliss_clearing_interval
        self.blacklist: set = set()
        self._streak_core: Optional[int] = None
        self._streak = 0
        self._next_clear = bliss_clearing_interval

    def _maybe_clear(self, cycle: int) -> None:
        while cycle >= self._next_clear:
            self.blacklist.clear()
            self._streak_core = None
            self._streak = 0
            self._next_clear += self.clearing_interval

    def priority_boundary_crossed(self, start: int, end: int) -> bool:
        # A clearing deadline inside the interval empties the blacklist, so
        # a decision made at ``start`` may rank requests wrongly at ``end``.
        return start < self._next_clear <= end

    def _blacklisted(self, request: "MemoryRequest") -> int:
        return 1 if request.core_id in self.blacklist else 0

    def close_priority(self, opened_cycle: int) -> tuple:
        return (0, opened_cycle)

    def bank_candidate(self, controller, bank, pending, cycle):
        self._maybe_clear(cycle)
        requests = pending
        if bank.is_closed():
            request = min(
                requests,
                key=lambda r: (self._blacklisted(r), r.arrival_cycle, r.request_id),
            )
            command = _act_command(request)
            issue_cycle = controller.demand_act_cycle(request, command, cycle)
            return (
                issue_cycle,
                (self._blacklisted(request), request.arrival_cycle),
                command,
                request,
            )
        open_row = bank.open_row
        hits = [r for r in requests if r.address.row == open_row]
        conflicts = [r for r in requests if r.address.row != open_row]
        cap_reached = bank.open_row_column_accesses >= controller.config.column_cap
        if hits and not (cap_reached and conflicts):
            request = min(
                hits,
                key=lambda r: (self._blacklisted(r), r.arrival_cycle, r.request_id),
            )
            command = _column_command(request)
        else:
            request = min(
                conflicts,
                key=lambda r: (self._blacklisted(r), r.arrival_cycle, r.request_id),
            )
            command = _pre_command(request)
        issue_cycle = controller.dram.earliest_issue_cycle(command, cycle)
        return (
            issue_cycle,
            (self._blacklisted(request), request.arrival_cycle),
            command,
            request,
        )

    def on_issue(self, command, request, cycle):
        if command.kind not in (CommandKind.RD, CommandKind.WR) or request is None:
            return
        self._maybe_clear(cycle)
        core = request.core_id
        if core is None:
            # Mitigation traffic carries no core; it breaks any streak.
            self._streak_core = None
            self._streak = 0
            return
        if core == self._streak_core:
            self._streak += 1
        else:
            self._streak_core = core
            self._streak = 1
        if self._streak >= self.blacklist_streak:
            self.blacklist.add(core)


# --------------------------------------------------------------------------- #
# Row policies
# --------------------------------------------------------------------------- #
@register_row_policy(
    "open_page",
    "rows stay open until a conflicting request or a refresh needs the bank "
    "(the paper's policy)",
)
class OpenPagePolicy(RowPolicy):
    """Open-page: never close a row speculatively (the default)."""


class _RowTrackingPolicy(RowPolicy):
    """Shared open-row bookkeeping for the closing policies."""

    def __init__(self) -> None:
        self._open: Dict[Tuple[int, int, int, int], int] = {}

    def on_act(self, bank_key, cycle):
        self._open[bank_key] = cycle

    def on_pre(self, bank_key):
        self._open.pop(bank_key, None)


@register_row_policy(
    "closed_page",
    "precharge a bank as soon as it has no queued requests, trading row-hit "
    "locality for faster conflict service",
)
class ClosedPagePolicy(_RowTrackingPolicy):
    """Closed-page: close any open bank with no pending work."""

    def close_candidates(self, controller, cycle):
        for bank_key, opened in self._open.items():
            if controller.has_pending_for_bank(bank_key):
                continue
            yield bank_key, opened, cycle


@register_row_policy(
    "adaptive_timeout",
    "close a row once it has been open for a fixed residency timeout with no "
    "queued work (bounds RowPress-style long-open-row disturbance)",
)
class AdaptiveTimeoutPolicy(_RowTrackingPolicy):
    """Timeout-based adaptive policy: idle rows close after ``row_timeout``."""

    PARAMS = ("row_timeout",)

    def __init__(self, row_timeout: int = 600) -> None:
        super().__init__()
        if row_timeout < 0:
            raise ValueError("row_timeout must be >= 0")
        self.row_timeout = row_timeout

    def close_candidates(self, controller, cycle):
        for bank_key, opened in self._open.items():
            if controller.has_pending_for_bank(bank_key):
                continue
            yield bank_key, opened, opened + self.row_timeout


# --------------------------------------------------------------------------- #
# Refresh policies
# --------------------------------------------------------------------------- #
@register_refresh_policy(
    "all_bank",
    "one rank-level REF every tREFI, refreshing rows_per_refresh rows of "
    "every bank (the paper's mode)",
)
class AllBankRefreshPolicy(RefreshPolicy):
    """Standard all-bank periodic refresh (the default)."""


@register_refresh_policy(
    "fine_granularity",
    "DDR4 fine-granularity refresh: REF 2x/4x as often, each covering a "
    "fraction of the rows and blocking the rank for the shorter tRFC2/tRFC4",
)
class FineGranularityRefreshPolicy(RefreshPolicy):
    """DDR4 FGR 2x/4x mode, the per-bank-refresh stand-in.

    Doubling (quadrupling) the REF rate halves (quarters) the rows covered
    per command — ``rows_per_refresh`` is derived from ``tREFW // tREFI`` —
    while tRFC shrinks by the JEDEC DDR4 ratio (tRFC2 = 260 ns and
    tRFC4 = 160 ns against tRFC1 = 350 ns), so demand traffic sees shorter,
    more frequent refresh blackouts.  Every row is still refreshed once per
    tREFW and REF stays rank-level, so mitigation counter-reset semantics
    are unchanged.
    """

    PARAMS = ("refresh_granularity",)

    #: JEDEC DDR4 tRFC2/tRFC1 and tRFC4/tRFC1 ratios (260/350, 160/350 ns).
    _TRFC_RATIO = {2: 260.0 / 350.0, 4: 160.0 / 350.0}

    def __init__(self, refresh_granularity: int = 2) -> None:
        if refresh_granularity not in self._TRFC_RATIO:
            raise ValueError(
                f"refresh_granularity must be one of "
                f"{sorted(self._TRFC_RATIO)}, got {refresh_granularity}"
            )
        self.granularity = refresh_granularity

    def adjust_dram_config(self, config: DRAMConfig) -> DRAMConfig:
        timing = config.timing
        ratio = self._TRFC_RATIO[self.granularity]
        return replace(
            config,
            timing=replace(
                timing,
                tREFI=max(1, timing.tREFI // self.granularity),
                tRFC=max(1, int(round(timing.tRFC * ratio))),
            ),
        )


@register_refresh_policy(
    "rfm",
    "DDR5 Refresh Management: per-bank rolling activation accounting with "
    "raaimt/raammt thresholds; RFM commands block the bank for tRFM while "
    "the device refreshes likely victims",
)
class RFMRefreshPolicy(RefreshPolicy):
    """DDR5 RFM: per-bank Rolling Accumulated ACT (RAA) accounting.

    Every ACT increments the target bank's RAA counter.  At ``raaimt`` (the
    initial management threshold) the controller owes the bank an RFM:
    command selection serves it ahead of preventive and demand traffic as a
    bank-scoped :data:`~repro.dram.commands.CommandKind.RFM` that blocks
    the bank for ``trfm`` cycles while the device refreshes the victims of
    the hottest tracked aggressor row.  Each RFM — and each periodic REF —
    pays back ``raaimt`` activations' worth of RAA.

    ``raammt`` (the maximum management threshold) is the device-enforced
    backstop: a real device refuses further ACTs until the overdue RFM goes
    out.  In detailed simulation RAA essentially cannot reach it (the owed
    RFM outranks every further demand ACT), but sampled fast-forward runs
    no scheduler, so the activation observer applies the management action
    functionally the moment RAA hits ``raammt`` — preserving the security
    contract across fidelity modes.

    Device-side victim selection is modelled as a per-bank activation
    tracker: each RFM services the hottest row recorded since that row was
    last serviced (refreshing its +-1 neighbours through
    :meth:`~repro.dram.dram_system.DRAMSystem.notify_row_refresh`, which
    the security verifier observes) and clears the row's entry.  Ties pick
    the lowest row index, keeping the policy deterministic and
    restore-order independent.
    """

    PARAMS = ("raaimt", "raammt", "trfm")
    ISSUES_RFM = True

    def __init__(self, raaimt: int = 32, raammt: int = 64, trfm: int = 250) -> None:
        if raaimt < 1:
            raise ValueError("raaimt must be >= 1")
        if raammt < raaimt:
            raise ValueError("raammt must be >= raaimt")
        if trfm < 1:
            raise ValueError("trfm must be >= 1")
        self.raaimt = raaimt
        self.raammt = raammt
        self.trfm = trfm
        self._controller: Optional["MemoryController"] = None
        #: Rolling Accumulated ACT count per (channel, rank, bankgroup, bank).
        self._raa: Dict[Tuple[int, int, int, int], int] = {}
        #: Device-side tracker: per bank, ACTs per row since the row's last
        #: RFM service.
        self._row_acts: Dict[Tuple[int, int, int, int], Dict[int, int]] = {}
        #: Banks at or above raaimt, maintained incrementally so the
        #: per-decision pending query is O(1) when nothing is owed.
        self._due: set = set()

    # -- controller wiring ------------------------------------------------
    def attach(self, controller: "MemoryController") -> None:
        self._controller = controller
        controller.dram.add_activation_observer(self._observe_activation)
        controller.dram.add_refresh_observer(self._observe_refresh)

    def rfm_pending(self) -> Sequence[Tuple[int, int, int, int]]:
        if not self._due:
            return ()
        return sorted(self._due)

    def on_rfm(self, cycle: int, bank_key: Tuple[int, int, int, int]) -> None:
        self._raa[bank_key] = self._service(
            bank_key, cycle, self._raa.get(bank_key, 0)
        )

    # -- observers ---------------------------------------------------------
    def _observe_activation(self, cycle, address, is_preventive) -> None:
        bank_key = address.bank_key
        raa = self._raa.get(bank_key, 0) + 1
        rows = self._row_acts.get(bank_key)
        if rows is None:
            rows = self._row_acts[bank_key] = {}
        rows[address.row] = rows.get(address.row, 0) + 1
        if raa >= self.raammt:
            # Device backstop (reached only in sampled fast-forward, where
            # RFM commands never issue): apply the management action in
            # place, as a device refusing further ACTs effectively does.
            raa = self._service(bank_key, cycle, raa)
            self._controller.dram.stats.rfms += 1
        self._raa[bank_key] = raa
        if raa >= self.raaimt:
            self._due.add(bank_key)

    def _observe_refresh(self, cycle, rank_key, start_row, count) -> None:
        channel, rank = rank_key
        for bank_key, raa in self._raa.items():
            if bank_key[0] != channel or bank_key[1] != rank or raa == 0:
                continue
            raa = max(0, raa - self.raaimt)
            self._raa[bank_key] = raa
            if raa < self.raaimt:
                self._due.discard(bank_key)

    def _service(
        self, bank_key: Tuple[int, int, int, int], cycle: int, raa: int
    ) -> int:
        """Perform the device's RFM action on ``bank_key``; returns the new RAA."""
        dram = self._controller.dram
        rows = self._row_acts.get(bank_key)
        if rows:
            aggressor_row = max(
                rows.items(), key=lambda item: (item[1], -item[0])
            )[0]
            del rows[aggressor_row]
            channel, rank, bankgroup, bank = bank_key
            aggressor = DRAMAddress(
                channel=channel,
                rank=rank,
                bankgroup=bankgroup,
                bank=bank,
                row=aggressor_row,
                column=0,
            )
            victims = self._controller.mapper.neighbors(aggressor, 1)
            for victim in victims:
                dram.notify_row_refresh(cycle, victim)
            dram.stats.in_dram_refresh_rows += len(victims)
        raa = max(0, raa - self.raaimt)
        if raa < self.raaimt:
            self._due.discard(bank_key)
        return raa

    # -- checkpointing -----------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {
            "raa": [
                [list(key), value] for key, value in sorted(self._raa.items())
            ],
            "row_acts": [
                [list(key), [list(item) for item in sorted(rows.items())]]
                for key, rows in sorted(self._row_acts.items())
            ],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._raa = {tuple(key): value for key, value in state["raa"]}
        self._row_acts = {
            tuple(key): {row: acts for row, acts in rows}
            for key, rows in state["row_acts"]
        }
        self._due = {
            key for key, raa in self._raa.items() if raa >= self.raaimt
        }


# --------------------------------------------------------------------------- #
# The serializable policy spec
# --------------------------------------------------------------------------- #
_Pairs = Tuple[Tuple[str, Any], ...]


def _as_pairs(value: Union[None, Mapping[str, Any], Sequence]) -> _Pairs:
    if value is None:
        return ()
    items = value.items() if isinstance(value, Mapping) else list(value)
    return tuple(sorted((str(key), val) for key, val in items))


@dataclass(frozen=True)
class ControllerPolicySpec:
    """One point in the controller policy space: a name per axis + params.

    Frozen, hashable and codec-serializable (it rides inside
    :class:`~repro.experiment.spec.PlatformSpec`).  ``params`` holds policy
    parameters (e.g. ``row_timeout`` for ``adaptive_timeout`` or
    ``bliss_blacklist_streak``); each key must be accepted by one of the
    three selected policies, validated at construction time.
    """

    scheduler: str = "fr_fcfs"
    row_policy: str = "open_page"
    refresh_policy: str = "all_bank"
    #: Policy parameters as sorted ``(key, value)`` pairs (pass a dict).
    params: _Pairs = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _as_pairs(self.params))
        entries = self._entries()
        accepted = {name for entry in entries for name in entry.params}
        unknown = [key for key, _ in self.params if key not in accepted]
        if unknown:
            raise ValueError(
                f"unknown policy params {unknown}; the selected policies "
                f"accept {sorted(accepted) or 'no parameters'}"
            )

    def _entries(self) -> Tuple[PolicyEntry, PolicyEntry, PolicyEntry]:
        return (
            policy_entry("scheduler", self.scheduler),
            policy_entry("row_policy", self.row_policy),
            policy_entry("refresh_policy", self.refresh_policy),
        )

    @property
    def is_default(self) -> bool:
        """True for the paper's triple with no parameter overrides."""
        return self == ControllerPolicySpec()

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def label(self) -> str:
        """Compact display label, e.g. ``fr_fcfs/open_page/all_bank``."""
        base = f"{self.scheduler}/{self.row_policy}/{self.refresh_policy}"
        if self.params:
            base += "[" + ",".join(f"{k}={v}" for k, v in self.params) + "]"
        return base

    def build(self) -> Tuple[SchedulingPolicy, RowPolicy, RefreshPolicy]:
        """Fresh policy instances (stateful — one set per controller)."""
        scheduler_e, row_e, refresh_e = self._entries()
        params = self.params_dict()
        return (
            scheduler_e.build(params),
            row_e.build(params),
            refresh_e.build(params),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheduler": self.scheduler,
            "row_policy": self.row_policy,
            "refresh_policy": self.refresh_policy,
            "params": self.params_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ControllerPolicySpec":
        return cls(
            scheduler=data.get("scheduler", "fr_fcfs"),
            row_policy=data.get("row_policy", "open_page"),
            refresh_policy=data.get("refresh_policy", "all_bank"),
            params=data.get("params", ()),
        )


def normalize_policy(
    policy: Optional[ControllerPolicySpec],
) -> Optional[ControllerPolicySpec]:
    """Map the default triple to ``None`` so spec hashes stay stable.

    A platform carrying an explicit default policy describes the same
    experiment as one carrying no policy at all; normalizing keeps their
    canonical JSON — and therefore their sweep-cache keys — identical.
    """
    if policy is not None and policy.is_default:
        return None
    return policy


DEFAULT_POLICY = ControllerPolicySpec()
