"""Memory-controller substrate.

This subpackage models the memory controller of Table 2 in the paper:
64-entry read and write queues, periodic refresh management, and the hooks
that RowHammer mitigations use (preventive-refresh injection, activation
throttling, mitigation-generated memory traffic).  Scheduling is
policy-driven (:mod:`repro.controller.policies`): a
:class:`ControllerPolicySpec` picks the scheduler (FR-FCFS with a 16-column
cap by default), the row-buffer policy (open-page by default) and the
refresh mode (all-bank by default), each a registered, spec-serializable,
independently sweepable component.

Multi-channel systems are assembled from channel-scoped controllers by
:class:`~repro.controller.fabric.ChannelFabric`, which routes requests by
``DRAMAddress.channel`` and aggregates statistics.
"""

from repro.controller.request import MemoryRequest, RequestType
from repro.controller.policies import (
    NEVER,
    ControllerPolicySpec,
    RefreshPolicy,
    RowPolicy,
    SchedulingPolicy,
    policy_catalog,
    refresh_policy_names,
    row_policy_names,
    scheduler_names,
)
from repro.controller.controller import MemoryController, ControllerConfig
from repro.controller.fabric import ChannelFabric

__all__ = [
    "MemoryRequest",
    "RequestType",
    "MemoryController",
    "ControllerConfig",
    "ControllerPolicySpec",
    "ChannelFabric",
    "NEVER",
    "SchedulingPolicy",
    "RowPolicy",
    "RefreshPolicy",
    "policy_catalog",
    "scheduler_names",
    "row_policy_names",
    "refresh_policy_names",
]
