"""Memory-controller substrate.

This subpackage models the memory controller of Table 2 in the paper:
64-entry read and write queues, FR-FCFS scheduling with a 16-column cap,
open-page row-buffer policy, periodic refresh management, and the hooks that
RowHammer mitigations use (preventive-refresh injection, activation
throttling, mitigation-generated memory traffic).

Multi-channel systems are assembled from channel-scoped controllers by
:class:`~repro.controller.fabric.ChannelFabric`, which routes requests by
``DRAMAddress.channel`` and aggregates statistics.
"""

from repro.controller.request import MemoryRequest, RequestType
from repro.controller.controller import MemoryController, ControllerConfig
from repro.controller.fabric import ChannelFabric

__all__ = [
    "MemoryRequest",
    "RequestType",
    "MemoryController",
    "ControllerConfig",
    "ChannelFabric",
]
