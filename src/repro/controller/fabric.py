"""Channel-partitioned memory fabric.

:class:`ChannelFabric` owns one channel-scoped
:class:`~repro.controller.controller.MemoryController` per DRAM channel and
routes traffic between them by :attr:`DRAMAddress.channel`.  Each controller
has its own request queues, scheduler state, refresh schedule, DRAM device
model and (optionally) its own RowHammer-mitigation instance, so channels
simulate independently — the event kernel interleaves their command streams
by timestamp, and a busy channel never forces a scan of an idle one.

DDR4 channels share no timing state (each has its own command/data bus and
rank set), so the partition is exact: a 1-channel fabric is bit-identical to
the monolithic controller it replaced, and an N-channel fabric is the natural
generalization rather than an approximation.

The fabric exposes the slice of the controller interface the cores use
(:meth:`enqueue`, :attr:`mapper`, :meth:`add_slot_free_callback`) so a
:class:`~repro.cpu.core.Core` can hold a fabric exactly as it held a single
controller, plus aggregate statistics for result assembly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.controller.controller import (
    ControllerConfig,
    ControllerStatistics,
    MemoryController,
)
from repro.controller.policies import ControllerPolicySpec
from repro.controller.request import MemoryRequest
from repro.dram.config import DRAMConfig
from repro.dram.dram_system import DRAMStatistics
from repro.mitigations.base import RowHammerMitigation
from repro.mitigations.fabric import MitigationFabric, sum_statistics


class ChannelFabric:
    """One memory controller per channel, routed by ``DRAMAddress.channel``.

    Parameters
    ----------
    dram_config:
        Shared DRAM organization/timing; ``organization.channels`` sets the
        fabric width.
    config:
        Controller scheduling knobs, shared by every channel.
    policy:
        Optional :class:`~repro.controller.policies.ControllerPolicySpec`
        shared by every channel; each controller builds its *own* policy
        instances from it (schedulers and row policies are stateful).
    mitigations:
        ``None`` for the unprotected baseline, a single
        :class:`RowHammerMitigation` for a 1-channel fabric, or one instance
        per channel.  Mitigation state is per-bank and banks never span
        channels, so per-channel instances preserve the monolithic semantics
        while keeping each channel's tables independent.
    """

    def __init__(
        self,
        dram_config: DRAMConfig,
        config: Optional[ControllerConfig] = None,
        mitigations: Union[
            None, RowHammerMitigation, Sequence[RowHammerMitigation]
        ] = None,
        policy: Optional[ControllerPolicySpec] = None,
    ) -> None:
        num_channels = dram_config.organization.channels
        per_channel = self._normalize_mitigations(mitigations, num_channels)
        self.controllers: List[MemoryController] = [
            MemoryController(
                dram_config,
                config,
                mitigation=per_channel[channel],
                channel=channel,
                policy=policy,
            )
            for channel in range(num_channels)
        ]
        #: Per-channel mitigation view (None when unprotected); aggregates
        #: stats and storage across the channel instances.
        self.mitigation: Optional[MitigationFabric] = (
            MitigationFabric(per_channel) if per_channel[0] is not None else None
        )
        # Mitigations may rewrite the DRAM config (REGA); the controllers all
        # apply the same rewrite, so any controller's view works for routing.
        self.dram_config = self.controllers[0].dram_config
        self.mapper = self.controllers[0].mapper

    @staticmethod
    def _normalize_mitigations(
        mitigations: Union[None, RowHammerMitigation, Sequence[RowHammerMitigation]],
        num_channels: int,
    ) -> List[Optional[RowHammerMitigation]]:
        if mitigations is None:
            return [None] * num_channels
        if isinstance(mitigations, RowHammerMitigation):
            if num_channels != 1:
                raise ValueError(
                    f"a {num_channels}-channel fabric needs one mitigation "
                    f"instance per channel (got a single instance); build the "
                    f"list with repro.sim.runner.build_mitigations"
                )
            return [mitigations]
        instances = list(mitigations)
        if len(instances) != num_channels:
            raise ValueError(
                f"expected {num_channels} mitigation instances "
                f"(one per channel), got {len(instances)}"
            )
        if all(instance is None for instance in instances):
            return instances
        if any(instance is None for instance in instances):
            raise ValueError(
                "mitigation sequence mixes None with instances: a "
                "half-protected fabric would be reported as unprotected; "
                "pass all-None (or None) for the baseline, or one instance "
                "per channel"
            )
        if len({id(instance) for instance in instances}) != len(instances):
            raise ValueError(
                "mitigation instances must be distinct objects: sharing one "
                "instance across channels would merge per-channel counter state"
            )
        return instances

    # ------------------------------------------------------------------ #
    # Controller interface used by the cores
    # ------------------------------------------------------------------ #
    def enqueue(self, request: MemoryRequest, cycle: int) -> bool:
        """Route ``request`` to its channel's controller; False when full."""
        return self.controllers[request.address.channel].enqueue(request, cycle)

    def add_slot_free_callback(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` on every channel controller."""
        for controller in self.controllers:
            controller.add_slot_free_callback(callback)

    # ------------------------------------------------------------------ #
    # Aggregate queries
    # ------------------------------------------------------------------ #
    def controller_for(self, channel: int) -> MemoryController:
        return self.controllers[channel]

    def pending_requests(self) -> int:
        return sum(controller.pending_requests() for controller in self.controllers)

    def has_work(self) -> bool:
        return any(controller.has_work() for controller in self.controllers)

    def drain(self, cycle: int, max_commands: int = 10_000_000) -> int:
        """Drain every channel's queues; returns the latest final cycle.

        Channels share no state, so per-channel drains compose: draining them
        one after another issues exactly the commands a timestamp-interleaved
        drain would, at the same cycles.
        """
        return max(
            controller.drain(cycle, max_commands) for controller in self.controllers
        )

    @property
    def stats(self) -> ControllerStatistics:
        """Controller statistics summed across channels."""
        return sum_statistics(
            ControllerStatistics(), (ctl.stats for ctl in self.controllers)
        )

    def dram_statistics(self) -> DRAMStatistics:
        """DRAM command counts summed across channels."""
        return sum_statistics(
            DRAMStatistics(), (ctl.dram.stats for ctl in self.controllers)
        )

    def per_channel_summary(self) -> List[Dict[str, int]]:
        """Per-channel load breakdown (used by reports and the fabric tests)."""
        return [
            {
                "channel": index,
                "read_requests": controller.stats.read_requests,
                "write_requests": controller.stats.write_requests,
                "preventive_refreshes": controller.stats.preventive_refreshes,
                "acts": controller.dram.stats.acts,
                "refreshes": controller.dram.stats.refreshes,
            }
            for index, controller in enumerate(self.controllers)
        ]

    def __len__(self) -> int:
        return len(self.controllers)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ChannelFabric(channels={len(self.controllers)})"
