"""Storage and chip-area model (the reproduction's substitute for CACTI)."""

from repro.area.model import (
    AreaModel,
    AreaReport,
    comet_area_report,
    graphene_area_report,
    hydra_area_report,
    area_comparison_table,
    graphene_storage_table,
)

__all__ = [
    "AreaModel",
    "AreaReport",
    "comet_area_report",
    "graphene_area_report",
    "hydra_area_report",
    "area_comparison_table",
    "graphene_storage_table",
]
