"""Storage and processor-chip-area model for the tracker structures.

The paper evaluates area with CACTI and Synopsys Design Compiler at 65 nm
(Section 7.3).  Neither tool is available here, so this module uses an
analytical model: storage is computed exactly from each mechanism's
configuration (counter widths, entry counts, tag widths — the same arithmetic
as Section 7.2.1 and Table 4), and storage is converted to area with per-KiB
constants for SRAM and CAM calibrated against the CoMeT rows of Table 4
(SRAM ~0.8e-3 mm^2/KiB, CAM ~2.4e-3 mm^2/KiB at 65 nm, CAM being ~3x denser
in area per bit, matching the paper's motivation for avoiding CAMs).

The two tables of the paper regenerated from this model are:

* Table 1 — Graphene storage versus RowHammer threshold
  (:func:`graphene_storage_table`);
* Table 4 — CoMeT / Graphene / Hydra storage and area at each threshold
  (:func:`area_comparison_table`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import CoMeTConfig
from repro.dram.config import DRAMConfig
from repro.mitigations.graphene import GrapheneConfig
from repro.mitigations.hydra import HydraConfig

#: Area per KiB of scratchpad SRAM at 65 nm (calibrated to Table 4's CT rows).
SRAM_MM2_PER_KIB = 0.00082
#: Area per KiB of content-addressable memory at 65 nm (Table 4's RAT rows).
CAM_MM2_PER_KIB = 0.0024
#: Fixed logic-circuitry area of CoMeT (Section 7.3).
COMET_LOGIC_MM2 = 0.005


@dataclass
class AreaReport:
    """Storage and area of one mechanism at one RowHammer threshold."""

    mechanism: str
    nrh: int
    storage_kib: float
    area_mm2: float
    breakdown_kib: Dict[str, float] = field(default_factory=dict)
    breakdown_mm2: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, float]:
        return {
            "mechanism": self.mechanism,
            "nrh": self.nrh,
            "storage_KiB": round(self.storage_kib, 2),
            "area_mm2": round(self.area_mm2, 3),
        }


class AreaModel:
    """Converts storage breakdowns to chip area."""

    def __init__(
        self,
        sram_mm2_per_kib: float = SRAM_MM2_PER_KIB,
        cam_mm2_per_kib: float = CAM_MM2_PER_KIB,
    ) -> None:
        self.sram_mm2_per_kib = sram_mm2_per_kib
        self.cam_mm2_per_kib = cam_mm2_per_kib

    def sram_area(self, kib: float) -> float:
        return kib * self.sram_mm2_per_kib

    def cam_area(self, kib: float) -> float:
        return kib * self.cam_mm2_per_kib


def _default_dram_config() -> DRAMConfig:
    """The full-scale dual-rank DDR4 channel of Table 2 (32 banks, 128K rows)."""
    return DRAMConfig()


def comet_area_report(
    nrh: int,
    config: Optional[CoMeTConfig] = None,
    dram_config: Optional[DRAMConfig] = None,
    model: Optional[AreaModel] = None,
) -> AreaReport:
    """CoMeT storage/area (the CoMeT rows of Table 4)."""
    config = config or CoMeTConfig(nrh=nrh)
    dram_config = dram_config or _default_dram_config()
    model = model or AreaModel()
    org = dram_config.organization
    banks = org.channels * org.ranks_per_channel * org.banks_per_rank

    ct_kib = config.ct_storage_bits_per_bank * banks / 8 / 1024
    rat_kib = config.rat_storage_bits_per_bank * banks / 8 / 1024
    history_kib = config.history_storage_bits_per_bank * banks / 8 / 1024

    ct_mm2 = model.sram_area(ct_kib)
    rat_mm2 = model.cam_area(rat_kib)
    history_mm2 = model.sram_area(history_kib)

    storage = ct_kib + rat_kib
    area = ct_mm2 + rat_mm2 + history_mm2 + COMET_LOGIC_MM2
    return AreaReport(
        mechanism="CoMeT",
        nrh=nrh,
        storage_kib=storage,
        area_mm2=area,
        breakdown_kib={"CT": ct_kib, "RAT": rat_kib, "history": history_kib},
        breakdown_mm2={
            "CT": ct_mm2,
            "RAT": rat_mm2,
            "history": history_mm2,
            "logic": COMET_LOGIC_MM2,
        },
    )


def graphene_area_report(
    nrh: int,
    config: Optional[GrapheneConfig] = None,
    dram_config: Optional[DRAMConfig] = None,
    model: Optional[AreaModel] = None,
) -> AreaReport:
    """Graphene storage/area (Table 1 and the Graphene rows of Table 4).

    Graphene's counters are tagged and therefore implemented as CAM, which is
    what makes its area grow so quickly at low thresholds.
    """
    config = config or GrapheneConfig(nrh=nrh)
    dram_config = dram_config or _default_dram_config()
    model = model or AreaModel()
    org = dram_config.organization
    banks = org.channels * org.ranks_per_channel * org.banks_per_rank

    bits_per_bank = config.storage_bits_per_bank(dram_config.max_activations_per_window)
    table_kib = bits_per_bank * banks / 8 / 1024
    area = model.cam_area(table_kib)
    return AreaReport(
        mechanism="Graphene",
        nrh=nrh,
        storage_kib=table_kib,
        area_mm2=area,
        breakdown_kib={"misra_gries_table": table_kib},
        breakdown_mm2={"misra_gries_table": area},
    )


def hydra_area_report(
    nrh: int,
    config: Optional[HydraConfig] = None,
    dram_config: Optional[DRAMConfig] = None,
    model: Optional[AreaModel] = None,
) -> AreaReport:
    """Hydra SRAM storage/area (the Hydra rows of Table 4).

    Hydra additionally stores per-row counters in DRAM (about 4 MiB for 8-bit
    counters, footnote 8 of the paper); that DRAM-side storage is reported in
    the breakdown but not counted as processor-chip area.
    """
    config = config or HydraConfig(nrh=nrh)
    dram_config = dram_config or _default_dram_config()
    model = model or AreaModel()
    org = dram_config.organization
    banks = org.channels * org.ranks_per_channel * org.banks_per_rank

    groups_per_bank = -(-org.rows_per_bank // config.rows_per_group)
    gct_kib = groups_per_bank * config.group_counter_width_bits * banks / 8 / 1024
    rcc_kib = config.rcc_entries * (config.counter_width_bits + 20) / 8 / 1024
    in_dram_kib = org.total_rows * config.counter_width_bits / 8 / 1024

    sram_kib = gct_kib + rcc_kib
    area = model.sram_area(gct_kib) + model.cam_area(rcc_kib * 0.4) + model.sram_area(
        rcc_kib * 0.6
    )
    return AreaReport(
        mechanism="Hydra",
        nrh=nrh,
        storage_kib=sram_kib,
        area_mm2=area,
        breakdown_kib={
            "GCT": gct_kib,
            "RCC": rcc_kib,
            "in_DRAM_counters": in_dram_kib,
        },
        breakdown_mm2={"sram": area},
    )


def prac_area_report(
    nrh: int,
    config: Optional["PRACConfig"] = None,
    dram_config: Optional[DRAMConfig] = None,
    model: Optional[AreaModel] = None,
) -> AreaReport:
    """PRAC storage/area: in-DRAM per-row counters, no processor-chip SRAM.

    Like Hydra's in-DRAM counters, PRAC's per-row storage is reported in the
    breakdown but not counted as processor-chip area — the counters live in
    the DRAM rows themselves, which is the whole point of the DDR5
    direction: the on-chip cost is threshold-independent (a pin and a small
    back-off state machine), so the mechanism does not suffer the ~1/NRH
    area scaling of SRAM/CAM trackers.
    """
    from repro.mitigations.prac import PRACConfig

    config = config or PRACConfig(nrh=nrh)
    dram_config = dram_config or _default_dram_config()
    model = model or AreaModel()
    org = dram_config.organization

    in_dram_kib = org.total_rows * config.counter_bits / 8 / 1024
    return AreaReport(
        mechanism="PRAC",
        nrh=nrh,
        storage_kib=0.0,
        area_mm2=0.0,
        breakdown_kib={"in_DRAM_counters": in_dram_kib},
        breakdown_mm2={},
    )


def graphene_storage_table(
    thresholds: Optional[List[int]] = None,
    dram_config: Optional[DRAMConfig] = None,
) -> List[Dict[str, float]]:
    """Table 1: Graphene storage overhead for different RowHammer thresholds."""
    thresholds = thresholds or [1000, 500, 250, 125]
    return [
        graphene_area_report(nrh, dram_config=dram_config).as_row() for nrh in thresholds
    ]


def area_comparison_table(
    thresholds: Optional[List[int]] = None,
    dram_config: Optional[DRAMConfig] = None,
) -> List[AreaReport]:
    """Table 4: storage and area of CoMeT, Graphene and Hydra per threshold."""
    thresholds = thresholds or [1000, 500, 250, 125]
    reports: List[AreaReport] = []
    for nrh in thresholds:
        reports.append(comet_area_report(nrh, dram_config=dram_config))
        reports.append(graphene_area_report(nrh, dram_config=dram_config))
        reports.append(hydra_area_report(nrh, dram_config=dram_config))
    return reports
