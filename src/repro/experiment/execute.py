"""Execution core shared by every experiment entry point.

:func:`run_system` is the single place a simulation is assembled from parts
(traces + mitigation name + DRAM/core config): the :class:`Session` facade,
the sweep executor's worker processes and the legacy ``runner`` shims all
call it, which is what makes spec-driven runs bit-identical to the old
helper functions.  :func:`execute_spec` materializes an
:class:`~repro.experiment.spec.ExperimentSpec` (platform -> configs,
workload -> traces, mitigation -> per-channel instances) and runs it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.controller.policies import ControllerPolicySpec
from repro.cpu.core import CoreConfig
from repro.cpu.trace import Trace
from repro.dram.config import DRAMConfig
from repro.experiment.spec import (
    ExperimentSpec,
    MitigationSpec,
    SampledConfig,
    WorkloadSpec,
)
from repro.sim.system import SimulationResult, System, SystemConfig


def run_system(
    traces: Sequence[Trace],
    mitigation_name: str,
    nrh: int,
    dram_config: DRAMConfig,
    core_config: Optional[CoreConfig] = None,
    mitigation_overrides: Optional[dict] = None,
    verify_security: bool = True,
    name: Optional[str] = None,
    record_violations: bool = True,
    policy: Optional[ControllerPolicySpec] = None,
    sampled: Optional[SampledConfig] = None,
) -> SimulationResult:
    """Assemble and run one system: the common tail of every entry point.

    ``sampled`` switches the run to the sampled-fidelity executor
    (:func:`repro.sim.sampled.run_sampled`); ``None`` (the default) runs
    full fidelity on the event kernel, bit-identical to every prior release.
    """
    mitigations = MitigationSpec(
        name=mitigation_name, nrh=nrh, overrides=mitigation_overrides or ()
    ).build_instances(dram_config.organization.channels)
    system_config = SystemConfig(
        dram=dram_config,
        policy=policy,
        core=core_config or CoreConfig(),
        verify_security=verify_security,
        nrh_for_verification=nrh,
        record_violations=record_violations,
    )
    system = System(
        list(traces),
        mitigation=mitigations,
        config=system_config,
        name=name or traces[0].name,
    )
    if sampled is not None:
        from repro.sim.sampled import run_sampled

        return run_sampled(system, sampled)
    return system.run()


#: Per-process memo of built traces: rebuilding the same multi-thousand-entry
#: synthetic trace for every mitigation x NRH cell of a sweep is pure wasted
#: RNG/address-mapping work (traces are read-only during simulation).  This
#: is the single trace memo — the legacy sweep executor resolves its points
#: through it too.
_TRACE_CACHE: Dict[Tuple[str, str], List[Trace]] = {}
_TRACE_CACHE_MAX = 64


def build_workload_traces(
    workload: WorkloadSpec, dram_config: DRAMConfig
) -> List[Trace]:
    """Traces for one workload spec, memoized per process.

    The workload spec alone decides the traces (mitigation and verification
    settings never touch trace generation) together with the DRAM geometry
    the generator maps rows onto, so those two ``repr``s are the memo key.
    """
    key = (repr(workload), repr(dram_config))
    if key not in _TRACE_CACHE:
        if len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        _TRACE_CACHE[key] = workload.build_traces(dram_config)
    return _TRACE_CACHE[key]


def execute_spec(spec: ExperimentSpec) -> SimulationResult:
    """Run one :class:`ExperimentSpec` to completion on the event engine."""
    dram_config = spec.platform.dram_config()
    traces = build_workload_traces(spec.workload, dram_config)
    if spec.name is None and len(traces) == 1:
        # Single-core runs keep the trace's own name (the legacy
        # ``run_single_core`` contract, pinned by the golden tests).
        name: Optional[str] = traces[0].name
    else:
        name = spec.run_name()
    # "streaming" verifies with the cheap max-margin verifier (no violation
    # objects) — the audit campaigns' mode.
    verify = spec.verify_security
    return run_system(
        traces,
        mitigation_name=spec.mitigation.name,
        nrh=spec.mitigation.nrh,
        dram_config=dram_config,
        core_config=spec.platform.core,
        mitigation_overrides=spec.mitigation.overrides_dict(),
        verify_security=bool(verify),
        name=name,
        record_violations=verify != "streaming",
        policy=spec.platform.controller,
        sampled=spec.sampled if spec.fidelity == "sampled" else None,
    )


def clear_trace_cache() -> None:
    """Drop the per-process trace memo (tests and long-lived sessions)."""
    _TRACE_CACHE.clear()


__all__ = [
    "run_system",
    "execute_spec",
    "build_workload_traces",
    "clear_trace_cache",
]
