"""repro.experiment: the declarative experiment API.

One typed front door for running simulations, shared by the CLI, the
examples, the benchmark harnesses and the sweep executor:

* :mod:`repro.experiment.spec` — frozen, hashable, JSON-round-trippable
  spec dataclasses (:class:`ExperimentSpec` = :class:`WorkloadSpec` x
  :class:`MitigationSpec` x :class:`PlatformSpec`) and grid expansion.
* :mod:`repro.experiment.registry` — decorator-based component registries:
  mechanisms (``@register_mitigation``) and workloads
  (``@register_workload`` / the synthetic suite) register themselves.
* :mod:`repro.experiment.session` — the :class:`Session` facade executing
  one spec, a list or a grid through the cached, parallel sweep machinery,
  returning versioned :class:`RunRecord` objects.
* :mod:`repro.experiment.execute` — the execution core every entry point
  shares (what makes spec-driven runs bit-identical to the legacy helpers).

Submodules are imported lazily: mechanism modules import
``repro.experiment.registry`` at class-definition time, and a heavy eager
package init here would turn that into an import cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "CampaignSpec": "repro.experiment.spec",
    "ExperimentSpec": "repro.experiment.spec",
    "WorkloadSpec": "repro.experiment.spec",
    "MitigationSpec": "repro.experiment.spec",
    "PlatformSpec": "repro.experiment.spec",
    "SampledConfig": "repro.experiment.spec",
    "SPEC_VERSION": "repro.experiment.spec",
    "expand_grid": "repro.experiment.spec",
    "Session": "repro.experiment.session",
    "RunRecord": "repro.experiment.session",
    "RECORD_VERSION": "repro.experiment.session",
    "register_mitigation": "repro.experiment.registry",
    "register_workload": "repro.experiment.registry",
    "register_suite_workload": "repro.experiment.registry",
    "mitigation_entry": "repro.experiment.registry",
    "mitigation_names": "repro.experiment.registry",
    "mitigation_entries": "repro.experiment.registry",
    "workload_entry": "repro.experiment.registry",
    "registered_workload_names": "repro.experiment.registry",
    "UnknownMitigationError": "repro.experiment.registry",
    "UnknownWorkloadError": "repro.experiment.registry",
    "MitigationEntry": "repro.experiment.registry",
    "WorkloadEntry": "repro.experiment.registry",
    "run_system": "repro.experiment.execute",
    "execute_spec": "repro.experiment.execute",
    "encode_value": "repro.experiment.codec",
    "decode_value": "repro.experiment.codec",
    "SpecCodecError": "repro.experiment.codec",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
