"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the one typed description of a simulator run
that every entry point shares — the :class:`~repro.experiment.session.Session`
facade, the CLI (``repro run --spec``), the sweep executor and the benchmark
harnesses.  It composes three sub-specs:

* :class:`WorkloadSpec` — *what runs*: a registered workload name (benign
  suite entry or attack generator) plus trace length, core count, seed and
  builder parameters; or a heterogeneous ``mix`` of sub-workloads (one per
  core), the Figure 16 benign+attacker pattern.
* :class:`MitigationSpec` — *what defends*: a registered mechanism name, the
  RowHammer threshold and constructor overrides (e.g. a
  :class:`~repro.core.config.CoMeTConfig` for the sensitivity sweeps).
* :class:`PlatformSpec` — *what it runs on*: the scaled DRAM geometry,
  channel count, refresh-window scale, core model and the
  memory-controller policy triple
  (:class:`~repro.controller.policies.ControllerPolicySpec`).

Specs are frozen, hashable and JSON-round-trippable; ``canonical_json()``
(sorted keys, compact separators) is the content-hash material used as the
sweep-cache key, so two specs describe the same experiment if and only if
their hashes match.  Unknown workload/mitigation names are rejected at
construction time with an error listing every registered name.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.controller.policies import ControllerPolicySpec, normalize_policy
from repro.cpu.core import CoreConfig
from repro.dram.config import DRAMConfig, small_test_config
from repro.experiment.codec import decode_value, encode_value
from repro.experiment.registry import mitigation_entry, workload_entry

#: Bump when the spec schema changes incompatibly.
SPEC_VERSION = 1

_Pairs = Tuple[Tuple[str, Any], ...]


def _freeze(value: Any) -> Any:
    """Convert a value into an immutable (hashable) equivalent."""
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _as_pairs(value: Union[None, Mapping[str, Any], Sequence] ) -> _Pairs:
    """Normalize a mapping (or pair sequence) to sorted, frozen key/value pairs."""
    if value is None:
        return ()
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = [(k, v) for k, v in value]
    return tuple(sorted((str(key), _freeze(val)) for key, val in items))


def _pairs_to_dict(pairs: _Pairs) -> Dict[str, Any]:
    return {key: value for key, value in pairs}


# --------------------------------------------------------------------------- #
# Mitigation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MitigationSpec:
    """A mitigation mechanism at a RowHammer threshold, with overrides."""

    name: str
    nrh: int = 125
    #: Constructor overrides, normalized to sorted ``(key, value)`` pairs so
    #: the spec stays hashable; pass a plain dict, it is converted.
    overrides: _Pairs = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "overrides", _as_pairs(self.overrides))
        if self.nrh <= 0:
            raise ValueError("nrh must be positive")
        mitigation_entry(self.name)  # raises listing known names when unknown

    def overrides_dict(self) -> Dict[str, Any]:
        return _pairs_to_dict(self.overrides)

    def build_instances(self, channels: int) -> List:
        """One independently-constructed instance per memory channel.

        Channel ``c > 0`` of a seedable mechanism gets ``seed=c`` so channels
        draw independent random streams; channel 0 keeps the default seed,
        preserving 1-channel bit-identity (same convention as the legacy
        ``build_mitigations`` helper).
        """
        entry = mitigation_entry(self.name)
        overrides = self.overrides_dict()
        return [
            entry.build(self.nrh, seed=channel if channel > 0 else None, **overrides)
            for channel in range(channels)
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "nrh": self.nrh,
            "overrides": {k: encode_value(v) for k, v in self.overrides},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MitigationSpec":
        return cls(
            name=data["name"],
            nrh=data.get("nrh", 125),
            overrides={
                k: decode_value(v) for k, v in data.get("overrides", {}).items()
            },
        )


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkloadSpec:
    """A reference to a registered workload (or an inline mix of them).

    ``name`` resolves through the workload registry: the 61-entry benign
    suite, the multichannel additions and the attack generators all live
    there.  ``params`` are forwarded to the registered builder (attack knobs
    such as ``distinct_rows`` or ``channel``).  ``num_cores > 1`` builds a
    homogeneous multi-programmed mix (one seed-shifted copy per core, the
    paper's 8-core pattern); ``mix`` builds a heterogeneous one (each member
    contributes its own traces, e.g. one benign core plus one attacker core).
    """

    name: str
    num_requests: int = 8000
    num_cores: int = 1
    seed: int = 0
    params: _Pairs = ()
    mix: Tuple["WorkloadSpec", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _as_pairs(self.params))
        object.__setattr__(self, "mix", tuple(self.mix))
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if not self.mix:
            workload_entry(self.name)  # raises listing known names when unknown

    def params_dict(self) -> Dict[str, Any]:
        return _pairs_to_dict(self.params)

    def build_traces(self, dram_config: Optional[DRAMConfig] = None) -> List:
        """Build the trace list (one per core) this spec describes."""
        if self.mix:
            traces: List = []
            for member in self.mix:
                traces.extend(member.build_traces(dram_config))
            return traces
        entry = workload_entry(self.name)
        params = self.params_dict()
        return [
            entry.build(
                num_requests=self.num_requests,
                dram_config=dram_config,
                seed=self.seed + core,
                **params,
            )
            for core in range(self.num_cores)
        ]

    @property
    def total_cores(self) -> int:
        if self.mix:
            return sum(member.total_cores for member in self.mix)
        return self.num_cores

    def default_run_name(self) -> str:
        if self.mix:
            return self.name or "+".join(m.default_run_name() for m in self.mix)
        if self.num_cores > 1:
            return f"{self.name}_x{self.num_cores}"
        return self.name

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "num_requests": self.num_requests,
            "num_cores": self.num_cores,
            "seed": self.seed,
            "params": {k: encode_value(v) for k, v in self.params},
        }
        if self.mix:
            data["mix"] = [member.to_dict() for member in self.mix]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        return cls(
            name=data.get("name", ""),
            num_requests=data.get("num_requests", 8000),
            num_cores=data.get("num_cores", 1),
            seed=data.get("seed", 0),
            params={k: decode_value(v) for k, v in data.get("params", {}).items()},
            mix=tuple(cls.from_dict(member) for member in data.get("mix", ())),
        )


# --------------------------------------------------------------------------- #
# Platform
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PlatformSpec:
    """The simulated machine: scaled DRAM geometry, channels, core model.

    The scalar knobs mirror the scaled experiment configuration every
    entry point has always used (see ``default_experiment_config``); a full
    :class:`~repro.dram.config.DRAMConfig` in ``dram`` overrides them.
    ``channels`` defaults to *inherit* (``None``): the channel count of
    ``dram`` when one is given, otherwise 1.  An explicit ``channels``
    always wins — that is the grid's channel-scaling axis — re-channeling a
    full ``dram`` override if the two disagree.
    """

    rows_per_bank: int = 4096
    refresh_window_scale: float = 1.0 / 256.0
    #: Memory channels; ``None`` inherits from ``dram`` (or 1 without one).
    channels: Optional[int] = None
    #: Memory-controller policy triple (scheduler / row policy / refresh
    #: policy); ``None`` selects the default (fr_fcfs, open_page, all_bank).
    #: An explicit default is normalized to ``None`` so the two spellings
    #: hash — and therefore cache — identically.
    controller: Optional[ControllerPolicySpec] = None
    #: Full DRAM configuration override (wins over the scalar knobs).
    dram: Optional[DRAMConfig] = None
    #: Core model override (defaults to the paper's Table 2 core).
    core: Optional[CoreConfig] = None

    def __post_init__(self) -> None:
        if self.channels is not None and self.channels < 1:
            raise ValueError("channels must be >= 1")
        object.__setattr__(self, "controller", normalize_policy(self.controller))

    @property
    def channel_count(self) -> int:
        """The resolved memory-channel count this platform simulates."""
        if self.channels is not None:
            return self.channels
        if self.dram is not None:
            return self.dram.organization.channels
        return 1

    def dram_config(self) -> DRAMConfig:
        channels = self.channel_count
        if self.dram is not None:
            if self.dram.organization.channels != channels:
                return replace(
                    self.dram,
                    organization=replace(self.dram.organization, channels=channels),
                )
            return self.dram
        return small_test_config(
            rows_per_bank=self.rows_per_bank,
            banks_per_bankgroup=2,
            bankgroups_per_rank=2,
            ranks_per_channel=2,
            refresh_window_scale=self.refresh_window_scale,
            channels=channels,
        )

    def core_config(self) -> CoreConfig:
        return self.core if self.core is not None else CoreConfig()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rows_per_bank": self.rows_per_bank,
            "refresh_window_scale": self.refresh_window_scale,
            "channels": self.channels,
            "controller": (
                self.controller.to_dict() if self.controller is not None else None
            ),
            "dram": encode_value(self.dram) if self.dram is not None else None,
            "core": encode_value(self.core) if self.core is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformSpec":
        controller = data.get("controller")
        return cls(
            rows_per_bank=data.get("rows_per_bank", 4096),
            refresh_window_scale=data.get("refresh_window_scale", 1.0 / 256.0),
            channels=data.get("channels"),
            controller=(
                ControllerPolicySpec.from_dict(controller)
                if controller is not None
                else None
            ),
            dram=decode_value(data["dram"]) if data.get("dram") is not None else None,
            core=decode_value(data["core"]) if data.get("core") is not None else None,
        )


# --------------------------------------------------------------------------- #
# Sampled fidelity
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SampledConfig:
    """Knobs for the sampled-fidelity executor (``fidelity="sampled"``).

    All three knobs are measured in *trace entries per core* (requests), the
    unit the fast-forward executor budgets detailed windows in:

    * ``warmup`` — entries simulated in full detail at the start of the run
      (cold caches, empty queues and unwarmed sketches would otherwise bias
      the first sampled window);
    * ``interval`` — the sampling period: out of every ``interval`` entries,
      ``detailed_window`` run on the event kernel and the remainder are
      fast-forwarded functionally;
    * ``detailed_window`` — detailed entries per period.

    Security state is *never* sampled: the fast-forward path replays every
    activation and every periodic refresh through the DRAM observer lists,
    so mitigations and the security verifier see the exact event stream in
    both modes — only command timing is approximated between windows.
    """

    interval: int = 2000
    detailed_window: int = 200
    warmup: int = 200

    def __post_init__(self) -> None:
        if self.detailed_window < 1:
            raise ValueError("detailed_window must be >= 1")
        if self.interval <= self.detailed_window:
            raise ValueError(
                "interval must exceed detailed_window "
                f"(got interval={self.interval}, detailed_window={self.detailed_window})"
            )
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "interval": self.interval,
            "detailed_window": self.detailed_window,
            "warmup": self.warmup,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SampledConfig":
        return cls(
            interval=data.get("interval", 2000),
            detailed_window=data.get("detailed_window", 200),
            warmup=data.get("warmup", 200),
        )


# --------------------------------------------------------------------------- #
# The composed experiment
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-described simulator run: workload x mitigation x platform.

    ``verify_security`` is ``True``/``False`` or the string ``"streaming"``:
    streaming attaches the verifier in its cheap max-margin mode (verdict,
    violation count, first-violation cycle and max disturbance, but no
    per-violation objects) — the mode security-audit campaigns run in.

    ``fidelity`` selects the executor: ``"full"`` (default) simulates every
    entry on the event kernel and stays bit-identical to the pre-sampling
    code; ``"sampled"`` fast-forwards between detailed windows under the
    :class:`SampledConfig` knobs (see EXPERIMENTS.md for the error bounds).
    A full-fidelity spec serializes without the fidelity keys, so its
    canonical JSON — and therefore its content hash and sweep-cache key —
    is unchanged from earlier spec versions.
    """

    workload: WorkloadSpec
    mitigation: MitigationSpec
    platform: PlatformSpec = field(default_factory=PlatformSpec)
    verify_security: Union[bool, str] = True
    #: Optional display name for the run (defaults to the workload's name).
    name: Optional[str] = None
    #: ``"full"`` or ``"sampled"`` (fast-forward between detailed windows).
    fidelity: str = "full"
    #: Sampling knobs; only meaningful (and only serialized) when
    #: ``fidelity="sampled"``.  ``None`` under sampled fidelity selects the
    #: :class:`SampledConfig` defaults.
    sampled: Optional[SampledConfig] = None

    def __post_init__(self) -> None:
        if not isinstance(self.verify_security, bool) and self.verify_security != "streaming":
            raise ValueError(
                "verify_security must be True, False or 'streaming', "
                f"got {self.verify_security!r}"
            )
        if self.fidelity not in ("full", "sampled"):
            raise ValueError(
                f"fidelity must be 'full' or 'sampled', got {self.fidelity!r}"
            )
        if self.fidelity == "sampled":
            if self.sampled is None:
                object.__setattr__(self, "sampled", SampledConfig())
        elif self.sampled is not None:
            # Normalized away so the two spellings of a full-fidelity spec
            # hash (and cache) identically.
            object.__setattr__(self, "sampled", None)

    def run_name(self) -> str:
        return self.name or self.workload.default_run_name()

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "spec_version": SPEC_VERSION,
            "name": self.name,
            "verify_security": self.verify_security,
            "workload": self.workload.to_dict(),
            "mitigation": self.mitigation.to_dict(),
            "platform": self.platform.to_dict(),
        }
        if self.fidelity != "full":
            data["fidelity"] = self.fidelity
            data["sampled"] = self.sampled.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        version = data.get("spec_version", SPEC_VERSION)
        if version > SPEC_VERSION:
            raise ValueError(
                f"spec_version {version} is newer than this build supports "
                f"({SPEC_VERSION}); upgrade repro"
            )
        sampled = data.get("sampled")
        return cls(
            workload=WorkloadSpec.from_dict(data["workload"]),
            mitigation=MitigationSpec.from_dict(data["mitigation"]),
            platform=PlatformSpec.from_dict(data.get("platform", {})),
            verify_security=data.get("verify_security", True),
            name=data.get("name"),
            fidelity=data.get("fidelity", "full"),
            sampled=SampledConfig.from_dict(sampled) if sampled is not None else None,
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def canonical_json(self) -> str:
        """Deterministic compact JSON: the content-hash / cache-key material."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """sha256 over the canonical JSON; equal iff the experiments match."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# Campaigns
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignSpec:
    """A declarative campaign: a grid of experiments plus priority and budget.

    Where an :class:`ExperimentSpec` describes one run, a ``CampaignSpec``
    describes a whole persistent evaluation — the grid the
    :class:`~repro.campaign.runner.CampaignRunner` expands into work-queue
    items and drains into a :class:`~repro.campaign.store.ResultStore`.
    Like every spec it is frozen, hashable and JSON-round-trippable;
    ``campaign_id()`` (the sha256 of the canonical JSON) names the campaign
    in checkpoints, provenance and the serve API.

    ``priority`` is the base queue priority of every cell; ``priorities``
    maps mitigation names to overrides (higher drains first).  Baseline
    (``"none"``) cells always outrank everything else — every normalized
    metric needs them, so they are computed first.  ``budget`` caps how
    many cells one ``run()`` invocation may *execute* (completed cells cost
    nothing); ``None`` is unlimited.

    ``audit=True`` switches the grid to a *security-audit* campaign:
    expansion goes through :func:`repro.security.audit.build_audit_grid`
    instead of :func:`expand_grid`, so every cell runs with the streaming
    security verifier attached, ``mitigations`` may include
    refresh-policy mechanisms (``"rfm"``), and ``seed`` seeds the
    adversarial pattern synthesis.  Audit grids are single-core; both new
    fields serialize only when non-default, so every pre-existing
    campaign's ``campaign_id()`` is unchanged.
    """

    name: str
    workloads: Tuple[str, ...]
    mitigations: Tuple[str, ...]
    nrhs: Tuple[int, ...]
    num_requests: int = 8000
    num_cores: int = 1
    channels: Tuple[int, ...] = (1,)
    include_baseline: bool = True
    priority: int = 0
    #: Per-mitigation priority overrides, e.g. ``{"comet": 10}``.
    priorities: _Pairs = ()
    #: Maximum cells executed per ``run()`` invocation (``None``: unlimited).
    budget: Optional[int] = None
    #: Expand as a streaming-verified security-audit grid (see class doc).
    audit: bool = False
    #: Workload seed for audit grids (ignored by performance grids).
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "mitigations", tuple(self.mitigations))
        object.__setattr__(self, "nrhs", tuple(int(n) for n in self.nrhs))
        object.__setattr__(self, "channels", tuple(int(c) for c in self.channels))
        object.__setattr__(self, "priorities", _as_pairs(self.priorities))
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if not self.workloads or not self.mitigations or not self.nrhs:
            raise ValueError("campaign grid axes must be non-empty")
        if self.budget is not None and self.budget < 0:
            raise ValueError("budget must be >= 0 (None for unlimited)")

    def priorities_dict(self) -> Dict[str, int]:
        return _pairs_to_dict(self.priorities)

    def cells(self) -> List[Tuple["ExperimentSpec", int]]:
        """The campaign's grid: ``(spec, queue priority)`` per cell.

        Expansion goes through :func:`expand_grid`, so the cell set — and
        every cell's content hash — is identical to what a one-shot sweep
        of the same axes would produce; campaigns and sweeps share cache
        entries in a shared store.
        """
        priorities = self.priorities_dict()
        baseline_priority = (
            max([self.priority, *priorities.values()]) + 1
            if self.include_baseline
            else self.priority
        )
        if self.audit:
            return self._audit_cells(priorities, baseline_priority)
        specs = expand_grid(
            workloads=list(self.workloads),
            mitigations=list(self.mitigations),
            nrhs=list(self.nrhs),
            num_requests=self.num_requests,
            num_cores=self.num_cores,
            include_baseline=self.include_baseline,
            channels=list(self.channels),
        )
        cells = []
        for spec in specs:
            if spec.mitigation.name == "none":
                cells.append((spec, baseline_priority))
            else:
                cells.append(
                    (spec, priorities.get(spec.mitigation.name, self.priority))
                )
        return cells

    def _audit_cells(
        self, priorities: Dict[str, int], baseline_priority: int
    ) -> List[Tuple["ExperimentSpec", int]]:
        """Audit-mode expansion: the security grid, one slice per channel
        count.  Priorities key on the *mechanism* label (``mechanism_of``),
        so refresh-policy rows (``"rfm"``) are prioritized under their own
        name even though they run the ``"none"`` mitigation."""
        # Lazy: repro.security.audit imports this module at its top level.
        from repro.security.audit import build_audit_grid, mechanism_of

        specs: List[ExperimentSpec] = []
        for num_channels in self.channels:
            specs.extend(
                build_audit_grid(
                    mitigations=list(self.mitigations),
                    patterns=list(self.workloads),
                    nrhs=list(self.nrhs),
                    num_requests=self.num_requests,
                    channels=num_channels,
                    seed=self.seed,
                    include_baseline=self.include_baseline,
                )
            )
        cells = []
        for spec in specs:
            mechanism = mechanism_of(spec)
            if mechanism == "none":
                cells.append((spec, baseline_priority))
            else:
                cells.append((spec, priorities.get(mechanism, self.priority)))
        return cells

    def total_cells(self) -> int:
        return len(self.cells())

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "spec_version": SPEC_VERSION,
            "name": self.name,
            "workloads": list(self.workloads),
            "mitigations": list(self.mitigations),
            "nrhs": list(self.nrhs),
            "num_requests": self.num_requests,
            "num_cores": self.num_cores,
            "channels": list(self.channels),
            "include_baseline": self.include_baseline,
            "priority": self.priority,
            "priorities": {k: encode_value(v) for k, v in self.priorities},
            "budget": self.budget,
        }
        # Emitted only when non-default so the canonical JSON — and every
        # pre-existing campaign_id — is byte-identical to older builds.
        if self.audit:
            data["audit"] = True
        if self.seed:
            data["seed"] = self.seed
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        version = data.get("spec_version", SPEC_VERSION)
        if version > SPEC_VERSION:
            raise ValueError(
                f"spec_version {version} is newer than this build supports "
                f"({SPEC_VERSION}); upgrade repro"
            )
        return cls(
            name=data["name"],
            workloads=tuple(data["workloads"]),
            mitigations=tuple(data["mitigations"]),
            nrhs=tuple(data["nrhs"]),
            num_requests=data.get("num_requests", 8000),
            num_cores=data.get("num_cores", 1),
            channels=tuple(data.get("channels", (1,))),
            include_baseline=data.get("include_baseline", True),
            priority=data.get("priority", 0),
            priorities={
                k: decode_value(v) for k, v in data.get("priorities", {}).items()
            },
            budget=data.get("budget"),
            audit=data.get("audit", False),
            seed=data.get("seed", 0),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def campaign_id(self) -> str:
        """sha256 over the canonical JSON; names the campaign durably."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# Grid expansion
# --------------------------------------------------------------------------- #
def expand_grid(
    workloads: Sequence[str],
    mitigations: Sequence[str],
    nrhs: Sequence[int],
    num_requests: int = 8000,
    num_cores: int = 1,
    include_baseline: bool = True,
    mitigation_overrides: Optional[Mapping[str, Any]] = None,
    channels: Sequence[int] = (1,),
    platform: Optional[PlatformSpec] = None,
    policies: Sequence[Optional[ControllerPolicySpec]] = (None,),
) -> List[ExperimentSpec]:
    """The Figures 6-9 pattern: workload x mitigation x NRH (x channels
    x controller policies).

    The unprotected baseline (needed by every normalized metric) is
    threshold-independent, so ``include_baseline`` adds a single ``"none"``
    spec per workload per channel count *per policy* (normalized IPC is only
    meaningful against a baseline running the same controller policies),
    pinned at ``nrh=1`` so its cache key is the same regardless of the swept
    threshold list.  ``policies`` is the controller-policy axis; ``None``
    entries mean the platform's own policy (the default triple when the
    platform carries none).
    """
    base_platform = platform or PlatformSpec()
    specs: List[ExperimentSpec] = []
    for num_channels in channels:
        for policy in policies:
            plat = replace(base_platform, channels=num_channels)
            if policy is not None:
                plat = replace(plat, controller=policy)
            for workload in workloads:
                wspec = WorkloadSpec(
                    name=workload, num_requests=num_requests, num_cores=num_cores
                )
                if include_baseline:
                    specs.append(
                        ExperimentSpec(
                            workload=wspec,
                            mitigation=MitigationSpec(name="none", nrh=1),
                            platform=plat,
                            verify_security=False,
                        )
                    )
                for mitigation in mitigations:
                    if mitigation == "none":
                        continue
                    for nrh in nrhs:
                        specs.append(
                            ExperimentSpec(
                                workload=wspec,
                                mitigation=MitigationSpec(
                                    name=mitigation,
                                    nrh=nrh,
                                    overrides=mitigation_overrides or (),
                                ),
                                platform=plat,
                            )
                        )
    return specs
