"""JSON codec for the values an :class:`~repro.experiment.spec.ExperimentSpec`
carries.

Specs must round-trip through JSON (the CLI's ``--spec`` path, the sweep
cache key, RunRecord archives), but mitigation overrides and platform
configurations are dataclasses (:class:`~repro.core.config.CoMeTConfig`,
:class:`~repro.dram.config.DRAMConfig`, ...).  The codec encodes any frozen
``repro`` dataclass as a tagged object::

    {"__dataclass__": "repro.core.config:CoMeTConfig", "fields": {...}}

and decoding imports the named class again.  Decoding is restricted to
dataclasses defined inside the ``repro`` package: a spec file is data, not a
pickle, and must not be able to instantiate arbitrary types.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Any

_TAG = "__dataclass__"
_TUPLE_TAG = "__tuple__"

#: Only classes from these module prefixes may be instantiated by decoding.
_ALLOWED_MODULE_PREFIX = "repro."


class SpecCodecError(ValueError):
    """Raised when a value cannot be encoded to or decoded from spec JSON."""


def encode_value(value: Any) -> Any:
    """Encode one value into JSON-representable form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        # Tuples are tagged so hashable spec fields survive the round trip.
        return {_TUPLE_TAG: [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): encode_value(item) for key, item in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        module = cls.__module__
        if not (module + ".").startswith(_ALLOWED_MODULE_PREFIX):
            raise SpecCodecError(
                f"cannot encode dataclass {cls.__qualname__} from module "
                f"{module!r}: only repro.* dataclasses are spec-serializable"
            )
        return {
            _TAG: f"{module}:{cls.__qualname__}",
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
                if f.init
            },
        }
    raise SpecCodecError(
        f"value of type {type(value).__name__} is not spec-serializable: {value!r}"
    )


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        if _TUPLE_TAG in value and len(value) == 1:
            return tuple(decode_value(item) for item in value[_TUPLE_TAG])
        if _TAG in value:
            return _decode_dataclass(value)
        return {key: decode_value(item) for key, item in value.items()}
    raise SpecCodecError(f"cannot decode JSON value of type {type(value).__name__}")


def _decode_dataclass(payload: dict) -> Any:
    ref = payload[_TAG]
    try:
        module_name, _, qualname = ref.partition(":")
    except AttributeError:
        raise SpecCodecError(f"malformed dataclass reference: {ref!r}") from None
    if not (module_name + ".").startswith(_ALLOWED_MODULE_PREFIX):
        raise SpecCodecError(
            f"refusing to decode dataclass from module {module_name!r}: "
            "only repro.* dataclasses are allowed in spec files"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SpecCodecError(f"cannot import module {module_name!r}: {exc}") from exc
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            raise SpecCodecError(f"no class {qualname!r} in module {module_name!r}")
    if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
        raise SpecCodecError(f"{ref!r} is not a dataclass")
    fields = {
        key: decode_value(item) for key, item in payload.get("fields", {}).items()
    }
    try:
        return obj(**fields)
    except TypeError as exc:
        raise SpecCodecError(f"cannot reconstruct {ref!r}: {exc}") from exc
