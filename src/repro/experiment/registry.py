"""Component registries for the experiment API.

Mechanisms and workloads register *themselves* (the pluggable-component
pattern of crawl-frontera's backend/middleware registry): a mitigation class
carries a ``@register_mitigation("comet")`` decorator, a trace builder a
``@register_workload("attack_traditional", category="attack")`` decorator,
and the synthetic suite registers each of its :class:`WorkloadSpec` entries
when :mod:`repro.workloads.suite` is imported.  Everything that needs to
resolve a name — the CLI, the :class:`~repro.experiment.session.Session`
facade, the sweep executor, the legacy ``build_mitigation`` helpers — looks
it up here, so there is exactly one table of record.

Registry entries carry construction metadata so call sites need no
special-casing:

* ``takes_nrh`` — whether the constructor takes the RowHammer threshold as
  its first argument (everything except the unprotected baseline).  Entries
  with ``takes_nrh=False`` are built with no arguments and ignore overrides,
  which is what the ``"none"`` baseline has always done.
* ``seedable`` — whether the constructor accepts a ``seed`` keyword
  (randomized mechanisms: PARA, BlockHammer).  The channel fabric gives
  channel ``c > 0`` seed ``c`` so per-channel instances draw independent
  streams; channel 0 keeps the default seed, preserving 1-channel
  bit-identity.  This metadata replaces the old ``inspect.signature`` probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

_BUILTIN_LOADED = False


def _ensure_builtin() -> None:
    """Import every module that registers built-in components.

    Registration happens at import time (decorators run when the defining
    module is executed), so lookups must make sure those modules were
    imported at least once.  Submodules are imported directly — not through
    their packages — so a lookup that happens *during* a partial package
    import still sees every built-in.
    """
    global _BUILTIN_LOADED
    if _BUILTIN_LOADED:
        return
    _BUILTIN_LOADED = True
    import repro.core.comet  # noqa: F401
    import repro.mitigations.blockhammer  # noqa: F401
    import repro.mitigations.graphene  # noqa: F401
    import repro.mitigations.hydra  # noqa: F401
    import repro.mitigations.none  # noqa: F401
    import repro.mitigations.para  # noqa: F401
    import repro.mitigations.prac  # noqa: F401
    import repro.mitigations.rega  # noqa: F401
    import repro.security.synth  # noqa: F401
    import repro.workloads.attacks  # noqa: F401
    import repro.workloads.suite  # noqa: F401


# --------------------------------------------------------------------------- #
# Mitigations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MitigationEntry:
    """One registered mitigation mechanism and its construction metadata."""

    name: str
    cls: type
    takes_nrh: bool = True
    seedable: bool = False

    def build(self, nrh: int, seed: Optional[int] = None, **overrides):
        """Construct one instance at a RowHammer threshold.

        ``seed`` is only forwarded to seedable mechanisms (and never
        overrides an explicit ``seed`` in ``overrides``); entries that do not
        take a threshold ignore ``nrh`` and every override.
        """
        if not self.takes_nrh:
            return self.cls()
        if self.seedable and seed is not None and "seed" not in overrides:
            overrides = {**overrides, "seed": seed}
        return self.cls(nrh, **overrides)


_MITIGATIONS: Dict[str, MitigationEntry] = {}


class UnknownMitigationError(ValueError):
    """A mitigation name that is not in the registry."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"unknown mitigation {name!r}; known: {sorted(_MITIGATIONS)}"
        )
        self.name = name


def register_mitigation(
    name: str, *, takes_nrh: bool = True, seedable: bool = False
) -> Callable[[type], type]:
    """Class decorator registering a RowHammer mitigation under ``name``."""

    def decorator(cls: type) -> type:
        _MITIGATIONS[name] = MitigationEntry(
            name=name, cls=cls, takes_nrh=takes_nrh, seedable=seedable
        )
        return cls

    return decorator


def mitigation_entry(name: str) -> MitigationEntry:
    """Registry entry for ``name``; raises a helpful error when unknown."""
    _ensure_builtin()
    entry = _MITIGATIONS.get(name)
    if entry is None:
        raise UnknownMitigationError(name)
    return entry


def mitigation_names() -> List[str]:
    _ensure_builtin()
    return sorted(_MITIGATIONS)


def mitigation_entries() -> Dict[str, MitigationEntry]:
    _ensure_builtin()
    return dict(_MITIGATIONS)


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #
#: A workload builder: ``fn(num_requests, dram_config, seed, **params)`` -> Trace.
WorkloadBuilder = Callable[..., object]


@dataclass(frozen=True)
class WorkloadEntry:
    """One registered workload (benign suite entry or attack generator)."""

    name: str
    category: str
    builder: WorkloadBuilder = field(repr=False)
    #: The synthetic :class:`~repro.workloads.synthetic.WorkloadSpec` behind a
    #: suite entry (``None`` for attack generators and custom builders).
    synthetic_spec: Optional[object] = field(default=None, repr=False)

    def build(self, num_requests: int, dram_config=None, seed: int = 0, **params):
        return self.builder(
            num_requests=num_requests, dram_config=dram_config, seed=seed, **params
        )


_WORKLOADS: Dict[str, WorkloadEntry] = {}


class UnknownWorkloadError(KeyError):
    """A workload name that is not in the registry."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"unknown workload {name!r}; known workloads: {sorted(_WORKLOADS)}"
        )
        self.name = name

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message flat
        return self.args[0]


def register_workload(
    name: str, *, category: str = "custom"
) -> Callable[[WorkloadBuilder], WorkloadBuilder]:
    """Decorator registering a trace-builder callable under ``name``.

    The builder is called as ``fn(num_requests=..., dram_config=...,
    seed=..., **params)`` and must return a :class:`~repro.cpu.trace.Trace`.
    """

    def decorator(fn: WorkloadBuilder) -> WorkloadBuilder:
        _WORKLOADS[name] = WorkloadEntry(name=name, category=category, builder=fn)
        return fn

    return decorator


def register_suite_workload(spec) -> None:
    """Register one synthetic-suite :class:`WorkloadSpec` (non-decorator form)."""
    from repro.workloads.synthetic import SyntheticWorkloadGenerator

    def builder(num_requests, dram_config=None, seed=0, **params):
        if params:
            raise TypeError(
                f"suite workload {spec.name!r} takes no extra parameters, "
                f"got {sorted(params)}"
            )
        generator = SyntheticWorkloadGenerator(spec, dram_config=dram_config, seed=seed)
        return generator.generate(num_requests)

    _WORKLOADS[spec.name] = WorkloadEntry(
        name=spec.name, category=spec.category, builder=builder, synthetic_spec=spec
    )


def workload_entry(name: str) -> WorkloadEntry:
    """Registry entry for ``name``; raises a helpful error when unknown."""
    _ensure_builtin()
    entry = _WORKLOADS.get(name)
    if entry is None:
        raise UnknownWorkloadError(name)
    return entry


def registered_workload_names(category: Optional[str] = None) -> List[str]:
    _ensure_builtin()
    if category is None:
        return sorted(_WORKLOADS)
    return sorted(n for n, e in _WORKLOADS.items() if e.category == category)
