"""The Session facade: execute experiment specs through the sweep machinery.

A :class:`Session` turns :class:`~repro.experiment.spec.ExperimentSpec`
objects into :class:`RunRecord` results.  One spec, a list of specs or a
whole grid expansion all go through the same path — the
:class:`~repro.sim.sweep.SweepRunner` — so every run is memoized on disk
(keyed by the spec's canonical-JSON content hash) and lists fan out across
worker processes exactly like the figure sweeps do.

    from repro.experiment import ExperimentSpec, MitigationSpec, Session, WorkloadSpec

    session = Session()
    record = session.run(
        ExperimentSpec(
            workload=WorkloadSpec(name="429.mcf", num_requests=8000),
            mitigation=MitigationSpec(name="comet", nrh=125),
        )
    )
    print(record.result.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING, Union

from repro.experiment.codec import decode_value, encode_value
from repro.experiment.spec import (
    ExperimentSpec,
    MitigationSpec,
    PlatformSpec,
    SampledConfig,
    WorkloadSpec,
    expand_grid,
)
from repro.sim.sweep import SWEEP_CACHE_VERSION, SweepRunner
from repro.sim.system import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (audit imports spec)
    from repro.security.audit import SecurityReport

#: Bump when the RunRecord schema changes incompatibly.
RECORD_VERSION = 1


@dataclass(frozen=True)
class RunRecord:
    """One executed experiment: the spec, its result and provenance.

    Serializes to JSON (``to_json``/``from_json``) so batch runs can be
    archived and post-processed without re-simulating.
    """

    spec: ExperimentSpec
    result: SimulationResult
    provenance: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "record_version": RECORD_VERSION,
            "spec": self.spec.to_dict(),
            "result": encode_value(self.result),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        version = data.get("record_version", RECORD_VERSION)
        if version > RECORD_VERSION:
            raise ValueError(
                f"record_version {version} is newer than this build supports "
                f"({RECORD_VERSION}); upgrade repro"
            )
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            result=decode_value(data["result"]),
            provenance=dict(data.get("provenance", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        import json

        return cls.from_dict(json.loads(text))


class Session:
    """Executes experiment specs with caching and parallel fan-out.

    Parameters
    ----------
    max_workers:
        Worker processes for lists/grids (``0``/``1`` runs inline;
        ``None`` uses ``os.cpu_count()``).
    cache_dir:
        On-disk result cache directory (``None``: ``$REPRO_SWEEP_CACHE`` or
        ``~/.cache/repro/sweeps``); ``use_cache=False`` disables caching.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
    ) -> None:
        self._runner = SweepRunner(
            max_workers=max_workers,
            cache_dir=Path(cache_dir) if cache_dir is not None else None,
            use_cache=use_cache,
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, spec: ExperimentSpec) -> RunRecord:
        """Execute one spec (through the cache) and return its record."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[ExperimentSpec]) -> List[RunRecord]:
        """Execute a list of specs; results come back in input order.

        Cache misses fan out across worker processes; each completed run is
        written to the cache the moment it lands, so interrupting a long
        batch keeps the finished points.
        """
        specs = list(specs)
        cached_flags: Dict[int, bool] = {}

        def progress(spec, result, from_cache):
            cached_flags[id(spec)] = from_cache

        results = self._runner.run(specs, progress=progress)
        return [
            RunRecord(
                spec=spec,
                result=result,
                provenance=self._provenance(spec, cached_flags.get(id(spec), False)),
            )
            for spec, result in zip(specs, results)
        ]

    def run_grid(
        self,
        workloads: Sequence[str],
        mitigations: Sequence[str],
        nrhs: Sequence[int],
        **grid_kwargs,
    ) -> List[RunRecord]:
        """Expand a workload x mitigation x NRH grid and execute it."""
        return self.run_many(expand_grid(workloads, mitigations, nrhs, **grid_kwargs))

    def compare(
        self,
        workload: Union[str, WorkloadSpec],
        mitigations: Sequence[str],
        nrh: int,
        platform: Optional[PlatformSpec] = None,
        verify_security: bool = True,
        fidelity: str = "full",
        sampled: Optional["SampledConfig"] = None,
    ) -> Dict[str, RunRecord]:
        """Run one workload under several mitigations plus the baseline.

        Returns a mapping mitigation name -> record; the unprotected
        baseline is always included under ``"none"`` so callers can
        normalize.  ``fidelity``/``sampled`` select the executor per
        :class:`~repro.experiment.spec.ExperimentSpec` (sampled runs cache
        under distinct keys from full-fidelity runs).
        """
        if isinstance(workload, str):
            workload = WorkloadSpec(name=workload)
        names = list(dict.fromkeys(["none", *mitigations]))
        specs = [
            ExperimentSpec(
                workload=workload,
                # The unprotected baseline is threshold-independent; pinning
                # it at nrh=1 gives it one cache entry shared across every
                # compared threshold (the expand_grid convention).
                mitigation=MitigationSpec(name=name, nrh=1 if name == "none" else nrh),
                platform=platform or PlatformSpec(),
                verify_security=verify_security and name != "none",
                fidelity=fidelity,
                sampled=sampled,
            )
            for name in names
        ]
        records = self.run_many(specs)
        return dict(zip(names, records))

    def audit(self, **kwargs) -> "SecurityReport":
        """Run a security-audit campaign through this session.

        Keyword arguments mirror :func:`repro.security.audit.run_audit`
        (``mitigations``, ``patterns``, ``nrhs``, ``num_requests``,
        ``channels``, ``seed``, ``platform``, ``include_baseline``); the
        campaign executes through this session's cache and worker pool and
        reduces to a :class:`~repro.security.audit.SecurityReport`.
        """
        from repro.security.audit import run_audit

        return run_audit(session=self, **kwargs)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def cache_hits(self) -> int:
        return self._runner.cache.hits if self._runner.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self._runner.cache.misses if self._runner.cache is not None else 0

    def _provenance(self, spec: ExperimentSpec, from_cache: bool) -> Dict[str, Any]:
        from repro import __version__

        return {
            "repro_version": __version__,
            "cache_version": SWEEP_CACHE_VERSION,
            "spec_hash": spec.content_hash(),
            "from_cache": from_cache,
        }

    #: Grid expansion without execution (alias of :func:`expand_grid`).
    grid = staticmethod(expand_grid)
