"""The Session facade: execute experiment specs through the sweep machinery.

A :class:`Session` turns :class:`~repro.experiment.spec.ExperimentSpec`
objects into :class:`RunRecord` results.  One spec, a list of specs or a
whole grid expansion all go through the same path — the
:class:`~repro.sim.sweep.SweepRunner` — so every run is memoized on disk
(keyed by the spec's canonical-JSON content hash) and lists fan out across
worker processes exactly like the figure sweeps do.

    from repro.experiment import ExperimentSpec, MitigationSpec, Session, WorkloadSpec

    session = Session()
    record = session.run(
        ExperimentSpec(
            workload=WorkloadSpec(name="429.mcf", num_requests=8000),
            mitigation=MitigationSpec(name="comet", nrh=125),
        )
    )
    print(record.result.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING, Union

from repro.experiment.codec import decode_value, encode_value
from repro.experiment.spec import (
    CampaignSpec,
    ExperimentSpec,
    MitigationSpec,
    PlatformSpec,
    SampledConfig,
    WorkloadSpec,
    expand_grid,
)
from repro.sim.sweep import SWEEP_CACHE_VERSION, SweepRunner
from repro.sim.system import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (audit imports spec)
    from repro.security.audit import SecurityReport

#: Bump when the RunRecord schema changes incompatibly.
RECORD_VERSION = 1


@dataclass(frozen=True)
class RunRecord:
    """One executed experiment: the spec, its result and provenance.

    Serializes to JSON (``to_json``/``from_json``) so batch runs can be
    archived and post-processed without re-simulating.
    """

    spec: ExperimentSpec
    result: SimulationResult
    provenance: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "record_version": RECORD_VERSION,
            "spec": self.spec.to_dict(),
            "result": encode_value(self.result),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        version = data.get("record_version", RECORD_VERSION)
        if version > RECORD_VERSION:
            raise ValueError(
                f"record_version {version} is newer than this build supports "
                f"({RECORD_VERSION}); upgrade repro"
            )
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            result=decode_value(data["result"]),
            provenance=dict(data.get("provenance", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        import json

        return cls.from_dict(json.loads(text))


class Session:
    """Executes experiment specs with caching and parallel fan-out.

    Parameters
    ----------
    max_workers:
        Worker processes for lists/grids (``0``/``1`` runs inline;
        ``None`` uses ``os.cpu_count()``).
    cache_dir:
        On-disk result cache directory (``None``: ``$REPRO_SWEEP_CACHE`` or
        ``~/.cache/repro/sweeps``); ``use_cache=False`` disables caching.
    store:
        Optional campaign :class:`~repro.campaign.store.ResultStore` (or a
        path to open one at).  When given, spec runs cache through the
        store's versioned RunRecord JSONs instead of the pickle cache, so
        interactive runs, sweeps and campaigns all share one database.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
        store: Optional[Any] = None,
    ) -> None:
        if isinstance(store, (str, Path)):
            from repro.campaign.store import ResultStore

            store = ResultStore(store)
        self._store = store
        self._runner = SweepRunner(
            max_workers=max_workers,
            cache_dir=Path(cache_dir) if cache_dir is not None else None,
            use_cache=use_cache,
            store=store,
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, spec: ExperimentSpec) -> RunRecord:
        """Execute one spec (through the cache) and return its record."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[ExperimentSpec]) -> List[RunRecord]:
        """Execute a list of specs; results come back in input order.

        Cache misses fan out across worker processes; each completed run is
        written to the cache the moment it lands, so interrupting a long
        batch keeps the finished points.
        """
        specs = list(specs)
        cached_flags: Dict[int, bool] = {}

        def progress(spec, result, from_cache):
            cached_flags[id(spec)] = from_cache

        results = self._runner.run(specs, progress=progress)
        return [
            RunRecord(
                spec=spec,
                result=result,
                provenance=self._provenance(spec, cached_flags.get(id(spec), False)),
            )
            for spec, result in zip(specs, results)
        ]

    def run_grid(
        self,
        workloads: Sequence[str],
        mitigations: Sequence[str],
        nrhs: Sequence[int],
        **grid_kwargs,
    ) -> List[RunRecord]:
        """Expand a workload x mitigation x NRH grid and execute it."""
        return self.run_many(expand_grid(workloads, mitigations, nrhs, **grid_kwargs))

    def compare(
        self,
        workload: Union[str, WorkloadSpec],
        mitigations: Sequence[str],
        nrh: int,
        platform: Optional[PlatformSpec] = None,
        verify_security: bool = True,
        fidelity: str = "full",
        sampled: Optional["SampledConfig"] = None,
    ) -> Dict[str, RunRecord]:
        """Run one workload under several mitigations plus the baseline.

        Returns a mapping mitigation name -> record; the unprotected
        baseline is always included under ``"none"`` so callers can
        normalize.  ``fidelity``/``sampled`` select the executor per
        :class:`~repro.experiment.spec.ExperimentSpec` (sampled runs cache
        under distinct keys from full-fidelity runs).
        """
        if isinstance(workload, str):
            workload = WorkloadSpec(name=workload)
        names = list(dict.fromkeys(["none", *mitigations]))
        specs = [
            ExperimentSpec(
                workload=workload,
                # The unprotected baseline is threshold-independent; pinning
                # it at nrh=1 gives it one cache entry shared across every
                # compared threshold (the expand_grid convention).
                mitigation=MitigationSpec(name=name, nrh=1 if name == "none" else nrh),
                platform=platform or PlatformSpec(),
                verify_security=verify_security and name != "none",
                fidelity=fidelity,
                sampled=sampled,
            )
            for name in names
        ]
        records = self.run_many(specs)
        return dict(zip(names, records))

    def audit(self, **kwargs) -> "SecurityReport":
        """Run a security-audit campaign through this session.

        Keyword arguments mirror :func:`repro.security.audit.run_audit`
        (``mitigations``, ``patterns``, ``nrhs``, ``num_requests``,
        ``channels``, ``seed``, ``platform``, ``include_baseline``); the
        campaign executes through this session's cache and worker pool and
        reduces to a :class:`~repro.security.audit.SecurityReport`.
        """
        from repro.security.audit import run_audit

        return run_audit(session=self, **kwargs)

    def campaign(
        self,
        campaign: "CampaignSpec",
        store: Optional[Any] = None,
        backend: Union[str, Any] = "memory",
        lease: float = 60.0,
        budget: Optional[int] = None,
        **runner_kwargs,
    ):
        """Run a persistent, resumable campaign through this session.

        ``campaign`` is a :class:`~repro.experiment.spec.CampaignSpec`;
        ``store`` a :class:`~repro.campaign.store.ResultStore` or path
        (defaults to this session's store, which must then be set);
        ``backend`` a queue backend name (``memory`` / ``directory`` /
        ``sqlite``) or instance.  Execution fans across this session's
        worker count and lands in the store; re-invoking with the same
        arguments resumes, recomputing nothing that already completed.
        Returns the final :class:`~repro.campaign.runner.CampaignStatus`.
        """
        from repro.campaign.runner import CampaignRunner

        store = store if store is not None else self._store
        if store is None:
            raise ValueError(
                "Session.campaign() needs a result store: pass store=... here "
                "or construct the Session with one"
            )
        runner = CampaignRunner(
            campaign,
            store=store,
            queue=backend,
            max_workers=self._runner.max_workers,
            lease=lease,
            budget=budget,
            **runner_kwargs,
        )
        return runner.run()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> Optional[Any]:
        """The campaign result store spec runs cache through (or ``None``)."""
        return self._store

    @property
    def cache_hits(self) -> int:
        hits = self._runner.cache.hits if self._runner.cache is not None else 0
        if self._store is not None:
            hits += self._store.hits
        return hits

    @property
    def cache_misses(self) -> int:
        misses = self._runner.cache.misses if self._runner.cache is not None else 0
        if self._store is not None:
            misses += self._store.misses
        return misses

    def _provenance(self, spec: ExperimentSpec, from_cache: bool) -> Dict[str, Any]:
        from repro import __version__

        return {
            "repro_version": __version__,
            "cache_version": SWEEP_CACHE_VERSION,
            "spec_hash": spec.content_hash(),
            "from_cache": from_cache,
        }

    #: Grid expansion without execution (alias of :func:`expand_grid`).
    grid = staticmethod(expand_grid)
