"""The 61-workload benign suite and the 8-core multi-programmed mixes.

The paper's workloads (Table 3) come from SPEC CPU2006, SPEC CPU2017, TPC,
MediaBench and YCSB, grouped by row-buffer misses per kilo-instruction
(RBMPKI) into low ([0, 2)), medium ([2, 10)) and high ([10+)) memory
intensity.  Each entry below is a synthetic stand-in with hand-assigned
parameters that place it in the right category and give it a plausible access
structure:

* streaming scientific kernels (lbm, GemsFDTD, fotonik3d, libquantum, ...)
  get high row locality and large sequential footprints;
* graph/pointer-chasing workloads (mcf, omnetpp, bfs_*, xalancbmk, ...) get
  low locality and skewed (Zipf) row popularity — these are the workloads
  whose hot rows approach the RowHammer threshold in benign runs;
* server workloads (ycsb_*, tpch*, tpcc64) sit in between, with moderate
  write fractions.

The absolute RBMPKI values follow the category ranges of Table 3; DESIGN.md
documents this substitution.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cpu.trace import Trace
from repro.dram.config import DRAMConfig
from repro.experiment.registry import register_suite_workload
from repro.workloads.synthetic import SyntheticWorkloadGenerator, WorkloadSpec


def _spec(
    name: str,
    rbmpki: float,
    locality: float,
    footprint: int,
    zipf: float,
    writes: float,
    category: str,
    bank_fraction: float = 1.0,
    channel_fraction: float = 1.0,
) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        rbmpki=rbmpki,
        row_locality=locality,
        footprint_rows=footprint,
        zipf_alpha=zipf,
        write_fraction=writes,
        bank_fraction=bank_fraction,
        category=category,
        channel_fraction=channel_fraction,
    )


#: The full single-core suite, keyed by workload name.
WORKLOAD_SUITE: Dict[str, WorkloadSpec] = {
    # ----------------------------------------------------------------- #
    # High memory intensity (RBMPKI >= 10), Table 3 top block.
    # ----------------------------------------------------------------- #
    "519.lbm": _spec("519.lbm", 26.0, 0.82, 4096, 0.2, 0.45, "high"),
    "459.GemsFDTD": _spec("459.GemsFDTD", 24.0, 0.78, 3072, 0.2, 0.30, "high"),
    "450.soplex": _spec("450.soplex", 18.0, 0.55, 2048, 0.5, 0.25, "high"),
    "h264_decode": _spec("h264_decode", 30.0, 0.70, 2048, 0.3, 0.35, "high"),
    "520.omnetpp": _spec("520.omnetpp", 12.0, 0.30, 1536, 0.8, 0.30, "high"),
    "433.milc": _spec("433.milc", 16.0, 0.65, 3072, 0.3, 0.35, "high"),
    "434.zeusmp": _spec("434.zeusmp", 20.0, 0.75, 3072, 0.2, 0.35, "high"),
    "bfs_dblp": _spec("bfs_dblp", 28.0, 0.22, 2048, 0.9, 0.10, "high"),
    "429.mcf": _spec("429.mcf", 22.0, 0.25, 1792, 0.9, 0.20, "high"),
    "549.fotonik3d": _spec("549.fotonik3d", 19.0, 0.80, 3584, 0.2, 0.30, "high"),
    "470.lbm": _spec("470.lbm", 25.0, 0.82, 4096, 0.2, 0.45, "high"),
    "bfs_ny": _spec("bfs_ny", 27.0, 0.22, 2048, 0.9, 0.10, "high"),
    "bfs_cm2003": _spec("bfs_cm2003", 27.0, 0.22, 2304, 0.9, 0.10, "high"),
    "437.leslie3d": _spec("437.leslie3d", 14.0, 0.72, 2560, 0.3, 0.30, "high"),
    # ----------------------------------------------------------------- #
    # Medium memory intensity (2 <= RBMPKI < 10).
    # ----------------------------------------------------------------- #
    "510.parest": _spec("510.parest", 2.2, 0.60, 1024, 0.5, 0.25, "medium"),
    "462.libquantum": _spec("462.libquantum", 9.5, 0.90, 2048, 0.1, 0.25, "medium"),
    "tpch2": _spec("tpch2", 7.0, 0.60, 1536, 0.5, 0.15, "medium"),
    "wc_8443": _spec("wc_8443", 4.5, 0.55, 1024, 0.5, 0.20, "medium"),
    "ycsb_aserver": _spec("ycsb_aserver", 3.2, 0.40, 1280, 0.8, 0.45, "medium"),
    "473.astar": _spec("473.astar", 5.5, 0.35, 1024, 0.8, 0.20, "medium"),
    "jp2_decode": _spec("jp2_decode", 3.8, 0.65, 1024, 0.4, 0.30, "medium"),
    "436.cactusADM": _spec("436.cactusADM", 4.8, 0.70, 1536, 0.3, 0.35, "medium"),
    "557.xz": _spec("557.xz", 3.0, 0.45, 1024, 0.6, 0.30, "medium"),
    "ycsb_cserver": _spec("ycsb_cserver", 2.8, 0.40, 1280, 0.8, 0.05, "medium"),
    "ycsb_eserver": _spec("ycsb_eserver", 2.5, 0.42, 1280, 0.8, 0.10, "medium"),
    "471.omnetpp": _spec("471.omnetpp", 2.3, 0.30, 1024, 0.9, 0.30, "medium"),
    "483.xalancbmk": _spec("483.xalancbmk", 2.4, 0.32, 896, 0.9, 0.20, "medium"),
    "505.mcf": _spec("505.mcf", 8.5, 0.25, 1792, 0.9, 0.20, "medium"),
    "wc_map0": _spec("wc_map0", 4.4, 0.55, 1024, 0.5, 0.20, "medium"),
    "jp2_encode": _spec("jp2_encode", 4.2, 0.65, 1024, 0.4, 0.35, "medium"),
    "tpch17": _spec("tpch17", 6.0, 0.60, 1536, 0.5, 0.15, "medium"),
    "ycsb_bserver": _spec("ycsb_bserver", 2.9, 0.40, 1280, 0.8, 0.15, "medium"),
    "tpcc64": _spec("tpcc64", 3.6, 0.38, 1408, 0.8, 0.40, "medium"),
    "482.sphinx3": _spec("482.sphinx3", 2.7, 0.55, 896, 0.6, 0.15, "medium"),
    # ----------------------------------------------------------------- #
    # Low memory intensity (RBMPKI < 2).
    # ----------------------------------------------------------------- #
    "502.gcc": _spec("502.gcc", 0.9, 0.50, 512, 0.7, 0.25, "low"),
    "544.nab": _spec("544.nab", 0.5, 0.60, 384, 0.5, 0.25, "low"),
    "h264_encode": _spec("h264_encode", 0.1, 0.70, 256, 0.4, 0.30, "low"),
    "507.cactuBSSN": _spec("507.cactuBSSN", 1.8, 0.70, 768, 0.3, 0.35, "low"),
    "525.x264": _spec("525.x264", 0.6, 0.68, 384, 0.4, 0.30, "low"),
    "ycsb_dserver": _spec("ycsb_dserver", 1.6, 0.42, 768, 0.8, 0.15, "low"),
    "531.deepsjeng": _spec("531.deepsjeng", 0.7, 0.45, 512, 0.7, 0.25, "low"),
    "526.blender": _spec("526.blender", 0.5, 0.60, 448, 0.5, 0.25, "low"),
    "435.gromacs": _spec("435.gromacs", 0.9, 0.62, 512, 0.5, 0.30, "low"),
    "523.xalancbmk": _spec("523.xalancbmk", 0.8, 0.35, 512, 0.9, 0.20, "low"),
    "447.dealII": _spec("447.dealII", 0.4, 0.60, 384, 0.5, 0.25, "low"),
    "508.namd": _spec("508.namd", 0.5, 0.62, 384, 0.5, 0.25, "low"),
    "538.imagick": _spec("538.imagick", 0.2, 0.70, 256, 0.4, 0.30, "low"),
    "445.gobmk": _spec("445.gobmk", 0.6, 0.45, 448, 0.7, 0.25, "low"),
    "444.namd": _spec("444.namd", 0.5, 0.62, 384, 0.5, 0.25, "low"),
    "464.h264ref": _spec("464.h264ref", 0.3, 0.68, 320, 0.4, 0.30, "low"),
    "ycsb_abgsave": _spec("ycsb_abgsave", 1.2, 0.42, 640, 0.8, 0.40, "low"),
    "458.sjeng": _spec("458.sjeng", 0.7, 0.45, 448, 0.7, 0.25, "low"),
    "541.leela": _spec("541.leela", 0.2, 0.48, 320, 0.7, 0.25, "low"),
    "tpch6": _spec("tpch6", 1.8, 0.60, 768, 0.5, 0.15, "low"),
    "511.povray": _spec("511.povray", 0.1, 0.60, 256, 0.5, 0.25, "low"),
    "456.hmmer": _spec("456.hmmer", 0.3, 0.60, 320, 0.5, 0.25, "low"),
    "481.wrf": _spec("481.wrf", 0.2, 0.65, 320, 0.4, 0.30, "low"),
    "grep_map0": _spec("grep_map0", 1.4, 0.55, 640, 0.5, 0.20, "low"),
    "500.perlbench": _spec("500.perlbench", 1.6, 0.45, 640, 0.7, 0.25, "low"),
    "403.gcc": _spec("403.gcc", 0.8, 0.50, 512, 0.7, 0.25, "low"),
    "401.bzip2": _spec("401.bzip2", 0.7, 0.55, 448, 0.6, 0.30, "low"),
}


#: Multi-channel scaling workloads (the ``multichannel`` category).  These
#: are not part of the paper's Table 3 (which evaluates a 1-channel system);
#: they exercise the channel-partitioned fabric by spreading their footprint
#: across every available channel — or deliberately only half of them
#: (``mc_skewed``), modelling channel imbalance.  On a 1-channel
#: configuration they degenerate to ordinary single-channel workloads.
MULTICHANNEL_SUITE: Dict[str, WorkloadSpec] = {
    "mc_stream": _spec(
        "mc_stream", 24.0, 0.80, 4096, 0.2, 0.40, "multichannel"
    ),
    "mc_random": _spec(
        "mc_random", 20.0, 0.20, 2048, 0.9, 0.20, "multichannel"
    ),
    "mc_server": _spec(
        "mc_server", 6.0, 0.45, 1536, 0.8, 0.35, "multichannel"
    ),
    "mc_skewed": _spec(
        "mc_skewed", 18.0, 0.40, 2048, 0.7, 0.25, "multichannel",
        channel_fraction=0.5,
    ),
}


# Every suite entry is resolvable through the experiment registry, so an
# :class:`~repro.experiment.spec.ExperimentSpec` can name any of them (the
# attack generators register alongside in :mod:`repro.workloads.attacks`).
for _suite_spec in (*WORKLOAD_SUITE.values(), *MULTICHANNEL_SUITE.values()):
    register_suite_workload(_suite_spec)
del _suite_spec


def workload_names(category: Optional[str] = None) -> List[str]:
    """Names of all Table 3 workloads, optionally filtered by category.

    Categories ``low``/``medium``/``high`` select from the 61-workload
    Table 3 suite; ``multichannel`` selects the channel-scaling additions
    (which are deliberately *not* part of the unfiltered listing, keeping
    the paper's suite intact for the figure harnesses).
    """
    if category is None:
        return list(WORKLOAD_SUITE)
    if category == "multichannel":
        return list(MULTICHANNEL_SUITE)
    return [name for name, spec in WORKLOAD_SUITE.items() if spec.category == category]


def workloads_by_category() -> Dict[str, List[str]]:
    """Mapping category -> workload names (Table 3 plus ``multichannel``)."""
    result: Dict[str, List[str]] = {
        "high": [],
        "medium": [],
        "low": [],
        "multichannel": list(MULTICHANNEL_SUITE),
    }
    for name, spec in WORKLOAD_SUITE.items():
        result[spec.category].append(name)
    return result


def workload_spec(name: str) -> WorkloadSpec:
    """Spec for one named workload; raises KeyError with a helpful message."""
    spec = WORKLOAD_SUITE.get(name) or MULTICHANNEL_SUITE.get(name)
    if spec is None:
        known = sorted([*WORKLOAD_SUITE, *MULTICHANNEL_SUITE])
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}")
    return spec


def build_trace(
    name: str,
    num_requests: int = 20_000,
    dram_config: Optional[DRAMConfig] = None,
    seed: int = 0,
) -> Trace:
    """Generate the trace of one named workload."""
    spec = workload_spec(name)
    generator = SyntheticWorkloadGenerator(spec, dram_config=dram_config, seed=seed)
    return generator.generate(num_requests)


def build_multicore_traces(
    name: str,
    num_cores: int = 8,
    num_requests: int = 10_000,
    dram_config: Optional[DRAMConfig] = None,
    seed: int = 0,
) -> List[Trace]:
    """Homogeneous multi-programmed mix: ``num_cores`` copies of one workload.

    The paper's 8-core workloads are homogeneous multi-programmed mixes
    (Section 6); each copy gets its own seed so the copies touch different
    rows of the shared memory system.
    """
    return [
        build_trace(name, num_requests=num_requests, dram_config=dram_config, seed=seed + core)
        for core in range(num_cores)
    ]
