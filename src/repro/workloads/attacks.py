"""RowHammer attack trace generators (Section 8.2 of the paper).

Three attacker models are reproduced:

* :func:`traditional_rowhammer_attack` — the classic many-row hammering
  attack: the attacker core issues activations as fast as the memory
  controller allows (one ACT roughly every 20 ns in the paper's setup),
  cycling over a set of aggressor rows in every bank so that row-buffer hits
  never absorb the activations.
* :func:`comet_targeted_attack` — stresses CoMeT's Recent Aggressor Table:
  the attacker hammers more distinct rows than the RAT has entries, each just
  past the preventive refresh threshold, forcing RAT evictions, capacity
  misses and ultimately early preventive refresh operations.
* :func:`hydra_targeted_attack` — stresses Hydra's filtering: the attacker
  touches many row groups a few times each, saturating group counters and
  forcing Hydra to spill per-row counters to DRAM, maximizing its off-chip
  counter traffic.

All generators emit ordinary :class:`~repro.cpu.trace.Trace` objects, so an
attack can run standalone or alongside benign workloads in a multi-core mix.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.cpu.trace import Trace, TraceEntry
from repro.dram.address import AddressMapper
from repro.dram.config import DRAMConfig
from repro.experiment.registry import register_workload


def _mapper(dram_config: Optional[DRAMConfig]) -> AddressMapper:
    return AddressMapper(dram_config or DRAMConfig())


def traditional_rowhammer_attack(
    num_requests: int = 20_000,
    aggressor_rows_per_bank: int = 4,
    dram_config: Optional[DRAMConfig] = None,
    bubble: int = 0,
    base_row: int = 64,
    row_stride: int = 2,
    seed: int = 0,
    channel: int = 0,
) -> Trace:
    """Round-robin hammering of ``aggressor_rows_per_bank`` rows in every bank.

    Consecutive accesses always target a different row of the same bank (or
    move to the next bank), so every access forces a row conflict and hence an
    ACT — the attacker's goal.  ``row_stride=2`` leaves victim rows between
    aggressors (double-sided style layout).  On a multi-channel fabric the
    attack confines itself to ``channel``, which is what makes the
    per-channel mitigation isolation observable (an attack on one channel
    must not perturb another channel's counters).
    """
    mapper = _mapper(dram_config)
    config = mapper.config
    banks = mapper.all_bank_indices()
    rng = random.Random(seed)
    rows = [base_row + i * row_stride for i in range(aggressor_rows_per_bank)]

    entries: List[TraceEntry] = []
    bank_cursor = 0
    row_cursor = 0
    for _ in range(num_requests):
        bank = banks[bank_cursor % len(banks)]
        row = rows[row_cursor % len(rows)]
        column = rng.randrange(0, config.organization.columns_per_row, 8)
        address = mapper.address_for_row(
            row, bank_index=bank, column=column, channel=channel
        )
        entries.append(TraceEntry(bubble, address, False))
        # Advance row first so the same bank sees alternating rows (always a
        # conflict), then rotate banks to hammer all of them.
        row_cursor += 1
        if row_cursor % len(rows) == 0:
            bank_cursor += 1
    return Trace(entries, name="attack_traditional")


def single_row_hammer(
    target_row: int,
    activations: int,
    bank_index: int = 0,
    dram_config: Optional[DRAMConfig] = None,
    decoy_row: Optional[int] = None,
    bubble: int = 0,
    channel: int = 0,
) -> Trace:
    """Hammer one aggressor row ``activations`` times (unit-test helper).

    Accesses alternate between the target row and a decoy row far away in the
    same bank so that every access to the target causes a fresh activation.
    """
    mapper = _mapper(dram_config)
    rows_per_bank = mapper.config.organization.rows_per_bank
    if decoy_row is None:
        decoy_row = (target_row + rows_per_bank // 2) % rows_per_bank
    entries: List[TraceEntry] = []
    for _ in range(activations):
        entries.append(
            TraceEntry(
                bubble,
                mapper.address_for_row(target_row, bank_index=bank_index, channel=channel),
                False,
            )
        )
        entries.append(
            TraceEntry(
                bubble,
                mapper.address_for_row(decoy_row, bank_index=bank_index, channel=channel),
                False,
            )
        )
    return Trace(entries, name=f"hammer_row_{target_row}")


def comet_targeted_attack(
    num_requests: int = 20_000,
    distinct_rows: int = 128,
    npr: int = 31,
    dram_config: Optional[DRAMConfig] = None,
    bank_index: int = 0,
    bubble: int = 0,
    base_row: int = 128,
    channel: int = 0,
) -> Trace:
    """RAT-thrashing attack against CoMeT (Section 8.2, "targeted attack").

    The attacker sweeps ``distinct_rows`` rows of one bank round-robin (a
    many-sided attack), so consecutive accesses always hit different rows and
    the memory controller cannot coalesce them into row-buffer hits: every
    access costs an activation.  Once each row has accumulated ``npr``
    activations (``npr`` passes over the set), every further pass creates a
    new aggressor for a RAT that can only hold 128 of them, forcing evictions,
    capacity misses and eventually early preventive refresh operations.

    ``num_requests`` should therefore be at least ``distinct_rows * npr`` for
    the attack to bite; the default parameters satisfy this comfortably.
    """
    mapper = _mapper(dram_config)
    rows_per_bank = mapper.config.organization.rows_per_bank
    rows = [(base_row + 2 * i) % rows_per_bank for i in range(distinct_rows)]
    entries: List[TraceEntry] = []
    produced = 0
    while produced < num_requests:
        for row in rows:
            if produced >= num_requests:
                break
            address = mapper.address_for_row(row, bank_index=bank_index, channel=channel)
            entries.append(TraceEntry(bubble, address, False))
            produced += 1
    return Trace(entries[:num_requests], name="attack_comet_targeted")


def hydra_targeted_attack(
    num_requests: int = 20_000,
    groups_touched: int = 512,
    rows_per_group: int = 128,
    touches_per_row: int = 2,
    dram_config: Optional[DRAMConfig] = None,
    bubble: int = 0,
    seed: int = 0,
    channel: int = 0,
) -> Trace:
    """Group-counter saturation attack against Hydra (Section 8.2).

    The attacker sweeps many row groups, touching a few rows in each just
    enough times for the group counters to cross Hydra's group threshold;
    after that every further activation needs a per-row counter access,
    flooding DRAM with Hydra's own counter traffic.
    """
    mapper = _mapper(dram_config)
    config = mapper.config
    banks = mapper.all_bank_indices()
    rows_per_bank = config.organization.rows_per_bank
    rng = random.Random(seed)

    entries: List[TraceEntry] = []
    produced = 0
    group = 0
    while produced < num_requests:
        group_base = (group * rows_per_group) % max(1, rows_per_bank - rows_per_group)
        bank = banks[group % len(banks)]
        for offset in range(0, rows_per_group, max(1, rows_per_group // 8)):
            for _ in range(touches_per_row):
                if produced >= num_requests:
                    break
                row = group_base + offset
                column = rng.randrange(0, config.organization.columns_per_row, 8)
                address = mapper.address_for_row(
                    row, bank_index=bank, column=column, channel=channel
                )
                entries.append(TraceEntry(bubble, address, False))
                produced += 1
            if produced >= num_requests:
                break
        group = (group + 1) % max(1, groups_touched)
    return Trace(entries, name="attack_hydra_targeted")


# --------------------------------------------------------------------------- #
# Experiment-registry entries
# --------------------------------------------------------------------------- #
# The attack generators register under ``attack_*`` names so an
# :class:`~repro.experiment.spec.ExperimentSpec` can name them like any suite
# workload (generator knobs travel in the spec's ``params``).  Wrappers adapt
# the builder protocol — ``fn(num_requests=, dram_config=, seed=, **params)``
# — to generators whose signatures predate it.


@register_workload("attack_traditional", category="attack")
def _build_traditional_attack(num_requests, dram_config=None, seed=0, **params):
    return traditional_rowhammer_attack(
        num_requests=num_requests, dram_config=dram_config, seed=seed, **params
    )


@register_workload("attack_comet_targeted", category="attack")
def _build_comet_targeted_attack(num_requests, dram_config=None, seed=0, **params):
    # The RAT-thrashing sweep is deterministic: there is no RNG to seed.
    return comet_targeted_attack(
        num_requests=num_requests, dram_config=dram_config, **params
    )


@register_workload("attack_hydra_targeted", category="attack")
def _build_hydra_targeted_attack(num_requests, dram_config=None, seed=0, **params):
    return hydra_targeted_attack(
        num_requests=num_requests, dram_config=dram_config, seed=seed, **params
    )


@register_workload("attack_single_row", category="attack")
def _build_single_row_hammer(num_requests, dram_config=None, seed=0, **params):
    # Two accesses (target + decoy) per activation; there is no RNG to seed.
    params.setdefault("target_row", 64)
    return single_row_hammer(
        activations=max(1, num_requests // 2), dram_config=dram_config, **params
    )
