"""Parametric synthetic workload generator.

A workload is described by a :class:`WorkloadSpec`:

* ``rbmpki`` — row-buffer misses per kilo-instruction; together with the
  trace length this fixes the compute "bubble" between memory accesses and is
  the primary knob separating the low/medium/high categories of Table 3.
* ``row_locality`` — probability that the next access stays in the currently
  open row of its bank (streaming workloads are high, pointer-chasing low).
* ``footprint_rows`` — number of distinct DRAM rows the workload touches per
  bank; combined with ``zipf_alpha`` (popularity skew) this controls how many
  rows approach the RowHammer threshold in benign workloads.
* ``write_fraction`` — fraction of accesses that are writes.
* ``bank_fraction`` — fraction of the available banks the workload spreads
  over (bank-level parallelism).
* ``channel_fraction`` — fraction of the available memory channels the
  workload spreads over (channel-level parallelism on a multi-channel
  fabric; irrelevant on the paper's 1-channel configuration).

The generator produces a :class:`~repro.cpu.trace.Trace` of LLC-miss-level
accesses (the same level as Ramulator DRAM traces), deterministic for a given
seed.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import List, Optional

from repro.cpu.trace import Trace, TraceEntry
from repro.dram.address import AddressMapper
from repro.dram.config import DRAMConfig


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic workload."""

    name: str
    rbmpki: float
    row_locality: float = 0.5
    footprint_rows: int = 512
    zipf_alpha: float = 0.6
    write_fraction: float = 0.25
    bank_fraction: float = 1.0
    category: str = "medium"
    channel_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.rbmpki <= 0:
            raise ValueError("rbmpki must be positive")
        if not 0.0 <= self.row_locality < 1.0:
            raise ValueError("row_locality must be in [0, 1)")
        if self.footprint_rows <= 0:
            raise ValueError("footprint_rows must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if not 0.0 < self.bank_fraction <= 1.0:
            raise ValueError("bank_fraction must be in (0, 1]")
        if not 0.0 < self.channel_fraction <= 1.0:
            raise ValueError("channel_fraction must be in (0, 1]")

    @property
    def average_bubble(self) -> float:
        """Average non-memory instructions between accesses implied by RBMPKI."""
        return max(0.0, 1000.0 / self.rbmpki - 1.0)


class SyntheticWorkloadGenerator:
    """Generates reproducible synthetic traces from a :class:`WorkloadSpec`."""

    def __init__(
        self,
        spec: WorkloadSpec,
        dram_config: Optional[DRAMConfig] = None,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.dram_config = dram_config or DRAMConfig()
        self.mapper = AddressMapper(self.dram_config)
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Row popularity model
    # ------------------------------------------------------------------ #
    def _zipf_weights(self, count: int) -> List[float]:
        alpha = self.spec.zipf_alpha
        weights = [1.0 / math.pow(rank + 1, alpha) for rank in range(count)]
        total = sum(weights)
        return [w / total for w in weights]

    # ------------------------------------------------------------------ #
    # Trace generation
    # ------------------------------------------------------------------ #
    def generate(self, num_requests: int) -> Trace:
        """Generate a trace with ``num_requests`` memory accesses."""
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        spec = self.spec
        # zlib.crc32, not hash(): str hashing is salted per process
        # (PYTHONHASHSEED), which would give every process — and every sweep
        # worker — a different trace for the same (workload, seed) pair.
        name_hash = zlib.crc32(spec.name.encode("utf-8"))
        rng = random.Random((name_hash & 0xFFFF_FFFF) ^ (self.seed * 0x9E3779B1))
        org = self.dram_config.organization

        all_banks = self.mapper.all_bank_indices()
        num_banks = max(1, int(round(len(all_banks) * spec.bank_fraction)))
        banks = all_banks[:num_banks]
        num_channels = max(1, int(round(org.channels * spec.channel_fraction)))
        channels = list(range(num_channels))

        footprint = min(spec.footprint_rows, org.rows_per_bank)
        # Spread each bank's footprint over a distinct region so different
        # workloads in a multi-programmed mix do not trivially share rows.
        base_row = rng.randrange(0, max(1, org.rows_per_bank - footprint))
        rows = list(range(base_row, base_row + footprint))
        weights = self._zipf_weights(footprint)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight
            cumulative.append(running)

        entries: List[TraceEntry] = []
        current_bank = rng.choice(banks)
        current_row = rows[0]
        current_column = 0
        current_channel = 0
        average_bubble = spec.average_bubble

        for _ in range(num_requests):
            if rng.random() < spec.row_locality:
                # Row-buffer-friendly access: next cache line of the open row.
                current_column = (current_column + org.columns_per_cacheline) % (
                    org.columns_per_row
                )
            else:
                current_bank = rng.choice(banks)
                # Only draw a channel when there is a choice: single-channel
                # traces must consume the RNG exactly as they did before the
                # channel fabric existed (bit-identical generation).
                if len(channels) > 1:
                    current_channel = rng.choice(channels)
                current_row = rows[self._pick_row_index(rng, cumulative)]
                current_column = rng.randrange(
                    0, org.columns_per_row, org.columns_per_cacheline
                )
            address = self.mapper.address_for_row(
                current_row,
                bank_index=current_bank,
                column=current_column,
                channel=current_channel,
            )
            is_write = rng.random() < spec.write_fraction
            bubble = self._sample_bubble(rng, average_bubble)
            entries.append(TraceEntry(bubble, address, is_write))
        return Trace(entries, name=spec.name)

    @staticmethod
    def _pick_row_index(rng: random.Random, cumulative: List[float]) -> int:
        value = rng.random()
        low, high = 0, len(cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < value:
                low = mid + 1
            else:
                high = mid
        return low

    @staticmethod
    def _sample_bubble(rng: random.Random, average: float) -> int:
        if average <= 0:
            return 0
        # Geometric-ish jitter around the mean keeps arrivals irregular
        # without heavy tails that would dominate short traces.
        return max(0, int(rng.expovariate(1.0 / average))) if average > 0 else 0
