"""Workload and attack trace generation.

The paper evaluates 61 single-core and 56 8-core workloads built from SPEC
CPU2006/2017, TPC, MediaBench and YCSB SimPoint traces.  Those traces are not
redistributable, so this subpackage generates synthetic equivalents whose
DRAM-level behaviour (row-buffer miss rate, bank parallelism, footprint, row
popularity skew) is calibrated per workload to the categories and bandwidth
figures of Table 3 — the properties the RowHammer mechanisms actually respond
to (see DESIGN.md for the substitution rationale).

* :mod:`repro.workloads.synthetic` — the parametric generator.
* :mod:`repro.workloads.suite` — the named 61-workload suite and 8-core mixes.
* :mod:`repro.workloads.attacks` — RowHammer attack traces: the traditional
  many-row hammering attack of Section 8.2 and the mechanism-targeted attacks
  (CoMeT RAT-thrashing, Hydra group-counter saturation).
"""

from repro.workloads.synthetic import SyntheticWorkloadGenerator, WorkloadSpec
from repro.workloads.suite import (
    MULTICHANNEL_SUITE,
    WORKLOAD_SUITE,
    workload_names,
    workload_spec,
    build_trace,
    build_multicore_traces,
    workloads_by_category,
)
from repro.workloads.attacks import (
    traditional_rowhammer_attack,
    comet_targeted_attack,
    hydra_targeted_attack,
    single_row_hammer,
)

__all__ = [
    "SyntheticWorkloadGenerator",
    "WorkloadSpec",
    "WORKLOAD_SUITE",
    "MULTICHANNEL_SUITE",
    "workload_names",
    "workload_spec",
    "build_trace",
    "build_multicore_traces",
    "workloads_by_category",
    "traditional_rowhammer_attack",
    "comet_targeted_attack",
    "hydra_targeted_attack",
    "single_row_hammer",
]
