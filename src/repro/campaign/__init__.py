"""Distributed, resumable experiment campaigns.

This package scales the one-shot :class:`~repro.sim.sweep.SweepRunner` grid
into a *campaign*: a persistent, content-addressed results database plus a
pluggable work queue that any number of workers — in one process, many
processes or many hosts — can drain cooperatively, with crash recovery at
every layer.

* :class:`~repro.campaign.store.ResultStore` — versioned
  :class:`~repro.experiment.session.RunRecord` JSONs indexed by canonical
  spec hash; atomic writes, checksummed reads, corrupt-file quarantine and
  incremental invalidation on ``SWEEP_CACHE_VERSION`` bumps.
* :class:`~repro.campaign.queue.WorkQueue` — the backend interface
  (claim/ack with lease-based reclaim of abandoned work), with three
  registered implementations: in-memory FIFO/priority for local runs, a
  directory-backed claim-file queue and a sqlite-backed queue for
  multi-process / multi-host work stealing.  One shared conformance suite
  (``tests/test_campaign_queue.py``) pins every backend to the same
  semantics, frontera-style.
* :class:`~repro.campaign.runner.CampaignRunner` — expands a declarative
  :class:`~repro.experiment.spec.CampaignSpec` into queue items, drives N
  workers through the store, checkpoints progress and resumes after a kill
  with zero recomputation of completed cells.
* :mod:`~repro.campaign.serve` — a read-only stdlib HTTP JSON API
  (``repro serve``) answering spec-hash and grid queries from the store
  without simulating.
"""

from repro.campaign.backends import DirectoryQueue, MemoryQueue, SqliteQueue
from repro.campaign.queue import (
    QueueCounts,
    WorkItem,
    WorkQueue,
    create_backend,
    queue_backend_catalog,
    queue_backend_names,
    register_backend,
)
from repro.campaign.runner import CampaignRunner, CampaignStatus
from repro.campaign.serve import make_server
from repro.campaign.store import ResultStore, default_store_dir
from repro.experiment.spec import CampaignSpec

__all__ = [
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStatus",
    "DirectoryQueue",
    "MemoryQueue",
    "QueueCounts",
    "ResultStore",
    "SqliteQueue",
    "WorkItem",
    "WorkQueue",
    "create_backend",
    "default_store_dir",
    "make_server",
    "queue_backend_catalog",
    "queue_backend_names",
    "register_backend",
]
