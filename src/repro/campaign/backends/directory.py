"""Directory-backed claim-file queue: one JSON file per item.

Every item lives as ``<state>/<key>.json`` under the queue root, where
``state`` is one of ``pending`` / ``claimed`` / ``done``.  The *claim* is an
atomic ``os.rename`` of the item file from ``pending/`` to ``claimed/`` —
POSIX guarantees exactly one of any number of concurrent renamers wins, so
two workers can never be issued the same item.  The winner then publishes a
lease sidecar (``leases/<key>.json``: worker id + absolute deadline) and
``reclaim_expired`` renames items whose lease has passed — or whose sidecar
is missing, i.e. the claimer died in the instant between winning the rename
and writing the lease — back to ``pending/``.

Any process that can see the directory (including over a shared
filesystem) can steal work; the only coordination primitive used is
rename atomicity.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Union

from repro.campaign.queue import (
    DEFAULT_LEASE,
    QueueCounts,
    WorkItem,
    WorkQueue,
    register_backend,
)
from repro.core.fsutil import atomic_write_text

_STATES = ("pending", "claimed", "done")


@register_backend
class DirectoryQueue(WorkQueue):
    """Claim-file queue over a plain directory (multi-process, no deps)."""

    name = "directory"
    description = (
        "one JSON file per item, claims via atomic rename; "
        "multi-process / shared-filesystem work stealing"
    )
    persistent = True

    def __init__(
        self, path: Union[str, Path], clock: Callable[[], float] = time.time
    ) -> None:
        super().__init__(clock)
        self.root = Path(path)
        for state in _STATES:
            (self.root / state).mkdir(parents=True, exist_ok=True)
        (self.root / "leases").mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _item_path(self, state: str, key: str) -> Path:
        return self.root / state / f"{key}.json"

    def _lease_path(self, key: str) -> Path:
        return self.root / "leases" / f"{key}.json"

    def _exists(self, key: str) -> bool:
        return any(self._item_path(state, key).exists() for state in _STATES)

    @staticmethod
    def _load_item(path: Path) -> Optional[WorkItem]:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            return WorkItem(
                key=data["key"],
                payload=data["payload"],
                priority=data["priority"],
                seq=data["seq"],
            )
        except (OSError, ValueError, KeyError, TypeError):
            # Mid-rename disappearance or an unreadable file: skip it; item
            # files are written atomically so this is always a race, not
            # corruption.
            return None

    def _next_seq(self) -> int:
        seq_path = self.root / "_seq"
        try:
            seq = int(seq_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            seq = 0
        seq += 1
        atomic_write_text(seq_path, str(seq))
        return seq

    def _pending_items(self) -> List[WorkItem]:
        items = []
        for path in (self.root / "pending").glob("*.json"):
            item = self._load_item(path)
            if item is not None:
                items.append(item)
        items.sort(key=self.order_key)
        return items

    # ------------------------------------------------------------------ #
    # WorkQueue interface
    # ------------------------------------------------------------------ #
    def put(self, items: Iterable[WorkItem]) -> int:
        added = 0
        for item in items:
            if self._exists(item.key):
                continue
            item = item.with_seq(self._next_seq())
            atomic_write_text(
                self._item_path("pending", item.key),
                json.dumps(
                    {
                        "key": item.key,
                        "payload": item.payload,
                        "priority": item.priority,
                        "seq": item.seq,
                    },
                    sort_keys=True,
                ),
            )
            added += 1
        return added

    def claim(self, worker: str, lease: float = DEFAULT_LEASE) -> Optional[WorkItem]:
        for item in self._pending_items():
            source = self._item_path("pending", item.key)
            target = self._item_path("claimed", item.key)
            try:
                os.rename(source, target)  # the atomic claim token
            except OSError:
                continue  # another claimer won this item; try the next
            atomic_write_text(
                self._lease_path(item.key),
                json.dumps(
                    {"worker": worker, "deadline": self._clock() + lease},
                    sort_keys=True,
                ),
            )
            return item
        return None

    def _lease(self, key: str) -> Optional[dict]:
        try:
            return json.loads(self._lease_path(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def ack(self, key: str, worker: str) -> bool:
        lease = self._lease(key)
        if lease is None or lease.get("worker") != worker:
            return False  # reclaimed (and possibly re-issued) — stale worker
        try:
            os.rename(self._item_path("claimed", key), self._item_path("done", key))
        except OSError:
            return False
        self._lease_path(key).unlink(missing_ok=True)
        return True

    def reclaim_expired(self) -> int:
        now = self._clock()
        moved = 0
        for path in (self.root / "claimed").glob("*.json"):
            key = path.stem
            lease = self._lease(key)
            # A missing lease means the claimer died between winning the
            # rename and publishing the sidecar: safe to re-issue (execution
            # is deterministic and the store write idempotent).
            if lease is not None and lease.get("deadline", 0) > now:
                continue
            try:
                os.rename(path, self._item_path("pending", key))
            except OSError:
                continue  # acked or reclaimed concurrently
            self._lease_path(key).unlink(missing_ok=True)
            moved += 1
        return moved

    def counts(self) -> QueueCounts:
        pending, claimed, done = (
            sum(1 for _ in (self.root / state).glob("*.json")) for state in _STATES
        )
        return QueueCounts(pending, claimed, done)
