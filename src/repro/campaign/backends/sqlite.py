"""SQLite-backed work queue: one database file, transactional claims.

The recommended multi-process backend: claims run inside ``BEGIN
IMMEDIATE`` transactions, so SQLite's file locking serializes concurrent
claimers across threads, processes and (local-filesystem) hosts — no two
workers are ever issued the same item.  Every operation opens a short-lived
connection, which keeps the backend safe to use from any thread or from
forked workers without connection hand-me-down hazards.
"""

from __future__ import annotations

import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Union

from repro.campaign.queue import (
    DEFAULT_LEASE,
    QueueCounts,
    WorkItem,
    WorkQueue,
    register_backend,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS items (
    key      TEXT PRIMARY KEY,
    payload  TEXT NOT NULL,
    priority INTEGER NOT NULL,
    seq      INTEGER NOT NULL,
    state    TEXT NOT NULL DEFAULT 'pending',
    worker   TEXT,
    deadline REAL
);
CREATE INDEX IF NOT EXISTS idx_items_state ON items (state, priority DESC, seq ASC);
"""


@register_backend
class SqliteQueue(WorkQueue):
    """Single-file transactional queue (multi-process work stealing)."""

    name = "sqlite"
    description = (
        "single-file SQLite database, claims in BEGIN IMMEDIATE "
        "transactions; the recommended multi-process backend"
    )
    persistent = True

    def __init__(
        self, path: Union[str, Path], clock: Callable[[], float] = time.time
    ) -> None:
        super().__init__(clock)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        # isolation_level=None: explicit BEGIN IMMEDIATE below; the 30s
        # busy timeout rides out contending claimers instead of raising.
        conn = sqlite3.connect(self.path, timeout=30.0, isolation_level=None)
        try:
            yield conn
            conn.commit()
        finally:
            conn.close()

    # ------------------------------------------------------------------ #
    # WorkQueue interface
    # ------------------------------------------------------------------ #
    def put(self, items: Iterable[WorkItem]) -> int:
        added = 0
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute("SELECT COALESCE(MAX(seq), 0) FROM items").fetchone()
            seq = int(row[0])
            for item in items:
                seq += 1
                cursor = conn.execute(
                    "INSERT OR IGNORE INTO items (key, payload, priority, seq)"
                    " VALUES (?, ?, ?, ?)",
                    (item.key, item.payload, item.priority, seq),
                )
                added += cursor.rowcount
        return added

    def claim(self, worker: str, lease: float = DEFAULT_LEASE) -> Optional[WorkItem]:
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT key, payload, priority, seq FROM items"
                " WHERE state = 'pending'"
                " ORDER BY priority DESC, seq ASC LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            key, payload, priority, seq = row
            conn.execute(
                "UPDATE items SET state = 'claimed', worker = ?, deadline = ?"
                " WHERE key = ?",
                (worker, self._clock() + lease, key),
            )
            return WorkItem(key=key, payload=payload, priority=priority, seq=seq)

    def ack(self, key: str, worker: str) -> bool:
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            cursor = conn.execute(
                "UPDATE items SET state = 'done', worker = NULL, deadline = NULL"
                " WHERE key = ? AND state = 'claimed' AND worker = ?",
                (key, worker),
            )
            return cursor.rowcount == 1

    def reclaim_expired(self) -> int:
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            cursor = conn.execute(
                "UPDATE items SET state = 'pending', worker = NULL, deadline = NULL"
                " WHERE state = 'claimed' AND deadline <= ?",
                (self._clock(),),
            )
            return cursor.rowcount

    def counts(self) -> QueueCounts:
        with self._connect() as conn:
            rows = dict(
                conn.execute(
                    "SELECT state, COUNT(*) FROM items GROUP BY state"
                ).fetchall()
            )
        return QueueCounts(
            rows.get("pending", 0), rows.get("claimed", 0), rows.get("done", 0)
        )
