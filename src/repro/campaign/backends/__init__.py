"""Registered :class:`~repro.campaign.queue.WorkQueue` implementations.

Importing this package registers all three backends:

* ``memory`` — in-process FIFO/priority heap; fastest, not persistent.
* ``directory`` — one JSON file per item, claims via atomic ``os.rename``;
  any process (or NFS-sharing host) pointed at the directory can steal work.
* ``sqlite`` — single-file SQLite database, claims inside ``BEGIN
  IMMEDIATE`` transactions; the recommended multi-process backend.
"""

from repro.campaign.backends.directory import DirectoryQueue
from repro.campaign.backends.memory import MemoryQueue
from repro.campaign.backends.sqlite import SqliteQueue

__all__ = ["DirectoryQueue", "MemoryQueue", "SqliteQueue"]
