"""In-memory work queue: priority heap + lease table, thread-safe.

The local-run backend: no persistence (a killed process loses its queue,
though never its *results* — those live in the store), but exact conformance
semantics, so a campaign developed against ``memory`` behaves identically
on ``directory`` or ``sqlite``.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.campaign.queue import (
    DEFAULT_LEASE,
    QueueCounts,
    WorkItem,
    WorkQueue,
    register_backend,
)


@register_backend
class MemoryQueue(WorkQueue):
    """Heap-ordered in-process queue (higher priority first, FIFO within)."""

    name = "memory"
    description = "in-process FIFO/priority heap; fastest, single-process only"
    persistent = False

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        super().__init__(clock)
        self._lock = threading.Lock()
        #: Live heap entries: ``(-priority, seq, key)``; lazily pruned
        #: against ``_pending`` (claimed items leave stale heap entries).
        self._heap: List[Tuple[int, int, str]] = []
        self._pending: Dict[str, WorkItem] = {}
        #: key -> (item, worker, lease deadline)
        self._claimed: Dict[str, Tuple[WorkItem, str, float]] = {}
        self._done: Dict[str, WorkItem] = {}
        self._seq = 0

    def put(self, items: Iterable[WorkItem]) -> int:
        added = 0
        with self._lock:
            for item in items:
                if (
                    item.key in self._pending
                    or item.key in self._claimed
                    or item.key in self._done
                ):
                    continue
                self._seq += 1
                item = item.with_seq(self._seq)
                self._pending[item.key] = item
                heapq.heappush(self._heap, (-item.priority, item.seq, item.key))
                added += 1
        return added

    def claim(self, worker: str, lease: float = DEFAULT_LEASE) -> Optional[WorkItem]:
        with self._lock:
            while self._heap:
                _, _, key = heapq.heappop(self._heap)
                item = self._pending.pop(key, None)
                if item is None:
                    continue  # stale entry for an already-claimed key
                self._claimed[key] = (item, worker, self._clock() + lease)
                return item
            return None

    def ack(self, key: str, worker: str) -> bool:
        with self._lock:
            entry = self._claimed.get(key)
            if entry is None or entry[1] != worker:
                return False
            item, _, _ = self._claimed.pop(key)
            self._done[key] = item
            return True

    def reclaim_expired(self) -> int:
        now = self._clock()
        moved = 0
        with self._lock:
            for key in [k for k, (_, _, d) in self._claimed.items() if d <= now]:
                item, _, _ = self._claimed.pop(key)
                self._pending[key] = item
                heapq.heappush(self._heap, (-item.priority, item.seq, key))
                moved += 1
        return moved

    def counts(self) -> QueueCounts:
        with self._lock:
            return QueueCounts(len(self._pending), len(self._claimed), len(self._done))
