"""Content-addressed, crash-safe result store (the campaign database).

Each completed experiment persists as one JSON file —
``records/<hh>/<spec_hash>.json``, sharded by the first two hash characters
— wrapping a versioned :class:`~repro.experiment.session.RunRecord`:

.. code-block:: json

    {
      "store_version": 1,
      "cache_version": 6,
      "spec_hash": "3f2a...",
      "checksum": "sha256 of the canonical record JSON",
      "record": { "spec": {...}, "result": {...}, "provenance": {...} }
    }

Guarantees:

* **Atomic writes** — every file is published with write-to-temp +
  ``os.replace`` (:mod:`repro.core.fsutil`), so readers never see a torn
  record no matter when a writer is killed.
* **Integrity on read** — the payload checksum and the spec hash are
  verified against the record content; unparseable or tampered files are
  moved to ``quarantine/`` (never raised through to the caller) and the
  cell simply re-simulates.
* **Incremental invalidation** — records carry the
  :data:`~repro.sim.sweep.SWEEP_CACHE_VERSION` they were computed under; a
  version bump turns older records into misses *in place* (no flag day:
  re-running a campaign recomputes only missing/stale cells and overwrites
  as it goes).
* **Determinism** — record bytes are a pure function of the spec and the
  code version (sorted keys, no timestamps, no worker identity), so stores
  produced by 1 worker and 64 workers are bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.core.fsutil import atomic_write_text
from repro.experiment.session import RunRecord
from repro.experiment.spec import ExperimentSpec
from repro.sim.sweep import SWEEP_CACHE_VERSION
from repro.sim.system import SimulationResult

#: Bump when the store file layout changes incompatibly.
STORE_VERSION = 1

_STORE_DIR_ENV = "REPRO_CAMPAIGN_STORE"


def default_store_dir() -> Path:
    env = os.environ.get(_STORE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "campaigns"


def _canonical(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _checksum(record_dict: Dict[str, Any]) -> str:
    return hashlib.sha256(_canonical(record_dict).encode("utf-8")).hexdigest()


class ResultStore:
    """Versioned :class:`RunRecord` JSONs indexed by canonical spec hash."""

    def __init__(
        self,
        root: Union[str, Path],
        cache_version: int = SWEEP_CACHE_VERSION,
    ) -> None:
        self.root = Path(root)
        self.records_dir = self.root / "records"
        self.quarantine_dir = self.root / "quarantine"
        self.campaigns_dir = self.root / "campaigns"
        self.cache_version = cache_version
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def record_path(self, spec_hash: str) -> Path:
        return self.records_dir / spec_hash[:2] / f"{spec_hash}.json"

    @staticmethod
    def _hash_of(spec_or_hash: Union[str, ExperimentSpec]) -> str:
        if isinstance(spec_or_hash, ExperimentSpec):
            return spec_or_hash.content_hash()
        return spec_or_hash

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def put_record(self, record: RunRecord) -> Path:
        """Persist one record under its spec's content hash (atomic)."""
        spec_hash = record.spec.content_hash()
        record_dict = record.to_dict()
        payload = {
            "store_version": STORE_VERSION,
            "cache_version": self.cache_version,
            "spec_hash": spec_hash,
            "checksum": _checksum(record_dict),
            "record": record_dict,
        }
        return atomic_write_text(
            self.record_path(spec_hash),
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
        )

    def put_result(
        self,
        spec: ExperimentSpec,
        result: SimulationResult,
        provenance: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Wrap a bare result into a :class:`RunRecord` and persist it.

        The default provenance is deterministic (version numbers and the
        spec hash only — no timestamps, hostnames or worker ids), which is
        what makes stores bit-identical across worker counts.
        """
        from repro import __version__

        base = {
            "repro_version": __version__,
            "cache_version": self.cache_version,
            "spec_hash": spec.content_hash(),
        }
        if provenance:
            base.update(provenance)
        return self.put_record(RunRecord(spec=spec, result=result, provenance=base))

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def get_record(
        self, spec_or_hash: Union[str, ExperimentSpec]
    ) -> Optional[RunRecord]:
        """The stored record for a spec (or hash), or ``None``.

        Misses: no file, or a stale ``cache_version`` (left in place — the
        recompute overwrites it).  Corrupt files (truncated JSON, checksum
        or spec-hash mismatch, undecodable record) are quarantined and
        reported as misses.
        """
        spec_hash = self._hash_of(spec_or_hash)
        path = self.record_path(spec_hash)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("record payload is not an object")
        except ValueError:
            self._quarantine(path)
            self.misses += 1
            return None
        if payload.get("cache_version") != self.cache_version:
            # Stale, not corrupt: superseded by a SWEEP_CACHE_VERSION bump
            # (or written by a newer build).  Recomputing overwrites it.
            self.misses += 1
            return None
        record_dict = payload.get("record")
        if (
            not isinstance(record_dict, dict)
            or payload.get("spec_hash") != spec_hash
            or payload.get("checksum") != _checksum(record_dict)
        ):
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            record = RunRecord.from_dict(record_dict)
        except Exception:
            self._quarantine(path)
            self.misses += 1
            return None
        if record.spec.content_hash() != spec_hash:
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return record

    def get_result(self, spec: ExperimentSpec) -> Optional[SimulationResult]:
        """Result-only accessor (the :class:`SweepRunner` delegation hook)."""
        record = self.get_record(spec)
        return record.result if record is not None else None

    def contains(self, spec_or_hash: Union[str, ExperimentSpec]) -> bool:
        """Whether a *fresh, intact* record exists (without hit/miss stats)."""
        hits, misses = self.hits, self.misses
        found = self.get_record(spec_or_hash) is not None
        self.hits, self.misses = hits, misses
        return found

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable record aside (never raise on a bad file)."""
        target = self.quarantine_dir / path.name
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:  # pragma: no cover - racing quarantiner/unlinker
            pass
        self.quarantined += 1

    # ------------------------------------------------------------------ #
    # Queries (the read-only serve/CLI layer)
    # ------------------------------------------------------------------ #
    def iter_spec_hashes(self) -> Iterator[str]:
        if not self.records_dir.is_dir():
            return
        for shard in sorted(self.records_dir.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                yield path.stem

    def iter_records(self) -> Iterator[RunRecord]:
        """Every intact, fresh record in the store (corrupt ones quarantined)."""
        for spec_hash in list(self.iter_spec_hashes()):
            record = self.get_record(spec_hash)
            if record is not None:
                yield record

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_spec_hashes())

    @staticmethod
    def summarize(record: RunRecord) -> Dict[str, Any]:
        """The flat row the query API answers grid queries with."""
        spec, result = record.spec, record.result
        return {
            "spec_hash": record.provenance.get("spec_hash", spec.content_hash()),
            "workload": spec.workload.name,
            "mitigation": spec.mitigation.name,
            "nrh": spec.mitigation.nrh,
            "channels": spec.platform.channel_count,
            "num_requests": spec.workload.num_requests,
            "fidelity": spec.fidelity,
            "ipc": result.ipc,
            "preventive_refreshes": result.preventive_refreshes,
            "secure": result.security_ok,
            "campaign": record.provenance.get("campaign"),
        }

    def query(
        self,
        workload: Optional[str] = None,
        mitigation: Optional[str] = None,
        nrh: Optional[int] = None,
        secure: Optional[bool] = None,
        campaign: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Grid query over record summaries, no simulation involved."""
        rows = []
        for record in self.iter_records():
            if limit is not None and len(rows) >= limit:
                break
            row = self.summarize(record)
            if workload is not None and row["workload"] != workload:
                continue
            if mitigation is not None and row["mitigation"] != mitigation:
                continue
            if nrh is not None and row["nrh"] != nrh:
                continue
            if secure is not None and row["secure"] != secure:
                continue
            if campaign is not None and row["campaign"] != campaign:
                continue
            rows.append(row)
        return rows

    # ------------------------------------------------------------------ #
    # Campaign checkpoints
    # ------------------------------------------------------------------ #
    def save_campaign(self, campaign_id: str, state: Dict[str, Any]) -> Path:
        """Checkpoint a campaign's declarative state (atomic, overwrites)."""
        return atomic_write_text(
            self.campaigns_dir / f"{campaign_id}.json",
            json.dumps(state, sort_keys=True, indent=2) + "\n",
        )

    def load_campaign(self, campaign_id: str) -> Optional[Dict[str, Any]]:
        try:
            text = (self.campaigns_dir / f"{campaign_id}.json").read_text(
                encoding="utf-8"
            )
            return json.loads(text)
        except (OSError, ValueError):
            return None

    def list_campaigns(self) -> List[str]:
        if not self.campaigns_dir.is_dir():
            return []
        return sorted(path.stem for path in self.campaigns_dir.glob("*.json"))


__all__ = ["STORE_VERSION", "ResultStore", "default_store_dir"]
