"""Read-only HTTP JSON API over a :class:`~repro.campaign.store.ResultStore`.

``repro serve --store DIR`` answers spec-hash and grid queries from the
store without ever simulating — the "results database" face of the
campaign subsystem.  Pure stdlib (:mod:`http.server`), threaded, safe to
run against a store that workers are still writing to (records are
published atomically).

Endpoints (all ``GET``, all ``application/json``):

``/health``
    ``{"status": "ok", "records": N, "campaigns": M}``
``/records/<spec_hash>``
    The full stored :class:`~repro.experiment.session.RunRecord` payload.
``/query?workload=&mitigation=&nrh=&secure=&campaign=&limit=``
    Flat summary rows for every matching record (all filters optional).
``/campaigns``
    Checkpointed campaign ids.
``/campaigns/<id>``
    One campaign's checkpoint plus live completed/total progress.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.campaign.runner import status_from_state
from repro.campaign.store import ResultStore

_HASH_CHARS = set("0123456789abcdef")


def _parse_bool(value: str) -> Optional[bool]:
    lowered = value.strip().lower()
    if lowered in ("1", "true", "yes"):
        return True
    if lowered in ("0", "false", "no"):
        return False
    return None


class StoreRequestHandler(BaseHTTPRequestHandler):
    """Routes GETs into store queries; every response is JSON."""

    server: "StoreHTTPServer"

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _send(self, status: int, body: Dict[str, Any]) -> None:
        payload = json.dumps(body, sort_keys=True, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def log_message(self, format: str, *args) -> None:
        if not self.server.quiet:  # pragma: no cover - default is quiet
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        store = self.server.store
        try:
            if parts == ["health"]:
                self._send(
                    200,
                    {
                        "status": "ok",
                        "records": len(store),
                        "campaigns": len(store.list_campaigns()),
                    },
                )
            elif len(parts) == 2 and parts[0] == "records":
                self._get_record(parts[1])
            elif parts == ["query"]:
                self._get_query(parse_qs(url.query))
            elif parts == ["campaigns"]:
                self._send(200, {"campaigns": store.list_campaigns()})
            elif len(parts) == 2 and parts[0] == "campaigns":
                self._get_campaign(parts[1])
            else:
                self._error(404, f"no such endpoint: {url.path}")
        except Exception as exc:  # pragma: no cover - defensive boundary
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _get_record(self, spec_hash: str) -> None:
        if len(spec_hash) != 64 or not set(spec_hash) <= _HASH_CHARS:
            self._error(400, "spec hash must be 64 lowercase hex characters")
            return
        record = self.server.store.get_record(spec_hash)
        if record is None:
            self._error(404, f"no record for spec hash {spec_hash}")
            return
        self._send(200, {"spec_hash": spec_hash, "record": record.to_dict()})

    def _get_query(self, query: Dict[str, list]) -> None:
        def single(name: str) -> Optional[str]:
            values = query.get(name)
            return values[-1] if values else None

        try:
            nrh = int(single("nrh")) if single("nrh") is not None else None
            limit = int(single("limit")) if single("limit") is not None else None
        except ValueError:
            self._error(400, "nrh and limit must be integers")
            return
        secure = _parse_bool(single("secure")) if single("secure") else None
        rows = self.server.store.query(
            workload=single("workload"),
            mitigation=single("mitigation"),
            nrh=nrh,
            secure=secure,
            campaign=single("campaign"),
            limit=limit,
        )
        self._send(200, {"count": len(rows), "results": rows})

    def _get_campaign(self, campaign_id: str) -> None:
        store = self.server.store
        state = store.load_campaign(campaign_id)
        if state is None:
            # Allow unambiguous id prefixes (the CLI prints 12-char ids).
            matches = [c for c in store.list_campaigns() if c.startswith(campaign_id)]
            if len(matches) == 1:
                state = store.load_campaign(matches[0])
        if state is None:
            self._error(404, f"no campaign {campaign_id}")
            return
        status = status_from_state(store, state)
        self._send(
            200,
            {
                "campaign_id": status.campaign_id,
                "name": status.name,
                "total": status.total,
                "completed": status.completed,
                "finished": status.finished,
                "state": state,
            },
        )


class StoreHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the store for its handlers."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: ResultStore,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, StoreRequestHandler)
        self.store = store
        self.quiet = quiet


def make_server(
    store: ResultStore, host: str = "127.0.0.1", port: int = 0, quiet: bool = True
) -> StoreHTTPServer:
    """Bind a server on ``host:port`` (``port=0`` picks a free one).

    The caller drives it: ``serve_forever()`` inline, or in a thread for
    tests (``server.server_address`` reports the bound port).
    """
    return StoreHTTPServer((host, port), store, quiet=quiet)


__all__ = ["StoreHTTPServer", "StoreRequestHandler", "make_server"]
