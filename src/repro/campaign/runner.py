"""The campaign runner: grid -> queue -> workers -> store, resumably.

:class:`CampaignRunner` turns a declarative
:class:`~repro.experiment.spec.CampaignSpec` into work-queue items (one per
grid cell *not already in the store*), drives them through worker processes
and lands every result in the :class:`~repro.campaign.store.ResultStore`.

Crash recovery is layered, and none of it is special-cased:

* a completed cell is a record in the store — ``enqueue()`` skips it
  forever after (that store lookup is the "hit" the resume tests assert);
* an *in-flight* cell belongs to a lease; if the worker dies, the lease
  expires and ``reclaim_expired`` re-issues the cell;
* the campaign's declarative state is checkpointed into the store
  (``campaigns/<id>.json``) at enqueue time, so ``repro campaign status``
  can report progress with nothing but the store directory.

Because execution is deterministic and record bytes carry no timestamps or
worker identity, a campaign finished by one worker is bit-identical to the
same campaign finished by four — or killed halfway and resumed.
"""

from __future__ import annotations

import os
import socket
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.campaign.queue import DEFAULT_LEASE, WorkItem, WorkQueue, create_backend
from repro.campaign.store import ResultStore
from repro.experiment.spec import CampaignSpec, ExperimentSpec
from repro.sim.pool import shared_pool
from repro.sim.system import SimulationResult

#: Campaign checkpoint schema version.
CAMPAIGN_STATE_VERSION = 1


def _execute_payload(payload: str) -> SimulationResult:
    """Worker entry point: canonical spec JSON in, result out."""
    from repro.experiment.execute import execute_spec

    return execute_spec(ExperimentSpec.from_json(payload))


@dataclass(frozen=True)
class CampaignStatus:
    """Progress snapshot: grid totals from the store, liveness from the queue."""

    campaign_id: str
    name: str
    total: int
    completed: int
    pending: int
    claimed: int
    #: Cells actually simulated by the reporting ``run()`` call (0 from
    #: :meth:`CampaignRunner.status`).
    executed: int = 0

    @property
    def remaining(self) -> int:
        return self.total - self.completed

    @property
    def finished(self) -> bool:
        return self.completed >= self.total

    def as_row(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign_id[:12],
            "name": self.name,
            "completed": f"{self.completed}/{self.total}",
            "pending": self.pending,
            "claimed": self.claimed,
            "executed": self.executed,
        }


class CampaignRunner:
    """Expand, enqueue and drain one campaign against a store and a queue.

    Parameters
    ----------
    campaign:
        The declarative grid (+ priority + budget) to run.
    store:
        A :class:`ResultStore` or a path to create one at.
    queue:
        A :class:`WorkQueue` instance, or a registered backend name
        (``memory`` / ``directory`` / ``sqlite``).  Named persistent
        backends default their path to ``<store>/queue`` /
        ``<store>/queue.sqlite``, so one ``--store`` flag is a complete
        campaign address.
    max_workers:
        Worker processes; ``0``/``1`` executes inline, ``None`` uses
        ``os.cpu_count()``.
    lease:
        Seconds a claim is protected before an idle runner may reclaim it.
    budget:
        Overrides the campaign's own ``budget`` (max cells executed by one
        ``run()`` call) when not ``None``.
    """

    def __init__(
        self,
        campaign: CampaignSpec,
        store: Union[ResultStore, str, Path],
        queue: Union[WorkQueue, str] = "memory",
        queue_path: Optional[Union[str, Path]] = None,
        max_workers: Optional[int] = None,
        lease: float = DEFAULT_LEASE,
        budget: Optional[int] = None,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.05,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.campaign = campaign
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.queue = (
            queue
            if isinstance(queue, WorkQueue)
            else self._make_queue(queue, queue_path, clock)
        )
        self.max_workers = (
            (os.cpu_count() or 1) if max_workers is None else max_workers
        )
        self.lease = lease
        self.budget = budget if budget is not None else campaign.budget
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.poll_interval = poll_interval
        self.campaign_id = campaign.campaign_id()

    def _make_queue(
        self,
        name: str,
        queue_path: Optional[Union[str, Path]],
        clock: Callable[[], float],
    ) -> WorkQueue:
        if name == "memory":
            return create_backend(name, clock=clock)
        if queue_path is None:
            queue_path = self.store.root / (
                "queue.sqlite" if name == "sqlite" else "queue"
            )
        return create_backend(name, path=queue_path, clock=clock)

    # ------------------------------------------------------------------ #
    # Enqueue / checkpoint
    # ------------------------------------------------------------------ #
    def enqueue(self) -> Dict[str, int]:
        """Queue every cell missing from the store; checkpoint the campaign.

        Completed cells are detected with a counted store lookup
        (``store.hits`` grows per skip) and never re-enter the queue — the
        zero-recomputation resume guarantee lives here.  ``put`` further
        dedupes against items already pending/claimed from an interrupted
        run, so calling ``enqueue`` repeatedly is idempotent.
        """
        items = []
        complete = 0
        for spec, priority in self.campaign.cells():
            spec_hash = spec.content_hash()
            if self.store.get_record(spec_hash) is not None:
                complete += 1
                continue
            items.append(
                WorkItem(
                    key=spec_hash, payload=spec.canonical_json(), priority=priority
                )
            )
        enqueued = self.queue.put(items)
        self.store.save_campaign(self.campaign_id, self._state())
        return {
            "total": complete + len(items),
            "complete": complete,
            "enqueued": enqueued,
            "already_queued": len(items) - enqueued,
        }

    def _state(self) -> Dict[str, Any]:
        return {
            "state_version": CAMPAIGN_STATE_VERSION,
            "campaign_id": self.campaign_id,
            "campaign": self.campaign.to_dict(),
            "backend": self.queue.name,
            "total": self.campaign.total_cells(),
        }

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self) -> CampaignStatus:
        """Drain the campaign (within budget) and return the final status.

        The loop claims up to ``max_workers`` cells at a time, executes
        them (in-process or in a pool), stores each result and acks its
        claim.  When nothing is claimable but claims are outstanding —
        a previous runner died holding leases — it waits for expiry and
        reclaims.  Returns when the queue is drained or the budget is
        exhausted (in-flight cells always run to completion).
        """
        #: Kept for introspection: how enqueue split the grid this run.
        self.last_enqueue = self.enqueue()
        budget = self.budget
        executed = 0
        inflight: Dict[Future, Tuple[WorkItem, ExperimentSpec]] = {}
        # The shared warm pool (see repro.sim.pool) is reused across runs
        # and runners: workers stay hot, with the registry pre-imported, so
        # short cells stop paying spawn + import per campaign.
        pool = shared_pool(self.max_workers) if self.max_workers > 1 else None
        try:
            while True:
                may_start = budget is None or executed + len(inflight) < budget
                has_slot = pool is None or len(inflight) < self.max_workers
                item = (
                    self.queue.claim(self.worker_id, self.lease)
                    if may_start and has_slot
                    else None
                )
                if item is not None:
                    spec = ExperimentSpec.from_json(item.payload)
                    if pool is None:
                        self._complete(item, spec, _execute_payload(item.payload))
                        executed += 1
                    else:
                        inflight[pool.submit(_execute_payload, item.payload)] = (
                            item,
                            spec,
                        )
                    continue
                if inflight:
                    done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                    for future in done:
                        done_item, spec = inflight.pop(future)
                        self._complete(done_item, spec, future.result())
                        executed += 1
                    continue
                if budget is not None and executed >= budget:
                    break
                counts = self.queue.counts()
                if counts.outstanding == 0:
                    break
                if counts.pending == 0 and self.queue.reclaim_expired() == 0:
                    # Claims held by a dead (or foreign) worker: wait for
                    # their leases to run out, then steal the work back.
                    time.sleep(self.poll_interval)
        finally:
            if inflight:
                # Abandoning mid-run (an exception): let the claimed cells
                # finish in the warm pool — their leases expire and another
                # runner re-executes them — but never kill the shared pool;
                # it stays hot for the next campaign (atexit owns it).
                for future in inflight:
                    future.cancel()
        return self.status(executed=executed)

    def _complete(
        self, item: WorkItem, spec: ExperimentSpec, result: SimulationResult
    ) -> None:
        # Store first, ack second: a crash between the two re-executes the
        # cell (wasted work, same bytes) — the reverse order could ack a
        # cell whose result was never persisted.
        self.store.put_result(
            spec,
            result,
            provenance={
                "campaign": self.campaign_id,
                "campaign_name": self.campaign.name,
            },
        )
        self.queue.ack(item.key, self.worker_id)

    # ------------------------------------------------------------------ #
    # Status
    # ------------------------------------------------------------------ #
    def status(self, executed: int = 0) -> CampaignStatus:
        counts = self.queue.counts()
        completed = sum(
            1 for spec, _ in self.campaign.cells() if self.store.contains(spec)
        )
        return CampaignStatus(
            campaign_id=self.campaign_id,
            name=self.campaign.name,
            total=self.campaign.total_cells(),
            completed=completed,
            pending=counts.pending,
            claimed=counts.claimed,
            executed=executed,
        )


def status_from_state(
    store: ResultStore, state: Dict[str, Any]
) -> CampaignStatus:
    """Progress of a checkpointed campaign, from the store alone.

    Rebuilds the :class:`CampaignSpec` from a ``campaigns/<id>.json``
    checkpoint and counts completed cells against the record files — no
    queue needed, so this works on a store whose runner is long gone.
    """
    campaign = CampaignSpec.from_dict(state["campaign"])
    completed = sum(1 for spec, _ in campaign.cells() if store.contains(spec))
    return CampaignStatus(
        campaign_id=state.get("campaign_id", campaign.campaign_id()),
        name=campaign.name,
        total=campaign.total_cells(),
        completed=completed,
        pending=0,
        claimed=0,
    )


__all__ = [
    "CAMPAIGN_STATE_VERSION",
    "CampaignRunner",
    "CampaignStatus",
    "status_from_state",
]
