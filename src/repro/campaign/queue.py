"""The pluggable work-queue backend interface and its registry.

A campaign is drained through a :class:`WorkQueue`: the runner ``put``\\ s
one :class:`WorkItem` per missing grid cell, any number of workers ``claim``
items under a lease and ``ack`` them once the result is safely in the
:class:`~repro.campaign.store.ResultStore`.  A worker that dies mid-cell
simply lets its lease expire; ``reclaim_expired`` returns the item to the
pending set and another worker re-executes it (results are deterministic,
so re-execution is always safe — at-least-once delivery is the contract,
exactly-once *storage* comes from the store's content addressing).

Backends register under a short name (``memory`` / ``directory`` /
``sqlite``) via :func:`register_backend` and are constructed through
:func:`create_backend` — the frontera pattern: one interface, many
interchangeable implementations, one shared conformance suite
(``tests/test_campaign_queue.py``) that every backend must pass.

Ordering contract (shared by every backend):

* higher ``priority`` first;
* FIFO within a priority class (enqueue order, tracked by a per-queue
  monotonic sequence number);
* ``put`` deduplicates by ``key`` against pending, claimed *and* done
  items, so re-enqueueing a half-finished campaign is idempotent.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Type

#: Default lease duration (seconds) a claimed item is protected for.
DEFAULT_LEASE = 60.0


@dataclass(frozen=True)
class WorkItem:
    """One unit of campaign work: a spec hash plus its canonical payload.

    ``key`` is the cell's canonical spec hash (unique per experiment),
    ``payload`` the canonical spec JSON a worker re-materializes the
    :class:`~repro.experiment.spec.ExperimentSpec` from.  ``seq`` is
    assigned by the queue at ``put`` time and orders items within a
    priority class; callers leave it at the default.
    """

    key: str
    payload: str
    priority: int = 0
    seq: int = -1

    def with_seq(self, seq: int) -> "WorkItem":
        return replace(self, seq=seq)


class QueueCounts(NamedTuple):
    """Point-in-time population of a queue, by item state."""

    pending: int
    claimed: int
    done: int

    @property
    def outstanding(self) -> int:
        """Items not yet acked (the campaign is finished when this is 0)."""
        return self.pending + self.claimed


class WorkQueue(abc.ABC):
    """Abstract claim/ack work queue with lease-based crash recovery.

    Subclasses set the class attributes (``name`` registers the backend,
    ``persistent`` says whether items survive process death — the
    multi-process backends) and implement the five primitives.  ``clock``
    is injectable so lease expiry is testable without sleeping.
    """

    #: Registry name (e.g. ``"memory"``); set by subclasses.
    name: str = ""
    #: One-line description for the ``repro list`` catalog.
    description: str = ""
    #: Whether queue contents survive process death (multi-process safe).
    persistent: bool = False

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self._clock = clock

    # ------------------------------------------------------------------ #
    # Primitives every backend implements
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def put(self, items: Iterable[WorkItem]) -> int:
        """Enqueue items, deduplicating by key; returns how many were new."""

    @abc.abstractmethod
    def claim(
        self, worker: str, lease: float = DEFAULT_LEASE
    ) -> Optional[WorkItem]:
        """Atomically claim the best pending item for ``worker`` (or None).

        The claim is protected until ``clock() + lease``; the worker must
        ``ack`` (or the lease expire) before the item moves again.  No two
        concurrent claimers ever receive the same item.
        """

    @abc.abstractmethod
    def ack(self, key: str, worker: str) -> bool:
        """Mark a claimed item done.  Only the current lease holder may ack;
        returns False (and changes nothing) for stale workers whose lease
        was reclaimed and re-issued."""

    @abc.abstractmethod
    def reclaim_expired(self) -> int:
        """Return expired-lease items to pending; returns how many moved."""

    @abc.abstractmethod
    def counts(self) -> QueueCounts:
        """Current pending/claimed/done populations."""

    # ------------------------------------------------------------------ #
    # Conveniences
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.counts().pending

    @staticmethod
    def order_key(item: WorkItem) -> tuple:
        """Sort key implementing the shared ordering contract."""
        return (-item.priority, item.seq)


# --------------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------------- #
_BACKENDS: Dict[str, Type[WorkQueue]] = {}


def register_backend(cls: Type[WorkQueue]) -> Type[WorkQueue]:
    """Class decorator registering a :class:`WorkQueue` implementation."""
    if not cls.name:
        raise ValueError(f"backend {cls.__name__} must set a registry name")
    if cls.name in _BACKENDS:
        raise ValueError(f"queue backend {cls.name!r} is already registered")
    _BACKENDS[cls.name] = cls
    return cls


def queue_backend_names() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def queue_backend_catalog() -> List[Dict[str, object]]:
    """One catalog row per backend (the ``repro list`` section)."""
    return [
        {
            "backend": name,
            "persistent": _BACKENDS[name].persistent,
            "description": _BACKENDS[name].description,
        }
        for name in queue_backend_names()
    ]


def create_backend(name: str, **kwargs) -> WorkQueue:
    """Instantiate a registered backend by name.

    ``kwargs`` are forwarded to the backend constructor (``path`` for the
    persistent backends, ``clock`` everywhere).
    """
    try:
        cls = _BACKENDS[name]
    except KeyError:
        known = ", ".join(queue_backend_names())
        raise KeyError(
            f"unknown queue backend {name!r}; registered backends: {known}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "DEFAULT_LEASE",
    "QueueCounts",
    "WorkItem",
    "WorkQueue",
    "create_backend",
    "queue_backend_catalog",
    "queue_backend_names",
    "register_backend",
]
