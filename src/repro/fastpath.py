"""Global switch for the accelerated simulation hot path.

The simulator ships two functionally identical hot paths:

* the **legacy path** — per-event controller rescheduling in
  :class:`~repro.sim.engine.EventKernel` and the generic per-policy bank
  scan in :class:`~repro.controller.controller.MemoryController`; and
* the **fast path** — the "untouched channel" decision-cache skip in the
  kernel plus the struct-of-arrays FR-FCFS bank scan, which avoid most of
  the per-event Python dispatch.

Both paths are bit-identical (pinned by ``tests/golden/`` and by
``tests/test_fastpath_identity.py``); the only reason the legacy path
survives is measurement: ``benchmarks/test_micro_kernel_e2e.py`` builds one
system per path *in the same process* and reports the whole-run speedup in
``benchmarks/results/BENCH_kernel.json``.

The switch is read at component *construction* time (controller ``__init__``
and kernel ``__init__``), so toggling it never changes the behaviour of a
system that already exists.  Set the environment variable
``REPRO_FASTPATH=0`` to build legacy-path systems globally (e.g. to bisect a
suspected fast-path divergence), or use :func:`forced` for scoped toggling.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_enabled: bool = os.environ.get("REPRO_FASTPATH", "1") != "0"


def enabled() -> bool:
    """True when newly built systems should use the accelerated hot path."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Set the switch; returns the previous value (for manual save/restore)."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextmanager
def forced(flag: bool):
    """Scope the switch to ``flag``; systems built inside use that path."""
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)
