"""repro: a full Python reproduction of CoMeT (HPCA 2024).

CoMeT is a low-cost RowHammer mitigation that tracks DRAM row activations
with a Count-Min Sketch (the Counter Table) backed by a small table of
per-row counters for recently identified aggressor rows (the Recent
Aggressor Table).  This package reproduces the mechanism and the entire
evaluation stack the paper builds it on:

* :mod:`repro.core` — the CoMeT mechanism itself.
* :mod:`repro.sketch` — Count-Min Sketch / counting Bloom filter /
  Misra-Gries substrates.
* :mod:`repro.dram`, :mod:`repro.controller`, :mod:`repro.cpu` — the DDR4
  device model, FR-FCFS memory controller and trace-driven cores (the
  Ramulator substitute).
* :mod:`repro.mitigations` — the comparison points: PARA, Graphene, Hydra,
  REGA, BlockHammer and the unprotected baseline.
* :mod:`repro.energy`, :mod:`repro.area` — DRAMPower- and CACTI-style models.
* :mod:`repro.workloads` — the synthetic 61-workload suite and attack traces.
* :mod:`repro.sim`, :mod:`repro.analysis` — system assembly, experiment
  runners, metrics, the security verifier and tracker analysis.
* :mod:`repro.experiment` — the declarative experiment API: typed,
  JSON-round-trippable specs, component registries and the Session facade
  every entry point (CLI, examples, benchmarks, sweeps) shares.
* :mod:`repro.security` — adversarial attack synthesis (fuzzed, sketch-aware,
  refresh-straddling and multi-channel patterns) and spec-driven security
  audit campaigns reducing to :class:`~repro.security.audit.SecurityReport`.

Quickstart::

    from repro import ExperimentSpec, ExperimentWorkloadSpec, MitigationSpec, Session

    record = Session().run(
        ExperimentSpec(
            workload=ExperimentWorkloadSpec(name="429.mcf", num_requests=5000),
            mitigation=MitigationSpec(name="comet", nrh=1000),
        )
    )
    print(record.result.summary())
"""

from repro.core import CoMeT, CoMeTConfig, CounterTable, RecentAggressorTable
from repro.dram import DRAMConfig
from repro.mitigations import (
    BlockHammer,
    Graphene,
    Hydra,
    NoMitigation,
    PARA,
    REGA,
)
from repro.sim import (
    System,
    SystemConfig,
    SimulationResult,
    run_single_core,
    run_multi_core,
    compare_single_core,
    normalized_ipc,
)
from repro.sim.runner import default_experiment_config, build_mitigation
from repro.experiment import (
    ExperimentSpec,
    MitigationSpec,
    PlatformSpec,
    RunRecord,
    Session,
    expand_grid,
)
from repro.experiment.spec import WorkloadSpec as ExperimentWorkloadSpec
from repro.security import SecurityReport, run_audit
from repro.workloads import (
    WORKLOAD_SUITE,
    build_trace,
    build_multicore_traces,
    workload_names,
    traditional_rowhammer_attack,
)

__version__ = "1.0.0"

__all__ = [
    "CoMeT",
    "CoMeTConfig",
    "CounterTable",
    "RecentAggressorTable",
    "DRAMConfig",
    "NoMitigation",
    "PARA",
    "Graphene",
    "Hydra",
    "REGA",
    "BlockHammer",
    "System",
    "SystemConfig",
    "SimulationResult",
    "run_single_core",
    "run_multi_core",
    "compare_single_core",
    "normalized_ipc",
    "default_experiment_config",
    "build_mitigation",
    "ExperimentSpec",
    "ExperimentWorkloadSpec",
    "MitigationSpec",
    "PlatformSpec",
    "Session",
    "RunRecord",
    "expand_grid",
    "SecurityReport",
    "run_audit",
    "WORKLOAD_SUITE",
    "build_trace",
    "build_multicore_traces",
    "workload_names",
    "traditional_rowhammer_attack",
    "__version__",
]
