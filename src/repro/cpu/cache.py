"""Last-level cache model.

A set-associative, write-back, write-allocate cache with true LRU replacement.
The simulated system of Table 2 uses an 8 MiB LLC for single-core runs and a
16 MiB shared LLC for 8-core runs; :func:`CacheConfig.paper_single_core` and
:func:`CacheConfig.paper_multi_core` build those configurations.

Workload generators may emit either LLC-miss traces (addresses already
filtered, the common case for the benchmark harnesses, mirroring Ramulator
DRAM traces) or CPU-level traces; in the latter case a core is configured
with a cache and only misses and dirty evictions reach the memory controller.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a cache."""

    size_bytes: int = 8 * 1024 * 1024
    associativity: int = 16
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError("cache size must be divisible by associativity * line size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    @classmethod
    def paper_single_core(cls) -> "CacheConfig":
        """8 MiB LLC (Table 2, single-core)."""
        return cls(size_bytes=8 * 1024 * 1024)

    @classmethod
    def paper_multi_core(cls) -> "CacheConfig":
        """16 MiB shared LLC (Table 2, 8-core)."""
        return cls(size_bytes=16 * 1024 * 1024)


@dataclass
class CacheStatistics:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


@dataclass
class AccessResult:
    """Outcome of a cache access."""

    hit: bool
    fill_address: Optional[int] = None
    writeback_address: Optional[int] = None


class LastLevelCache:
    """Set-associative write-back LLC with LRU replacement."""

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        # Each set is an OrderedDict tag -> dirty flag, ordered LRU -> MRU.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.config.num_sets)]
        self.stats = CacheStatistics()

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def _index_and_tag(self, address: int) -> Tuple[int, int]:
        line = address // self.config.line_bytes
        return line % self.config.num_sets, line // self.config.num_sets

    def _line_address(self, set_index: int, tag: int) -> int:
        return (tag * self.config.num_sets + set_index) * self.config.line_bytes

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Perform an access; report whether it hit and what traffic it generates.

        On a miss the returned :class:`AccessResult` carries the cache-line
        address to fetch from DRAM (``fill_address``) and, if a dirty line was
        evicted, the line address to write back (``writeback_address``).
        """
        self.stats.accesses += 1
        set_index, tag = self._index_and_tag(address)
        ways = self._sets[set_index]
        if tag in ways:
            self.stats.hits += 1
            dirty = ways.pop(tag)
            ways[tag] = dirty or is_write
            return AccessResult(hit=True)

        self.stats.misses += 1
        writeback_address = None
        if len(ways) >= self.config.associativity:
            victim_tag, victim_dirty = ways.popitem(last=False)
            if victim_dirty:
                self.stats.writebacks += 1
                writeback_address = self._line_address(set_index, victim_tag)
        ways[tag] = is_write
        fill_address = self._line_address(set_index, tag)
        return AccessResult(
            hit=False, fill_address=fill_address, writeback_address=writeback_address
        )

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Plain-data checkpoint: per-set (tag, dirty) pairs in LRU order."""
        return {
            "sets": [list(ways.items()) for ways in self._sets],
            "stats": dict(vars(self.stats)),
        }

    def restore(self, state: dict) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        self._sets = [OrderedDict(pairs) for pairs in state["sets"]]
        for key, value in state["stats"].items():
            setattr(self.stats, key, value)

    def contains(self, address: int) -> bool:
        set_index, tag = self._index_and_tag(address)
        return tag in self._sets[set_index]

    def flush(self) -> List[int]:
        """Evict everything; returns the addresses of dirty lines written back."""
        writebacks = []
        for set_index, ways in enumerate(self._sets):
            for tag, dirty in ways.items():
                if dirty:
                    writebacks.append(self._line_address(set_index, tag))
            ways.clear()
        self.stats.writebacks += len(writebacks)
        return writebacks

    @property
    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)
