"""Trace-driven core model.

The core replays a :class:`~repro.cpu.trace.Trace` against the memory system.
It models the performance-relevant features of the 4-wide, 128-entry-window
out-of-order core of Table 2 without simulating individual instructions:

* non-memory instructions retire at ``width`` per CPU cycle;
* memory reads (LLC misses) occupy the instruction window until their data
  returns, and at most ``max_outstanding_reads`` reads may be in flight, so
  long DRAM latencies stall the core exactly the way a full window would;
* writes are posted (they never stall retirement unless the controller's
  write queue is full).

The core runs in memory-controller clock cycles (``cpu_to_mem_ratio`` CPU
cycles per memory cycle) because the rest of the simulator is event-driven in
that clock domain.  IPC is reported in CPU cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from repro.controller.controller import MemoryController
from repro.controller.policies import NEVER
from repro.controller.request import MemoryRequest, RequestType
from repro.cpu.cache import LastLevelCache
from repro.cpu.trace import Trace
from repro.dram.address import AddressMapper


@dataclass(frozen=True)
class CoreConfig:
    """Core microarchitecture parameters (defaults follow Table 2)."""

    width: int = 4
    window_size: int = 128
    cpu_to_mem_ratio: float = 3.0
    max_outstanding_reads: int = 8

    @property
    def issue_rate_per_mem_cycle(self) -> float:
        """Instructions the core can dispatch per memory-controller cycle."""
        return self.width * self.cpu_to_mem_ratio


@dataclass
class _OutstandingRead:
    """Book-keeping for one in-flight read."""

    dispatched_instructions: int
    completion_cycle: Optional[float] = None


@dataclass
class CoreStatistics:
    retired_instructions: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    stall_events: int = 0
    finish_cycle: float = 0.0


class Core:
    """One trace-driven core attached to a shared memory controller."""

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        controller: MemoryController,
        config: Optional[CoreConfig] = None,
        cache: Optional[LastLevelCache] = None,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.controller = controller
        self.config = config or CoreConfig()
        self.cache = cache
        self.mapper: AddressMapper = controller.mapper
        self.stats = CoreStatistics()

        self._cursor = 0
        self._front_cycle = 0.0
        self._dispatched_instructions = 0
        self._outstanding: List[_OutstandingRead] = []
        self._blocked_on_queue: Optional[MemoryRequest] = None
        self._last_completion_cycle = 0.0
        self._trace_exhausted = len(trace) == 0
        #: Trace-index budget for sampled simulation: when set, the core acts
        #: exhausted once ``_cursor`` reaches it (outstanding reads still
        #: drain), letting the event kernel run one detailed window and stop.
        #: ``None`` (the default) is bit-identical to the unbounded core.
        self.window_limit: Optional[int] = None
        #: Set by the event kernel; called whenever a state change may move
        #: this core's next event earlier (a read completion arriving).
        self.kernel_wakeup: Optional[Callable[[], None]] = None
        #: Memo for :meth:`_dispatch_cycle_for_next_entry`: the event kernel
        #: asks for the next event cycle more than once between state
        #: changes (once to schedule, again after unrelated controllers
        #: advance), and the answer only moves when this core steps or a
        #: read completes — the two sites that clear the memo.
        self._dispatch_memo: Optional[Union[int, float]] = None

    # ------------------------------------------------------------------ #
    # Scheduling interface used by the system simulation
    # ------------------------------------------------------------------ #
    @property
    def _at_window_limit(self) -> bool:
        return self.window_limit is not None and self._cursor >= self.window_limit

    @property
    def finished(self) -> bool:
        return (
            (self._trace_exhausted or self._at_window_limit)
            and not self._outstanding
            and self._blocked_on_queue is None
        )

    def next_event_cycle(self) -> Union[int, float]:
        """Cycle at which the core next wants to act.

        Returns :data:`~repro.controller.policies.NEVER` (the typed integer
        sentinel, not ``float("inf")``) while the core waits on memory, so
        callers comparing against cycle counters stay in integer arithmetic.
        """
        if self.finished:
            return NEVER
        if self._blocked_on_queue is not None:
            return NEVER
        if self._trace_exhausted or self._at_window_limit:
            return NEVER
        memo = self._dispatch_memo
        if memo is not None:
            return memo
        memo = self._dispatch_cycle_for_next_entry()
        self._dispatch_memo = memo
        return memo

    def step(self, cycle: float) -> None:
        """Process the next trace entry at ``cycle`` (== :meth:`next_event_cycle`)."""
        self._dispatch_memo = None
        if self._blocked_on_queue is not None:
            self._retry_blocked_request(cycle)
            return
        if self._trace_exhausted or self._at_window_limit:
            return
        entry = self.trace[self._cursor]
        self._retire_completed(cycle)
        self._issue_entry(cycle, entry)
        self._cursor += 1
        self._dispatched_instructions += entry.bubble_count + 1
        self.stats.retired_instructions = self._dispatched_instructions
        self._front_cycle = cycle
        if self._cursor >= len(self.trace):
            self._trace_exhausted = True

    # ------------------------------------------------------------------ #
    # Internal mechanics
    # ------------------------------------------------------------------ #
    def _dispatch_cycle_for_next_entry(self) -> Union[int, float]:
        entry = self.trace[self._cursor]
        candidate = self._front_cycle + entry.bubble_count / self.config.issue_rate_per_mem_cycle
        outstanding = list(self._outstanding)
        while True:
            outstanding = [
                read
                for read in outstanding
                if read.completion_cycle is None or read.completion_cycle > candidate
            ]
            if self._constraints_ok(outstanding, entry.bubble_count + 1):
                return candidate
            oldest = outstanding[0]
            if oldest.completion_cycle is None:
                # Blocked on a read whose completion time the controller has
                # not determined yet; the completion callback will wake us.
                return NEVER
            candidate = max(candidate, oldest.completion_cycle)
            outstanding.pop(0)

    def _constraints_ok(self, outstanding: List[_OutstandingRead], new_instructions: int) -> bool:
        if len(outstanding) >= self.config.max_outstanding_reads:
            return False
        if outstanding:
            window_usage = (
                self._dispatched_instructions
                + new_instructions
                - outstanding[0].dispatched_instructions
            )
            if window_usage > self.config.window_size:
                return False
        return True

    def _retire_completed(self, cycle: float) -> None:
        """Retire in program order every read whose data has arrived by ``cycle``."""
        while self._outstanding:
            oldest = self._outstanding[0]
            if oldest.completion_cycle is not None and oldest.completion_cycle <= cycle:
                self._outstanding.pop(0)
            else:
                break

    def _issue_entry(self, cycle: float, entry) -> None:
        address = entry.address
        is_write = entry.is_write
        if self.cache is not None:
            result = self.cache.access(address, is_write=is_write)
            if result.hit:
                self.stats.llc_hits += 1
                return
            self.stats.llc_misses += 1
            if result.writeback_address is not None:
                self._send_write(result.writeback_address, cycle)
            # The demand access becomes a fill (read) regardless of r/w; a
            # write miss allocates the line and dirties it in the cache.
            self._send_read(result.fill_address, cycle)
            return
        if is_write:
            self._send_write(address, cycle)
        else:
            self._send_read(address, cycle)

    def _send_read(self, address: int, cycle: float) -> None:
        record = _OutstandingRead(dispatched_instructions=self._dispatched_instructions)
        self._outstanding.append(record)
        request = MemoryRequest(
            request_type=RequestType.READ,
            address=self.mapper.decode(address),
            physical_address=address,
            core_id=self.core_id,
            on_complete=lambda req, done, rec=record: self._on_read_complete(rec, done),
        )
        self.stats.memory_reads += 1
        if not self.controller.enqueue(request, int(cycle)):
            self._blocked_on_queue = request
            self.stats.stall_events += 1

    def _send_write(self, address: int, cycle: float) -> None:
        request = MemoryRequest(
            request_type=RequestType.WRITE,
            address=self.mapper.decode(address),
            physical_address=address,
            core_id=self.core_id,
        )
        self.stats.memory_writes += 1
        if not self.controller.enqueue(request, int(cycle)):
            self._blocked_on_queue = request
            self.stats.stall_events += 1

    def _on_read_complete(self, record: _OutstandingRead, cycle: int) -> None:
        self._dispatch_memo = None
        record.completion_cycle = float(cycle)
        self._last_completion_cycle = max(self._last_completion_cycle, float(cycle))
        self.stats.finish_cycle = max(self.stats.finish_cycle, float(cycle))
        # Drop completed reads from the head so `finished` becomes observable.
        self._retire_completed(float(cycle))
        if self.kernel_wakeup is not None:
            self.kernel_wakeup()

    def _retry_blocked_request(self, cycle: float) -> None:
        request = self._blocked_on_queue
        if request is None:
            return
        if self.controller.enqueue(request, int(cycle)):
            self._blocked_on_queue = None
            self._front_cycle = max(self._front_cycle, cycle)
            self._dispatch_memo = None

    def retry_blocked(self, cycle: float) -> bool:
        """Retry a request rejected on a full queue; True when it got enqueued."""
        self._retry_blocked_request(cycle)
        return self._blocked_on_queue is None

    @property
    def has_blocked_request(self) -> bool:
        return self._blocked_on_queue is not None

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Plain-data checkpoint; valid only at a drained point.

        Outstanding reads and queue-blocked requests hold completion closures
        that cannot round-trip through plain data, so checkpoints are taken
        between detailed windows, after the event kernel ran the system to
        quiescence.
        """
        if self._outstanding or self._blocked_on_queue is not None:
            raise RuntimeError(
                "Core.snapshot() requires a drained core (no in-flight reads)"
            )
        return {
            "cursor": self._cursor,
            "front_cycle": self._front_cycle,
            "dispatched_instructions": self._dispatched_instructions,
            "last_completion_cycle": self._last_completion_cycle,
            "trace_exhausted": self._trace_exhausted,
            "stats": dict(vars(self.stats)),
        }

    def restore(self, state: dict) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        self._cursor = state["cursor"]
        self._front_cycle = state["front_cycle"]
        self._dispatched_instructions = state["dispatched_instructions"]
        self._last_completion_cycle = state["last_completion_cycle"]
        self._trace_exhausted = state["trace_exhausted"]
        self._outstanding = []
        self._blocked_on_queue = None
        self._dispatch_memo = None
        for key, value in state["stats"].items():
            setattr(self.stats, key, value)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def completion_cycle(self) -> float:
        """Memory cycle at which the core finished its trace (valid when finished)."""
        return max(self._front_cycle, self._last_completion_cycle)

    def instructions_per_cycle(self) -> float:
        """IPC in CPU cycles (the metric every performance figure reports)."""
        cycles = self.completion_cycle() * self.config.cpu_to_mem_ratio
        if cycles <= 0:
            return 0.0
        return self.stats.retired_instructions / cycles
