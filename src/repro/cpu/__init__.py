"""Trace-driven processor model.

The paper drives Ramulator with SimPoint traces of the form
``<number of non-memory instructions, memory address>``.  This subpackage
provides the same abstraction:

* :class:`~repro.cpu.trace.Trace` / :class:`~repro.cpu.trace.TraceEntry` —
  the trace format, with readers/writers and statistics (RBMPKI estimation).
* :class:`~repro.cpu.cache.LastLevelCache` — a set-associative write-back LLC
  that filters core accesses into DRAM requests (8 MiB single-core / 16 MiB
  8-core, per Table 2).
* :class:`~repro.cpu.core.Core` — a 4-wide, 128-entry-window trace-driven
  core whose IPC responds to memory latency, the quantity every performance
  figure in the paper is built on.
"""

from repro.cpu.trace import Trace, TraceEntry, TraceStatistics
from repro.cpu.cache import LastLevelCache, CacheConfig
from repro.cpu.core import Core, CoreConfig

__all__ = [
    "Trace",
    "TraceEntry",
    "TraceStatistics",
    "LastLevelCache",
    "CacheConfig",
    "Core",
    "CoreConfig",
]
