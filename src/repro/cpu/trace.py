"""Memory access traces.

A trace is an ordered sequence of :class:`TraceEntry` records, each meaning
"execute ``bubble_count`` non-memory instructions, then perform one memory
access to ``address``".  This is the same abstraction Ramulator's CPU traces
use and is what the workload generators in :mod:`repro.workloads` produce.

Traces can be saved to / loaded from a simple text format (one entry per
line: ``bubble_count address [W]``) so that generated workloads can be
inspected and reused across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union


@dataclass(frozen=True)
class TraceEntry:
    """One trace record: ``bubble_count`` compute instructions then a memory access."""

    bubble_count: int
    address: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.bubble_count < 0:
            raise ValueError("bubble_count must be non-negative")
        if self.address < 0:
            raise ValueError("address must be non-negative")


@dataclass
class TraceStatistics:
    """Summary statistics of a trace (used to characterize workloads)."""

    num_entries: int
    total_instructions: int
    num_reads: int
    num_writes: int
    unique_addresses: int

    @property
    def accesses_per_kilo_instruction(self) -> float:
        """Memory accesses per thousand instructions (APKI ~ RBMPKI upper bound)."""
        if self.total_instructions == 0:
            return 0.0
        return 1000.0 * self.num_entries / self.total_instructions


class Trace:
    """An in-memory trace with iteration, slicing, repetition and file I/O."""

    def __init__(self, entries: Optional[Sequence[TraceEntry]] = None, name: str = "trace") -> None:
        self.entries: List[TraceEntry] = list(entries or [])
        self.name = name

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tuples(
        cls,
        tuples: Iterable[Union[tuple, TraceEntry]],
        name: str = "trace",
    ) -> "Trace":
        """Build a trace from ``(bubble_count, address[, is_write])`` tuples."""
        entries = []
        for item in tuples:
            if isinstance(item, TraceEntry):
                entries.append(item)
            else:
                bubble, address = item[0], item[1]
                is_write = bool(item[2]) if len(item) > 2 else False
                entries.append(TraceEntry(bubble, address, is_write))
        return cls(entries, name=name)

    def append(self, entry: TraceEntry) -> None:
        self.entries.append(entry)

    def extend(self, entries: Iterable[TraceEntry]) -> None:
        self.entries.extend(entries)

    def repeated(self, times: int) -> "Trace":
        """A new trace consisting of this trace repeated ``times`` times."""
        if times < 1:
            raise ValueError("times must be at least 1")
        return Trace(self.entries * times, name=f"{self.name}x{times}")

    def truncated(self, max_entries: int) -> "Trace":
        """A new trace containing at most ``max_entries`` entries."""
        return Trace(self.entries[:max_entries], name=self.name)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __getitem__(self, index):
        return self.entries[index]

    @property
    def total_instructions(self) -> int:
        """Total instruction count: bubbles plus one instruction per memory access."""
        return sum(entry.bubble_count + 1 for entry in self.entries)

    def statistics(self) -> TraceStatistics:
        reads = sum(1 for entry in self.entries if not entry.is_write)
        writes = len(self.entries) - reads
        unique = len({entry.address for entry in self.entries})
        return TraceStatistics(
            num_entries=len(self.entries),
            total_instructions=self.total_instructions,
            num_reads=reads,
            num_writes=writes,
            unique_addresses=unique,
        )

    # ------------------------------------------------------------------ #
    # File I/O
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as ``bubble_count address [W]`` lines."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for entry in self.entries:
                suffix = " W" if entry.is_write else ""
                handle.write(f"{entry.bubble_count} {entry.address:#x}{suffix}\n")

    @classmethod
    def load(cls, path: Union[str, Path], name: Optional[str] = None) -> "Trace":
        """Read a trace written by :meth:`save`."""
        path = Path(path)
        entries = []
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) < 2:
                    raise ValueError(f"{path}:{line_number}: malformed trace line {line!r}")
                bubble = int(parts[0])
                address = int(parts[1], 0)
                is_write = len(parts) > 2 and parts[2].upper() == "W"
                entries.append(TraceEntry(bubble, address, is_write))
        return cls(entries, name=name or path.stem)
