"""DRAM energy accounting.

The model charges energy per DRAM command using the parameters in
:class:`~repro.energy.params.DDR4EnergyParameters` plus a background term
proportional to the execution time, the same structure DRAMPower uses.  The
inputs are the command counts collected by the
:class:`~repro.dram.dram_system.DRAMSystem` statistics and the total
execution time, so the model can be applied to any finished simulation.

The quantities the paper reports (Figures 11, 14, 15) are DRAM energies
normalized to the unprotected baseline; the breakdown also separates the
energy attributable to preventive refreshes so the mechanism-induced overhead
can be inspected directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dram.dram_system import DRAMStatistics
from repro.energy.params import DDR4EnergyParameters


@dataclass
class EnergyBreakdown:
    """DRAM energy, in nanojoules, split by source.

    The DDR5-era terms (``rfm_nj``, ``in_dram_refresh_nj``,
    ``counter_nj``) default to zero and only appear in :meth:`as_dict`
    when nonzero, so runs that never issue an RFM or update a PRAC
    counter serialize exactly as before.
    """

    activation_nj: float
    read_nj: float
    write_nj: float
    refresh_nj: float
    background_nj: float
    preventive_nj: float
    #: RFM (Refresh Management) command energy.
    rfm_nj: float = 0.0
    #: In-DRAM victim-row refreshes (ABO recovery, RFM service, Hydra rows).
    in_dram_refresh_nj: float = 0.0
    #: In-DRAM per-row activation-counter updates (PRAC).
    counter_nj: float = 0.0

    @property
    def total_nj(self) -> float:
        return (
            self.activation_nj
            + self.read_nj
            + self.write_nj
            + self.refresh_nj
            + self.background_nj
            + self.rfm_nj
            + self.in_dram_refresh_nj
            + self.counter_nj
        )

    @property
    def total_mj(self) -> float:
        return self.total_nj * 1e-6

    def as_dict(self) -> Dict[str, float]:
        data = {
            "activation_nj": self.activation_nj,
            "read_nj": self.read_nj,
            "write_nj": self.write_nj,
            "refresh_nj": self.refresh_nj,
            "background_nj": self.background_nj,
            "preventive_nj": self.preventive_nj,
            "total_nj": self.total_nj,
        }
        if self.rfm_nj:
            data["rfm_nj"] = self.rfm_nj
        if self.in_dram_refresh_nj:
            data["in_dram_refresh_nj"] = self.in_dram_refresh_nj
        if self.counter_nj:
            data["counter_nj"] = self.counter_nj
        return data


class DRAMEnergyModel:
    """Computes DRAM energy from command counts and execution time."""

    def __init__(
        self,
        parameters: Optional[DDR4EnergyParameters] = None,
        num_ranks: int = 2,
    ) -> None:
        self.parameters = parameters or DDR4EnergyParameters()
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self.num_ranks = num_ranks

    def energy(
        self,
        stats: DRAMStatistics,
        total_cycles: int,
        rows_per_refresh: Optional[int] = None,
    ) -> EnergyBreakdown:
        """Energy for a finished simulation.

        ``stats`` are the DRAM command counts; ``total_cycles`` is the
        execution time in DRAM clock cycles (background energy accrues on
        every rank for the whole run).

        ``rows_per_refresh`` is the all-bank row coverage the 28 nJ
        ``refresh_energy_nj`` calibration assumes.  When given (and the
        run tracked ``refresh_rows``), each REF is charged by the rows it
        actually covered — fine-granularity refresh issues REF 2x/4x as
        often with each covering proportionally fewer rows, so total
        refresh energy stays granularity-invariant instead of being
        overcharged 2-4x.  Without it the legacy flat per-REF charge
        applies (all-bank REFs make the two formulas agree exactly).
        """
        params = self.parameters
        # Every ACT is eventually paired with a PRE; charging per ACT keeps
        # the accounting simple and symmetric with DRAMPower.
        activation_nj = stats.acts * params.act_pre_energy_nj
        read_nj = stats.reads * params.read_energy_nj
        write_nj = stats.writes * params.write_energy_nj
        refresh_rows = getattr(stats, "refresh_rows", 0)
        if rows_per_refresh and refresh_rows > 0:
            refresh_nj = (refresh_rows / rows_per_refresh) * params.refresh_energy_nj
        else:
            refresh_nj = stats.refreshes * params.refresh_energy_nj
        background_nj = self.num_ranks * params.background_energy_nj(total_cycles)
        preventive_nj = stats.preventive_acts * params.act_pre_energy_nj
        rfm_nj = getattr(stats, "rfms", 0) * params.rfm_energy_nj
        in_dram_refresh_nj = (
            getattr(stats, "in_dram_refresh_rows", 0) * params.row_refresh_energy_nj
        )
        counter_nj = (
            getattr(stats, "counter_updates", 0) * params.counter_update_energy_nj
        )
        return EnergyBreakdown(
            activation_nj=activation_nj,
            read_nj=read_nj,
            write_nj=write_nj,
            refresh_nj=refresh_nj,
            background_nj=background_nj,
            preventive_nj=preventive_nj,
            rfm_nj=rfm_nj,
            in_dram_refresh_nj=in_dram_refresh_nj,
            counter_nj=counter_nj,
        )

    def normalized_energy(
        self,
        stats: DRAMStatistics,
        total_cycles: int,
        baseline_stats: DRAMStatistics,
        baseline_cycles: int,
    ) -> float:
        """Energy of a run normalized to a baseline run (the paper's metric).

        A zero-energy baseline means the baseline statistics are mis-wired
        (an empty run, or stats from the wrong channel); silently reporting
        1.0 would let that masquerade as "no overhead", so it raises.
        """
        baseline = self.energy(baseline_stats, baseline_cycles).total_nj
        if baseline == 0:
            raise ValueError(
                "baseline energy is zero - the baseline statistics are empty "
                "or mis-wired, refusing to normalize against them"
            )
        return self.energy(stats, total_cycles).total_nj / baseline
