"""DRAM energy accounting.

The model charges energy per DRAM command using the parameters in
:class:`~repro.energy.params.DDR4EnergyParameters` plus a background term
proportional to the execution time, the same structure DRAMPower uses.  The
inputs are the command counts collected by the
:class:`~repro.dram.dram_system.DRAMSystem` statistics and the total
execution time, so the model can be applied to any finished simulation.

The quantities the paper reports (Figures 11, 14, 15) are DRAM energies
normalized to the unprotected baseline; the breakdown also separates the
energy attributable to preventive refreshes so the mechanism-induced overhead
can be inspected directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dram.dram_system import DRAMStatistics
from repro.energy.params import DDR4EnergyParameters


@dataclass
class EnergyBreakdown:
    """DRAM energy, in nanojoules, split by source."""

    activation_nj: float
    read_nj: float
    write_nj: float
    refresh_nj: float
    background_nj: float
    preventive_nj: float

    @property
    def total_nj(self) -> float:
        return (
            self.activation_nj
            + self.read_nj
            + self.write_nj
            + self.refresh_nj
            + self.background_nj
        )

    @property
    def total_mj(self) -> float:
        return self.total_nj * 1e-6

    def as_dict(self) -> Dict[str, float]:
        return {
            "activation_nj": self.activation_nj,
            "read_nj": self.read_nj,
            "write_nj": self.write_nj,
            "refresh_nj": self.refresh_nj,
            "background_nj": self.background_nj,
            "preventive_nj": self.preventive_nj,
            "total_nj": self.total_nj,
        }


class DRAMEnergyModel:
    """Computes DRAM energy from command counts and execution time."""

    def __init__(
        self,
        parameters: Optional[DDR4EnergyParameters] = None,
        num_ranks: int = 2,
    ) -> None:
        self.parameters = parameters or DDR4EnergyParameters()
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self.num_ranks = num_ranks

    def energy(self, stats: DRAMStatistics, total_cycles: int) -> EnergyBreakdown:
        """Energy for a finished simulation.

        ``stats`` are the DRAM command counts; ``total_cycles`` is the
        execution time in DRAM clock cycles (background energy accrues on
        every rank for the whole run).
        """
        params = self.parameters
        # Every ACT is eventually paired with a PRE; charging per ACT keeps
        # the accounting simple and symmetric with DRAMPower.
        activation_nj = stats.acts * params.act_pre_energy_nj
        read_nj = stats.reads * params.read_energy_nj
        write_nj = stats.writes * params.write_energy_nj
        refresh_nj = stats.refreshes * params.refresh_energy_nj
        background_nj = self.num_ranks * params.background_energy_nj(total_cycles)
        preventive_nj = stats.preventive_acts * params.act_pre_energy_nj
        return EnergyBreakdown(
            activation_nj=activation_nj,
            read_nj=read_nj,
            write_nj=write_nj,
            refresh_nj=refresh_nj,
            background_nj=background_nj,
            preventive_nj=preventive_nj,
        )

    def normalized_energy(
        self,
        stats: DRAMStatistics,
        total_cycles: int,
        baseline_stats: DRAMStatistics,
        baseline_cycles: int,
    ) -> float:
        """Energy of a run normalized to a baseline run (the paper's metric)."""
        baseline = self.energy(baseline_stats, baseline_cycles).total_nj
        if baseline == 0:
            return 1.0
        return self.energy(stats, total_cycles).total_nj / baseline
