"""DDR4 energy parameters.

The constants follow the standard Micron DDR4 power model (the same model
DRAMPower implements): per-operation energies are derived from IDD currents
at VDD = 1.2 V for an x8 DDR4-2400 device and then scaled to a rank of eight
devices.  Absolute joules are not the point of the reproduction — the paper
reports *normalized* DRAM energy — but the ratios between activation,
read/write, refresh and background energy are what make the normalized
results come out right, so they are kept realistic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DDR4EnergyParameters:
    """Per-command and background energy for one DRAM rank (in nanojoules)."""

    #: Energy of one ACT+PRE pair (row activation + precharge), per rank.
    act_pre_energy_nj: float = 2.5
    #: Energy of one read burst (column access + I/O), per rank.
    read_energy_nj: float = 1.9
    #: Energy of one write burst, per rank.
    write_energy_nj: float = 2.1
    #: Energy of one all-bank REF command, per rank.
    refresh_energy_nj: float = 28.0
    #: Energy of one RFM (Refresh Management) command, per rank.  An RFM
    #: gives the device a tRFM window to refresh a small set of potential
    #: victims — roughly half an all-bank REF's worth of array activity.
    rfm_energy_nj: float = 14.0
    #: Energy of refreshing one row in-DRAM (ABO recovery, RFM victim
    #: refreshes, Hydra-style per-row traffic): an all-bank REF covering
    #: 16 rows at 28 nJ amortizes to 1.75 nJ per row.
    row_refresh_energy_nj: float = 1.75
    #: Energy of one in-DRAM per-row activation-counter read-modify-write
    #: (the PRAC counter update riding on every ACT).
    counter_update_energy_nj: float = 0.05
    #: Background (standby) power per rank in milliwatts, active-idle average.
    background_power_mw: float = 190.0
    #: DRAM clock period in nanoseconds (DDR4-2400).
    tck_ns: float = 0.833

    def background_energy_nj(self, cycles: int) -> float:
        """Background energy burned over ``cycles`` DRAM clock cycles (one rank)."""
        seconds = cycles * self.tck_ns * 1e-9
        return self.background_power_mw * 1e-3 * seconds * 1e9
