"""DRAM energy model (the reproduction's substitute for DRAMPower)."""

from repro.energy.params import DDR4EnergyParameters
from repro.energy.model import DRAMEnergyModel, EnergyBreakdown

__all__ = [
    "DDR4EnergyParameters",
    "DRAMEnergyModel",
    "EnergyBreakdown",
]
