"""Central, optional numpy import for the vectorized fast paths.

Every module that offers a numpy-backed kernel imports ``np`` from here
instead of importing numpy directly, so the whole codebase degrades to its
pure-Python implementations through a single switch:

* numpy genuinely missing from the environment, or
* ``REPRO_NO_NUMPY=1`` in the environment (the CI no-numpy job, and the
  local way to exercise the fallback without uninstalling anything).

``np`` is ``None`` when unavailable; callers latch a backend at
construction time (``if np is not None: ...``) rather than re-checking per
operation.
"""

from __future__ import annotations

import os

if os.environ.get("REPRO_NO_NUMPY") == "1":
    np = None
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        np = None

HAVE_NUMPY = np is not None
