"""Whole-run profiling: cProfile hot functions + per-component attribution.

:func:`profile_call` wraps one callable (typically a full experiment run)
in a :class:`cProfile.Profile` and reduces the raw stats two ways:

* the top-N hot functions by total (self) time — the flat cProfile view
  that names the exact loops to look at next; and
* per-component attribution — every profiled function is billed to the
  ``repro`` subpackage its file lives in (``sim``, ``controller``,
  ``dram``, ``cpu``, ``mitigations``, ...; stdlib and third-party frames
  land in ``other``), so the report answers "where do the simulated
  cycles' host cycles go?" at the architecture level the paper talks
  about.

Self time (``tottime``) is used for both reductions: unlike cumulative
time it sums to the measured total without double counting, so component
shares are true fractions of the run.

``repro run --profile`` is the front door (see :mod:`repro.cli`); it
profiles an uncached run, so the numbers always reflect a real simulation
rather than a result-cache hit.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, TypeVar

from repro.analysis.reporting import format_table

T = TypeVar("T")


def _component_of(filename: str) -> str:
    """The repro subpackage a profiled file belongs to (or ``other``)."""
    normalized = filename.replace("\\", "/")
    marker = "/repro/"
    at = normalized.rfind(marker)
    if at < 0:
        return "other"
    remainder = normalized[at + len(marker):]
    if "/" not in remainder:
        return "repro"  # top-level modules: cli.py, fastpath.py
    return remainder.split("/", 1)[0]


@dataclass
class ProfileReport:
    """Reduced cProfile stats for one profiled call."""

    total_seconds: float
    #: Top-N functions by self time: rows with function, file:line, calls,
    #: self/cumulative seconds.
    hot_functions: List[Dict[str, object]]
    #: Component name -> self seconds spent in that subpackage's files.
    components: Dict[str, float]

    def render(self) -> str:
        component_rows = [
            {
                "component": name,
                "seconds": round(seconds, 4),
                "share": f"{seconds / self.total_seconds:.1%}"
                if self.total_seconds
                else "-",
            }
            for name, seconds in sorted(
                self.components.items(), key=lambda item: -item[1]
            )
        ]
        return "\n\n".join(
            [
                format_table(
                    component_rows,
                    title=f"time attribution by component "
                    f"({self.total_seconds:.2f}s profiled)",
                ),
                format_table(
                    self.hot_functions,
                    title=f"hot functions (cProfile, top {len(self.hot_functions)} "
                    f"by self time)",
                ),
            ]
        )


def profile_call(func: Callable[[], T], top: int = 15) -> Tuple[T, ProfileReport]:
    """Run ``func()`` under cProfile; returns its result and the report."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = func()
    finally:
        profiler.disable()

    stats = pstats.Stats(profiler)
    components: Dict[str, float] = {}
    rows = []
    total = 0.0
    for (filename, line, name), (_cc, ncalls, tottime, cumtime, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        total += tottime
        component = _component_of(filename)
        components[component] = components.get(component, 0.0) + tottime
        basename = filename.replace("\\", "/").rsplit("/", 1)[-1]
        rows.append(
            {
                "function": name,
                "location": f"{basename}:{line}",
                "calls": ncalls,
                "self_s": round(tottime, 4),
                "cum_s": round(cumtime, 4),
            }
        )
    rows.sort(key=lambda row: -row["self_s"])
    return result, ProfileReport(
        total_seconds=total,
        hot_functions=rows[:top],
        components=components,
    )
