"""Analysis tools: security verification, tracker analysis, report formatting."""

from repro.analysis.security import SecurityVerifier, SecurityViolation
from repro.analysis.false_positive import (
    TrackerModel,
    comet_tracker,
    blockhammer_tracker,
    false_positive_rate_curve,
    uniform_activation_counts,
)
from repro.analysis.reporting import format_table, format_report, render_series

__all__ = [
    "SecurityVerifier",
    "SecurityViolation",
    "TrackerModel",
    "comet_tracker",
    "blockhammer_tracker",
    "false_positive_rate_curve",
    "uniform_activation_counts",
    "format_table",
    "format_report",
    "render_series",
]
