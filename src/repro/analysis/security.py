"""RowHammer security verification.

The paper's security argument (Section 5) is that no DRAM row is ever
activated ``NRH`` times between two refreshes of its victim rows.  The
:class:`SecurityVerifier` checks the equivalent victim-centric invariant on
the ground truth maintained by the DRAM model:

    for every victim row v, the number of activations of v's neighbouring
    (aggressor) rows since v was last refreshed stays below NRH.

The verifier observes three event streams from the DRAM model:

* every ACT (demand or preventive) adds one unit of disturbance to the
  activated row's neighbours;
* every preventive/in-DRAM row refresh clears the refreshed row's
  disturbance;
* every periodic REF clears the disturbance of the rows it covers in every
  bank of the refreshed rank — scoped to that rank's channel.  On the
  channel-partitioned fabric each channel runs its own verifier over its own
  channel-scoped :class:`~repro.dram.dram_system.DRAMSystem`, and REF events
  carry their ``(channel, rank)`` key, so a refresh on one channel never
  clears another channel's disturbance (pinned by the two-channel tests in
  ``tests/test_security_verifier.py``).

Violations are recorded (not raised) so tests can assert on them and the
benchmark harness can report "secure / not secure" per mechanism.  Audits
that only need the verdict and the worst-case margin run the verifier with
``record_violations=False``: the streaming mode keeps the violation *count*,
the first-violation cycle and the running disturbance maximum, but skips
materializing a :class:`SecurityViolation` object per offending ACT (an
unprotected baseline under a hammering attack yields one per ACT beyond the
threshold, which is pure overhead when nobody reads the list).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dram.address import DRAMAddress
from repro.dram.dram_system import DRAMSystem

RowKey = Tuple[int, int, int, int, int]  # channel, rank, bankgroup, bank, row


@dataclass(frozen=True)
class SecurityViolation:
    """One observed violation of the RowHammer invariant."""

    cycle: int
    victim: RowKey
    disturbance: int
    nrh: int

    def describe(self) -> str:
        channel, rank, bankgroup, bank, row = self.victim
        return (
            f"cycle {self.cycle}: victim row {row} "
            f"(ch{channel}/ra{rank}/bg{bankgroup}/ba{bank}) accumulated "
            f"{self.disturbance} aggressor activations >= NRH={self.nrh}"
        )


class SecurityVerifier:
    """Tracks per-victim disturbance and flags RowHammer threshold violations."""

    def __init__(
        self,
        dram: DRAMSystem,
        nrh: int,
        blast_radius: int = 1,
        record_violations: bool = True,
    ) -> None:
        if nrh <= 0:
            raise ValueError("nrh must be positive")
        self.dram = dram
        self.nrh = nrh
        self.blast_radius = blast_radius
        #: ``False`` enables the streaming max-margin mode: only the count,
        #: the first-violation cycle and ``max_disturbance`` are maintained
        #: and ``violations`` stays empty.
        self.record_violations = record_violations
        self._disturbance: Dict[RowKey, int] = {}
        self._violations: List[SecurityViolation] = []
        self._violation_count = 0
        self._first_violation_cycle: Optional[int] = None
        self._max_disturbance = 0
        self.rows_per_bank = dram.config.organization.rows_per_bank
        # Streaming audits on a fast-path DRAM system receive ACT events in
        # batches at the model's drain points (refresh boundaries, snapshot,
        # window end) instead of one callback per ACT; the verdict is
        # bit-identical because event order is preserved and the model
        # drains the buffer before any refresh notification.  Every public
        # result accessor flushes first, so partial batches are never
        # visible.  Recording audits keep per-event delivery: the
        # violation list is cheap to reason about when it grows in lockstep
        # with the command stream.
        self._batched = not record_violations and getattr(dram, "_fast", False)
        if self._batched:
            dram.add_batch_activation_observer(self.observe_batch)
        else:
            dram.add_activation_observer(self._on_activation)
        dram.add_refresh_observer(self._on_rank_refresh)
        dram.add_row_refresh_observer(self._on_row_refresh)

    # ------------------------------------------------------------------ #
    # Observers
    # ------------------------------------------------------------------ #
    def _flush(self) -> None:
        """Drain the DRAM model's pending ACT batch into this verifier."""
        if self._batched:
            self.dram.flush_activations()

    def _on_activation(self, cycle: int, address: DRAMAddress, is_preventive: bool) -> None:
        base = (address.channel, address.rank, address.bankgroup, address.bank)
        for distance in range(1, self.blast_radius + 1):
            for direction in (-1, 1):
                victim_row = address.row + direction * distance
                if not 0 <= victim_row < self.rows_per_bank:
                    continue
                key = base + (victim_row,)
                value = self._disturbance.get(key, 0) + 1
                self._disturbance[key] = value
                if value > self._max_disturbance:
                    self._max_disturbance = value
                if value >= self.nrh:
                    self._violation_count += 1
                    if self._first_violation_cycle is None:
                        self._first_violation_cycle = cycle
                    if self.record_violations:
                        self._violations.append(
                            SecurityViolation(
                                cycle=cycle, victim=key, disturbance=value, nrh=self.nrh
                            )
                        )

    def observe_batch(self, cycles, addresses, flags) -> None:
        """Batched form of :meth:`_on_activation` (same math, hoisted loop).

        Equivalence with the serial observer is property-tested in
        ``tests/test_observer_batch.py``.  ``flags`` is accepted for protocol
        uniformity; preventive ACTs disturb their neighbours exactly like
        demand ACTs (the refreshed victim row is cleared separately through
        the row-refresh observer).
        """
        disturbance = self._disturbance
        get = disturbance.get
        nrh = self.nrh
        rows_per_bank = self.rows_per_bank
        record = self.record_violations
        max_disturbance = self._max_disturbance
        violation_count = self._violation_count
        first_violation = self._first_violation_cycle
        if self.blast_radius == 1:
            for cycle, address in zip(cycles, addresses):
                base = (address.channel, address.rank, address.bankgroup, address.bank)
                row = address.row
                for victim_row in (row - 1, row + 1):
                    if not 0 <= victim_row < rows_per_bank:
                        continue
                    key = base + (victim_row,)
                    value = get(key, 0) + 1
                    disturbance[key] = value
                    if value > max_disturbance:
                        max_disturbance = value
                    if value >= nrh:
                        violation_count += 1
                        if first_violation is None:
                            first_violation = cycle
                        if record:
                            self._violations.append(
                                SecurityViolation(
                                    cycle=cycle, victim=key,
                                    disturbance=value, nrh=nrh,
                                )
                            )
            self._max_disturbance = max_disturbance
            self._violation_count = violation_count
            self._first_violation_cycle = first_violation
            return
        for cycle, address, is_preventive in zip(cycles, addresses, flags):
            self._on_activation(cycle, address, is_preventive)

    def _on_row_refresh(self, cycle: int, address: DRAMAddress) -> None:
        key = (address.channel, address.rank, address.bankgroup, address.bank, address.row)
        if key in self._disturbance:
            del self._disturbance[key]

    def _on_rank_refresh(
        self, cycle: int, rank_key: Tuple[int, int], start_row: int, count: int
    ) -> None:
        channel, rank = rank_key
        end_row = start_row + count
        stale = [
            key
            for key in self._disturbance
            if key[0] == channel and key[1] == rank and start_row <= key[4] < end_row
        ]
        for key in stale:
            del self._disturbance[key]

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict:
        """Plain-data checkpoint of the disturbance state and verdict."""
        self._flush()
        return {
            "disturbance": list(self._disturbance.items()),
            "violations": [
                dict(vars(violation)) for violation in self._violations
            ],
            "violation_count": self._violation_count,
            "first_violation_cycle": self._first_violation_cycle,
            "max_disturbance": self._max_disturbance,
        }

    def restore(self, state: Dict) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        self._disturbance = {
            tuple(key): value for key, value in state["disturbance"]
        }
        self._violations = [
            SecurityViolation(
                cycle=violation["cycle"],
                victim=tuple(violation["victim"]),
                disturbance=violation["disturbance"],
                nrh=violation["nrh"],
            )
            for violation in state["violations"]
        ]
        self._violation_count = state["violation_count"]
        self._first_violation_cycle = state["first_violation_cycle"]
        self._max_disturbance = state["max_disturbance"]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    # The result accessors flush the DRAM model's pending ACT batch first,
    # so callers never observe a partially delivered window.

    @property
    def violations(self) -> List[SecurityViolation]:
        self._flush()
        return self._violations

    @property
    def violation_count(self) -> int:
        self._flush()
        return self._violation_count

    @property
    def first_violation_cycle(self) -> Optional[int]:
        self._flush()
        return self._first_violation_cycle

    @property
    def max_disturbance(self) -> int:
        self._flush()
        return self._max_disturbance

    @property
    def is_secure(self) -> bool:
        return self.violation_count == 0

    @property
    def margin(self) -> float:
        """Worst observed disturbance as a fraction of NRH (1.0 = violated)."""
        return self.max_disturbance / self.nrh

    def disturbance_of(self, address: DRAMAddress) -> int:
        self._flush()
        key = (address.channel, address.rank, address.bankgroup, address.bank, address.row)
        return self._disturbance.get(key, 0)

    def worst_victims(self, top: int = 10) -> List[Tuple[RowKey, int]]:
        """The ``top`` victims with the highest current disturbance."""
        self._flush()
        ordered = sorted(self._disturbance.items(), key=lambda item: item[1], reverse=True)
        return ordered[:top]

    def report(self) -> Dict[str, object]:
        return {
            "nrh": self.nrh,
            "is_secure": self.is_secure,
            "violations": self.violation_count,
            "max_disturbance": self.max_disturbance,
            "margin": self.margin,
            "first_violation_cycle": self.first_violation_cycle,
            "tracked_victims": len(self._disturbance),
        }
