"""RowHammer security verification.

The paper's security argument (Section 5) is that no DRAM row is ever
activated ``NRH`` times between two refreshes of its victim rows.  The
:class:`SecurityVerifier` checks the equivalent victim-centric invariant on
the ground truth maintained by the DRAM model:

    for every victim row v, the number of activations of v's neighbouring
    (aggressor) rows since v was last refreshed stays below NRH.

The verifier observes three event streams from the DRAM model:

* every ACT (demand or preventive) adds one unit of disturbance to the
  activated row's neighbours;
* every preventive/in-DRAM row refresh clears the refreshed row's
  disturbance;
* every periodic REF clears the disturbance of the rows it covers in every
  bank of the rank.

Violations are recorded (not raised) so tests can assert on them and the
benchmark harness can report "secure / not secure" per mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dram.address import DRAMAddress
from repro.dram.dram_system import DRAMSystem

RowKey = Tuple[int, int, int, int, int]  # channel, rank, bankgroup, bank, row


@dataclass(frozen=True)
class SecurityViolation:
    """One observed violation of the RowHammer invariant."""

    cycle: int
    victim: RowKey
    disturbance: int
    nrh: int

    def describe(self) -> str:
        channel, rank, bankgroup, bank, row = self.victim
        return (
            f"cycle {self.cycle}: victim row {row} "
            f"(ch{channel}/ra{rank}/bg{bankgroup}/ba{bank}) accumulated "
            f"{self.disturbance} aggressor activations >= NRH={self.nrh}"
        )


class SecurityVerifier:
    """Tracks per-victim disturbance and flags RowHammer threshold violations."""

    def __init__(
        self,
        dram: DRAMSystem,
        nrh: int,
        blast_radius: int = 1,
    ) -> None:
        if nrh <= 0:
            raise ValueError("nrh must be positive")
        self.dram = dram
        self.nrh = nrh
        self.blast_radius = blast_radius
        self._disturbance: Dict[RowKey, int] = {}
        self.violations: List[SecurityViolation] = []
        self.max_disturbance = 0
        self.rows_per_bank = dram.config.organization.rows_per_bank
        dram.add_activation_observer(self._on_activation)
        dram.add_refresh_observer(self._on_rank_refresh)
        dram.add_row_refresh_observer(self._on_row_refresh)

    # ------------------------------------------------------------------ #
    # Observers
    # ------------------------------------------------------------------ #
    def _on_activation(self, cycle: int, address: DRAMAddress, is_preventive: bool) -> None:
        base = (address.channel, address.rank, address.bankgroup, address.bank)
        for distance in range(1, self.blast_radius + 1):
            for direction in (-1, 1):
                victim_row = address.row + direction * distance
                if not 0 <= victim_row < self.rows_per_bank:
                    continue
                key = base + (victim_row,)
                value = self._disturbance.get(key, 0) + 1
                self._disturbance[key] = value
                if value > self.max_disturbance:
                    self.max_disturbance = value
                if value >= self.nrh:
                    self.violations.append(
                        SecurityViolation(
                            cycle=cycle, victim=key, disturbance=value, nrh=self.nrh
                        )
                    )

    def _on_row_refresh(self, cycle: int, address: DRAMAddress) -> None:
        key = (address.channel, address.rank, address.bankgroup, address.bank, address.row)
        if key in self._disturbance:
            del self._disturbance[key]

    def _on_rank_refresh(
        self, cycle: int, rank_key: Tuple[int, int], start_row: int, count: int
    ) -> None:
        channel, rank = rank_key
        end_row = start_row + count
        stale = [
            key
            for key in self._disturbance
            if key[0] == channel and key[1] == rank and start_row <= key[4] < end_row
        ]
        for key in stale:
            del self._disturbance[key]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def is_secure(self) -> bool:
        return not self.violations

    def disturbance_of(self, address: DRAMAddress) -> int:
        key = (address.channel, address.rank, address.bankgroup, address.bank, address.row)
        return self._disturbance.get(key, 0)

    def worst_victims(self, top: int = 10) -> List[Tuple[RowKey, int]]:
        """The ``top`` victims with the highest current disturbance."""
        ordered = sorted(self._disturbance.items(), key=lambda item: item[1], reverse=True)
        return ordered[:top]

    def report(self) -> Dict[str, object]:
        return {
            "nrh": self.nrh,
            "is_secure": self.is_secure,
            "violations": len(self.violations),
            "max_disturbance": self.max_disturbance,
            "tracked_victims": len(self._disturbance),
        }
