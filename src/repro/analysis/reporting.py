"""Plain-text report formatting.

The benchmark harnesses print their results in the same shape as the paper's
tables and figures (rows of a table, or series of a figure).  These helpers
render dictionaries and series as aligned ASCII tables so the output of
``pytest benchmarks/`` can be compared side by side with the paper and copied
into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell, precision: int = 4) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [_format_cell(row.get(column, ""), precision) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(r[i]) for r in rendered_rows))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[Cell],
    x_label: str = "x",
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render named series (figure lines) against shared x values."""
    rows = []
    for index, x in enumerate(x_values):
        row: Dict[str, Cell] = {x_label: x}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else ""
        rows.append(row)
    return format_table(rows, columns=[x_label, *series.keys()], title=title, precision=precision)


def format_report(sections: Mapping[str, Union[str, Mapping[str, Cell]]]) -> str:
    """Render a multi-section report: section name followed by its content."""
    lines: List[str] = []
    for name, content in sections.items():
        lines.append(f"== {name} ==")
        if isinstance(content, str):
            lines.append(content)
        else:
            for key, value in content.items():
                lines.append(f"  {key}: {_format_cell(value)}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
