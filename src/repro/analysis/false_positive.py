"""False-positive-rate analysis of hash-based trackers (Figure 17).

The paper compares CoMeT's Counter Table (a Count-Min Sketch where each hash
function indexes its own private set of counters) against BlockHammer's
counting Bloom filter (all hash functions share one counter array).  The
experiment of Figure 17 distributes a fixed number of activations (10,000 —
the average a benign workload issues to a bank per refresh window, footnote
13) over a varying number of unique rows, and measures the fraction of rows
the tracker would *incorrectly* flag as having reached the RowHammer
threshold.

This module builds both trackers from their paper configurations, feeds them
identical synthetic activation streams and computes that false-positive rate,
which the Figure 17 benchmark prints as a curve over the unique-row count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import CoMeTConfig
from repro.core.counter_table import CounterTable
from repro.sketch.counting_bloom import CountingBloomFilter, DualCountingBloomFilter


@dataclass
class TrackerModel:
    """A tracker under test: a name, an update function and an estimate function."""

    name: str
    update: Callable[[int], None]
    estimate: Callable[[int], int]
    reset: Callable[[], None]


def comet_tracker(nrh: int = 125, config: Optional[CoMeTConfig] = None, seed: int = 0) -> TrackerModel:
    """CoMeT's Counter Table configured as in the paper (4 x 512, CMS-CU).

    For the tracker comparison the counters saturate at the RowHammer
    threshold itself (there is no RAT in this experiment; Figure 17 compares
    the raw trackers).
    """
    config = config or CoMeTConfig(
        nrh=nrh * 4,  # NPR = nrh with the default k=3 divider
        num_hashes=4,
        counters_per_hash=512,
        hash_seed=seed,
    )
    table = CounterTable(config)
    return TrackerModel(
        name="CoMeT",
        update=lambda row: table.increment(row),
        estimate=lambda row: table.estimate(row),
        reset=table.reset,
    )


def blockhammer_tracker(
    nrh: int = 125,
    num_counters: int = 2048,
    num_hashes: int = 4,
    seed: int = 0,
) -> TrackerModel:
    """BlockHammer's counting Bloom filter with an equal counter budget.

    The CBF gets the same total number of counters as CoMeT's CT (4 x 512 =
    2048) but, per the BlockHammer design, every hash function indexes the
    same shared array — the structural difference Section 8.3 highlights.
    """
    cbf = CountingBloomFilter(
        num_counters=num_counters,
        num_hashes=num_hashes,
        counter_width_bits=16,
        seed=seed,
    )
    return TrackerModel(
        name="BlockHammer",
        update=lambda row: cbf.update(row),
        estimate=lambda row: cbf.estimate(row),
        reset=cbf.reset,
    )


def blockhammer_dual_tracker(
    nrh: int = 125,
    counters_per_filter: int = 256,
    num_hashes: int = 4,
    seed: int = 0,
) -> TrackerModel:
    """BlockHammer's actual dual-filter tracker at a given storage budget.

    BlockHammer keeps two counting Bloom filters and estimates from the active
    one, so for a given storage budget only half of the counters back any
    single estimate — the structural handicap (relative to CoMeT's partitioned
    Counter Table of equal storage) that Figure 17 quantifies.
    """
    cbf = DualCountingBloomFilter(
        num_counters=counters_per_filter,
        num_hashes=num_hashes,
        counter_width_bits=16,
        seed=seed,
    )
    return TrackerModel(
        name="BlockHammer",
        update=lambda row: cbf.update(row),
        estimate=lambda row: cbf.estimate(row),
        reset=cbf.reset,
    )


def uniform_activation_counts(
    num_unique_rows: int, total_activations: int, seed: int = 0
) -> Dict[int, int]:
    """Distribute ``total_activations`` as evenly as possible over unique rows.

    Row IDs are drawn pseudo-randomly from a large row-address space so hash
    behaviour is representative rather than sequential-address friendly.
    """
    rng = random.Random(seed)
    rows = rng.sample(range(1 << 17), num_unique_rows)
    counts: Dict[int, int] = {}
    base = total_activations // num_unique_rows
    remainder = total_activations % num_unique_rows
    for index, row in enumerate(rows):
        counts[row] = base + (1 if index < remainder else 0)
    return counts


def measure_false_positive_rate(
    tracker: TrackerModel,
    activation_counts: Dict[int, int],
    threshold: int,
    seed: int = 0,
) -> float:
    """Feed an interleaved activation stream to a tracker and measure its FPR.

    FPR = (# rows flagged whose true count is below the threshold) /
          (# rows whose true count is below the threshold).
    """
    tracker.reset()
    stream: List[int] = []
    for row, count in activation_counts.items():
        stream.extend([row] * count)
    rng = random.Random(seed)
    rng.shuffle(stream)
    for row in stream:
        tracker.update(row)

    negatives = [row for row, count in activation_counts.items() if count < threshold]
    if not negatives:
        return 0.0
    false_positives = [row for row in negatives if tracker.estimate(row) >= threshold]
    return len(false_positives) / len(negatives)


def false_positive_rate_curve(
    unique_row_counts: Sequence[int],
    total_activations: int = 10_000,
    threshold: int = 125,
    seed: int = 0,
    trackers: Optional[Sequence[TrackerModel]] = None,
) -> Dict[str, List[float]]:
    """The Figure 17 curve: FPR per tracker as unique-row count varies."""
    if trackers is None:
        trackers = [comet_tracker(nrh=threshold, seed=seed), blockhammer_tracker(nrh=threshold, seed=seed)]
    curve: Dict[str, List[float]] = {tracker.name: [] for tracker in trackers}
    for index, unique_rows in enumerate(unique_row_counts):
        counts = uniform_activation_counts(unique_rows, total_activations, seed=seed + index)
        for tracker in trackers:
            rate = measure_false_positive_rate(tracker, counts, threshold, seed=seed + index)
            curve[tracker.name].append(rate)
    return curve
