"""Command-line interface for quick experiments.

Installed as the ``python -m repro.cli`` entry point (and importable as
:func:`repro.cli.main`), the CLI is a thin shell over the declarative
experiment API (:mod:`repro.experiment`): every subcommand builds
:class:`~repro.experiment.spec.ExperimentSpec` objects and executes them
through a :class:`~repro.experiment.session.Session`.

``python -m repro.cli workloads``
    List the 61-workload suite grouped by memory-intensity category.

``python -m repro.cli list``
    List every registered component: mitigation mechanisms (with their
    construction metadata and design thresholds), workloads (including the
    ``synth_*`` adversarial patterns) and the controller policies of the
    three policy axes.

``python -m repro.cli run --workload 429.mcf --mitigation comet --nrh 125``
    Run one workload under one mitigation and print the result summary
    (normalized IPC against the unprotected baseline included).

``python -m repro.cli run --spec experiment.json [--out record.json]``
    Run one serialized :class:`ExperimentSpec` end-to-end and print its
    summary; ``--out`` archives the full :class:`RunRecord` as JSON.

``python -m repro.cli run ... --profile``
    Profile the run under cProfile and append the top hot functions plus
    per-component time attribution (where the host cycles go:
    ``sim`` / ``controller`` / ``dram`` / ``cpu`` / ``mitigations`` / ...)
    to the summary — see :mod:`repro.analysis.profiling`.

``python -m repro.cli compare --workload 429.mcf --nrh 125``
    Run every mitigation on one workload and print a comparison table.

``python -m repro.cli attack --mitigation comet --nrh 125``
    Run the traditional RowHammer attack against a mitigation and report the
    security verifier's verdict.

``python -m repro.cli sweep --workloads 429.mcf --mitigations comet para --nrh 1000 125``
    Fan a mitigation x threshold grid across worker processes through the
    on-disk result cache and print every point (Figures 6-9 pattern).
    ``--scheduler/--row-policy/--refresh-policy`` accept several values and
    become controller-policy sweep axes (every workload x mitigation x NRH
    cell repeated per policy triple, each normalized to a baseline running
    the same policies).

``python -m repro.cli audit --mitigations all --patterns all --nrh 125``
    Run a security-audit campaign: every protective mechanism against every
    synthesized/hand-written adversarial pattern, reduced to per-mechanism
    verdicts and disturbance margins (``--out`` archives the SecurityReport
    JSON).

``python -m repro.cli campaign run --name nightly --workloads 429.mcf --mitigations comet para --nrh 250 125 --store DIR --backend sqlite``
    Run (or resume) a persistent campaign: grid cells missing from the
    content-addressed result store are queued through the chosen backend
    and fanned across workers; a killed run resumes with zero
    recomputation of completed cells.

``python -m repro.cli campaign status --store DIR``
    Report completed/total progress for every campaign checkpointed in a
    store — no simulation, no queue needed.

``python -m repro.cli campaign query --store DIR --mitigation comet``
    Query stored results (flat summary rows) straight from the record
    files.

``python -m repro.cli serve --store DIR --port 8080``
    Serve the read-only JSON API (``/health``, ``/records/<hash>``,
    ``/query``, ``/campaigns``) over a store.

``python -m repro.cli area --nrh 125``
    Print the storage/area comparison (Table 4 row) for a threshold.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.area.model import (
    comet_area_report,
    graphene_area_report,
    hydra_area_report,
    prac_area_report,
)
from repro.controller.policies import (
    ControllerPolicySpec,
    normalize_policy,
    policy_catalog,
    refresh_policy_names,
    row_policy_names,
    scheduler_names,
)
from repro.experiment.registry import (
    mitigation_entries,
    mitigation_names,
    registered_workload_names,
    workload_entry,
)
from repro.experiment.session import Session
from repro.experiment.spec import (
    ExperimentSpec,
    MitigationSpec,
    PlatformSpec,
    SampledConfig,
    WorkloadSpec,
    expand_grid,
)
from repro.workloads.suite import workloads_by_category


def _channel_count(value: str) -> int:
    """Argparse type for ``--channels``: a positive power of two.

    The interleaved address mapping slices fixed-width bit fields, so a
    non-power-of-two channel count would alias coordinates; rejecting it
    here gives a one-line CLI error instead of a traceback from the
    geometry validator (possibly inside a sweep worker process).
    """
    try:
        channels = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer") from None
    if channels < 1 or channels & (channels - 1):
        raise argparse.ArgumentTypeError(
            f"channel count must be a positive power of two, got {channels}"
        )
    return channels


def _add_policy_arguments(
    parser: argparse.ArgumentParser, sweepable: bool = False
) -> None:
    """Controller-policy flags; ``sweepable`` turns them into grid axes."""
    nargs = "+" if sweepable else None
    plural = " (several values sweep the axis)" if sweepable else ""
    parser.add_argument(
        "--scheduler",
        nargs=nargs,
        default=["fr_fcfs"] if sweepable else "fr_fcfs",
        choices=scheduler_names(),
        help=f"request scheduling policy{plural}",
    )
    parser.add_argument(
        "--row-policy",
        nargs=nargs,
        default=["open_page"] if sweepable else "open_page",
        choices=row_policy_names(),
        help=f"row-buffer policy{plural}",
    )
    parser.add_argument(
        "--refresh-policy",
        nargs=nargs,
        default=["all_bank"] if sweepable else "all_bank",
        choices=refresh_policy_names(),
        help=f"periodic refresh mode{plural}",
    )


def _policy_from_args(args: argparse.Namespace):
    """The single policy triple named by run/compare/attack flags (or None)."""
    return normalize_policy(
        ControllerPolicySpec(
            scheduler=args.scheduler,
            row_policy=args.row_policy,
            refresh_policy=args.refresh_policy,
        )
    )


def _policies_from_args(args: argparse.Namespace):
    """Cross-product of the sweepable policy flags, defaults normalized."""
    return [
        normalize_policy(
            ControllerPolicySpec(
                scheduler=scheduler,
                row_policy=row_policy,
                refresh_policy=refresh_policy,
            )
        )
        for scheduler in args.scheduler
        for row_policy in args.row_policy
        for refresh_policy in args.refresh_policy
    ]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CoMeT reproduction: run scaled RowHammer-mitigation experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("workloads", help="list the synthetic workload suite")

    subparsers.add_parser(
        "list",
        help="list registered mitigations, workloads and controller policies",
    )

    run_parser = subparsers.add_parser("run", help="run one workload under one mitigation")
    _add_common_arguments(run_parser)
    run_parser.add_argument(
        "--mitigation",
        default="comet",
        choices=mitigation_names(),
        help="mitigation mechanism (default: comet)",
    )
    run_parser.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="run a serialized ExperimentSpec JSON file instead of the flags",
    )
    run_parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="with --spec: also write the full RunRecord JSON here",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the run under cProfile and append the top hot "
        "functions plus per-component time attribution",
    )
    run_parser.add_argument(
        "--fidelity",
        default="full",
        choices=("full", "sampled"),
        help="execution fidelity: 'full' evaluates every command on the "
        "event kernel; 'sampled' fast-forwards functionally between "
        "detailed windows (approximate timing, exact mitigation state)",
    )
    run_parser.add_argument(
        "--sample-interval",
        type=int,
        default=None,
        metavar="N",
        help="with --fidelity sampled: trace entries per sampling period "
        "(default %d)" % SampledConfig().interval,
    )
    run_parser.add_argument(
        "--detailed-window",
        type=int,
        default=None,
        metavar="N",
        help="with --fidelity sampled: detailed entries at the end of each "
        "period (default %d)" % SampledConfig().detailed_window,
    )
    run_parser.add_argument(
        "--warmup",
        type=int,
        default=None,
        metavar="N",
        help="with --fidelity sampled: detailed entries before the first "
        "fast-forward (default %d)" % SampledConfig().warmup,
    )

    compare_parser = subparsers.add_parser(
        "compare", help="run every mitigation on one workload"
    )
    _add_common_arguments(compare_parser)

    attack_parser = subparsers.add_parser(
        "attack", help="run the traditional RowHammer attack against a mitigation"
    )
    attack_parser.add_argument(
        "--mitigation",
        default="comet",
        choices=mitigation_names(),
        help="mitigation mechanism (default: comet)",
    )
    attack_parser.add_argument("--nrh", type=int, default=125, help="RowHammer threshold")
    attack_parser.add_argument(
        "--requests", type=int, default=6000, help="attack trace length"
    )
    attack_parser.add_argument(
        "--channels", type=_channel_count, default=1,
        help="memory channels (fabric width)",
    )
    attack_parser.add_argument(
        "--target-channel", type=int, default=0,
        help="channel the attack hammers (others stay benign-idle)",
    )
    _add_policy_arguments(attack_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a mitigation x threshold grid through the sweep executor"
    )
    sweep_parser.add_argument(
        "--workloads", nargs="+", default=["429.mcf"], help="workload names"
    )
    sweep_parser.add_argument(
        "--mitigations",
        nargs="+",
        default=["comet"],
        choices=mitigation_names(),
        help="mitigation mechanisms to sweep",
    )
    sweep_parser.add_argument(
        "--nrh", type=int, nargs="+", default=[1000, 125], help="RowHammer thresholds"
    )
    sweep_parser.add_argument(
        "--channels", type=_channel_count, nargs="+", default=[1],
        help="memory channel counts to sweep (fabric width axis)",
    )
    _add_policy_arguments(sweep_parser, sweepable=True)
    sweep_parser.add_argument(
        "--requests", type=int, default=8000, help="trace length in requests"
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per CPU; 0 runs inline)",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None, help="result cache directory (see EXPERIMENTS.md)"
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true", help="bypass the on-disk result cache"
    )

    audit_parser = subparsers.add_parser(
        "audit",
        help="run a mitigation x adversarial-pattern security-audit campaign",
    )
    audit_parser.add_argument(
        "--mitigations", nargs="+", default=["all"],
        help="mechanisms to audit ('all' = every protective mechanism)",
    )
    audit_parser.add_argument(
        "--patterns", nargs="+", default=["all"],
        help="adversarial patterns ('all' = every synth_* and attack_* workload)",
    )
    audit_parser.add_argument(
        "--nrh", type=int, nargs="+", default=None,
        help="RowHammer thresholds (default: each mechanism's design threshold)",
    )
    audit_parser.add_argument(
        "--requests", type=int, default=6000, help="trace length per pattern"
    )
    audit_parser.add_argument(
        "--channels", type=_channel_count, default=1,
        help="memory channels (fabric width)",
    )
    audit_parser.add_argument(
        "--seed", type=int, default=0, help="pattern-synthesis seed (reproducible)"
    )
    _add_policy_arguments(audit_parser, sweepable=True)
    audit_parser.add_argument(
        "--include-baseline", action="store_true",
        help="also audit the unprotected baseline (expected insecure)",
    )
    audit_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the full SecurityReport JSON here",
    )
    audit_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per CPU; 0 runs inline)",
    )
    audit_parser.add_argument(
        "--cache-dir", default=None, help="result cache directory (see EXPERIMENTS.md)"
    )
    audit_parser.add_argument(
        "--no-cache", action="store_true", help="bypass the on-disk result cache"
    )

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="persistent, resumable experiment campaigns (store + work queue)",
    )
    campaign_sub = campaign_parser.add_subparsers(
        dest="campaign_command", required=True
    )

    crun = campaign_sub.add_parser(
        "run", help="run (or resume) a campaign grid through a queue backend"
    )
    crun.add_argument(
        "--campaign-file", default=None, metavar="FILE",
        help="serialized CampaignSpec JSON (overrides the grid flags)",
    )
    crun.add_argument(
        "--scaling-study", action="store_true",
        help="run the low-NRH scaling study (mechanisms x NRH in "
        "{125,64,32,20}, streaming-verified; overrides the grid flags and "
        "prints the per-mechanism security report)",
    )
    crun.add_argument("--name", default="campaign", help="campaign name")
    crun.add_argument(
        "--workloads", nargs="+", default=["429.mcf"], help="workload names"
    )
    crun.add_argument(
        "--mitigations", nargs="+", default=["comet"],
        choices=mitigation_names(), help="mitigation mechanisms",
    )
    crun.add_argument(
        "--nrh", type=int, nargs="+", default=[125], help="RowHammer thresholds"
    )
    crun.add_argument(
        "--requests", type=int, default=8000, help="trace length in requests"
    )
    crun.add_argument("--cores", type=int, default=1, help="cores per cell")
    crun.add_argument(
        "--channels", type=_channel_count, nargs="+", default=[1],
        help="memory channel counts (grid axis)",
    )
    crun.add_argument(
        "--priority", type=int, default=0, help="base queue priority of every cell"
    )
    crun.add_argument(
        "--budget", type=int, default=None,
        help="max cells executed by this invocation (resume later for the rest)",
    )
    _add_campaign_store_arguments(crun)
    crun.add_argument(
        "--backend", default="sqlite", choices=_campaign_backend_names(),
        help="work-queue backend (default: sqlite; see `repro list`)",
    )
    crun.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per CPU; 0 runs inline)",
    )
    crun.add_argument(
        "--lease", type=float, default=60.0,
        help="seconds a claimed cell is protected before idle runners reclaim it",
    )

    cstatus = campaign_sub.add_parser(
        "status", help="report store-backed progress of checkpointed campaigns"
    )
    _add_campaign_store_arguments(cstatus)
    cstatus.add_argument(
        "--campaign", default=None, metavar="ID",
        help="campaign id (or unambiguous prefix); default: every campaign",
    )

    cquery = campaign_sub.add_parser(
        "query", help="query stored results without simulating"
    )
    _add_campaign_store_arguments(cquery)
    cquery.add_argument("--workload", default=None, help="filter by workload name")
    cquery.add_argument("--mitigation", default=None, help="filter by mechanism")
    cquery.add_argument("--nrh", type=int, default=None, help="filter by threshold")
    cquery.add_argument(
        "--spec-hash", default=None, metavar="HASH",
        help="print the one full record for a spec hash instead of summaries",
    )
    cquery.add_argument(
        "--limit", type=int, default=None, help="maximum summary rows"
    )

    serve_parser = subparsers.add_parser(
        "serve", help="serve the read-only campaign-store JSON API over HTTP"
    )
    _add_campaign_store_arguments(serve_parser)
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8123, help="bind port (0 picks a free one)"
    )

    area_parser = subparsers.add_parser("area", help="print the Table 4 area comparison")
    area_parser.add_argument("--nrh", type=int, default=125, help="RowHammer threshold")

    return parser


def _campaign_backend_names():
    from repro.campaign import queue_backend_names

    return queue_backend_names()


def _add_campaign_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="campaign result-store directory (default: $REPRO_CAMPAIGN_STORE "
        "or ~/.cache/repro/campaigns)",
    )


def _store_from_args(args: argparse.Namespace):
    from repro.campaign import ResultStore, default_store_dir

    return ResultStore(Path(args.store) if args.store else default_store_dir())


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="429.mcf", help="workload name (see `workloads`)")
    parser.add_argument("--nrh", type=int, default=125, help="RowHammer threshold")
    parser.add_argument("--requests", type=int, default=8000, help="trace length in requests")
    parser.add_argument(
        "--channels", type=_channel_count, default=1,
        help="memory channels (fabric width)",
    )
    _add_policy_arguments(parser)


def _session(args: Optional[argparse.Namespace] = None) -> Session:
    """A Session honouring the sweep flags (other commands run uncached)."""
    if args is not None and hasattr(args, "workers"):
        return Session(
            max_workers=args.workers,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
        )
    return Session(max_workers=0, use_cache=False)


def _command_list(_args: argparse.Namespace) -> str:
    from repro.security.audit import design_nrh

    sections = []
    mitigation_rows = []
    for name, entry in sorted(mitigation_entries().items()):
        mitigation_rows.append(
            {
                "mitigation": name,
                "takes_nrh": entry.takes_nrh,
                "seedable": entry.seedable,
                "design_nrh": design_nrh(name) if name != "none" else "-",
            }
        )
    sections.append(
        format_table(mitigation_rows, title="registered mitigation mechanisms")
    )

    workload_rows = []
    for name in registered_workload_names():
        workload_rows.append(
            {"category": workload_entry(name).category, "workload": name}
        )
    workload_rows.sort(key=lambda row: (row["category"], row["workload"]))
    sections.append(
        format_table(
            workload_rows,
            title=f"registered workloads ({len(workload_rows)}, incl. synth_* patterns)",
        )
    )

    policy_rows = [
        {
            "axis": entry.kind,
            "policy": entry.name,
            "params": ", ".join(entry.params) or "-",
            "description": entry.description,
        }
        for entry in policy_catalog()
    ]
    sections.append(
        format_table(
            policy_rows,
            title="controller policies (--scheduler / --row-policy / --refresh-policy)",
        )
    )

    from repro.campaign import queue_backend_catalog

    sections.append(
        format_table(
            queue_backend_catalog(),
            title="campaign queue backends (repro campaign run --backend)",
        )
    )
    return "\n\n".join(sections)


def _command_workloads(_args: argparse.Namespace) -> str:
    rows = []
    for category, names in workloads_by_category().items():
        for name in sorted(names):
            rows.append({"category": category, "workload": name})
    return format_table(rows, title="Synthetic workload suite (Table 3 categories)")


def _command_run(args: argparse.Namespace) -> str:
    body = _run_spec_file if args.spec is not None else _run_from_flags
    if not args.profile:
        return body(args)
    # Profiled runs go through an uncached Session (`_session()` with no
    # sweep flags disables the result cache), so cProfile always sees a
    # real simulation, never a cache hit.
    from repro.analysis.profiling import profile_call

    output, report = profile_call(lambda: body(args))
    return output + "\n\n" + report.render()


def _sampled_from_args(args: argparse.Namespace):
    """``(fidelity, SampledConfig | None)`` from the run-command flags."""
    knobs = {
        "interval": getattr(args, "sample_interval", None),
        "detailed_window": getattr(args, "detailed_window", None),
        "warmup": getattr(args, "warmup", None),
    }
    set_knobs = {key: value for key, value in knobs.items() if value is not None}
    if getattr(args, "fidelity", "full") != "sampled":
        if set_knobs:
            flags = ", ".join(f"--{key.replace('_', '-')}" for key in set_knobs)
            raise SystemExit(f"{flags} require --fidelity sampled")
        return "full", None
    try:
        return "sampled", SampledConfig(**{**vars(SampledConfig()), **set_knobs})
    except ValueError as exc:
        raise SystemExit(f"invalid sampling configuration: {exc}")


def _run_from_flags(args: argparse.Namespace) -> str:
    session = _session()
    policy = _policy_from_args(args)
    fidelity, sampled = _sampled_from_args(args)
    records = session.compare(
        WorkloadSpec(name=args.workload, num_requests=args.requests),
        [args.mitigation],
        nrh=args.nrh,
        platform=PlatformSpec(channels=args.channels, controller=policy),
        fidelity=fidelity,
        sampled=sampled,
    )
    baseline, result = records["none"].result, records[args.mitigation].result
    normalized = result.ipc / baseline.ipc if baseline.ipc else 0.0
    rows = [
        {
            "workload": args.workload,
            "mitigation": args.mitigation,
            "nrh": args.nrh,
            "ipc": round(result.ipc, 4),
            "normalized_IPC": round(normalized, 4),
            "preventive_refreshes": result.preventive_refreshes,
            "secure": result.security_ok,
        }
    ]
    if policy is not None:
        rows[0]["policy"] = policy.label()
    if fidelity != "full":
        rows[0]["fidelity"] = fidelity
    return format_table(rows, title="single-core run")


def _run_spec_file(args: argparse.Namespace) -> str:
    spec_path = Path(args.spec)
    try:
        spec = ExperimentSpec.from_json(spec_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SystemExit(f"spec file not found: {spec_path}")
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"invalid experiment spec {spec_path}: {exc}")
    record = _session().run(spec)
    if args.out is not None:
        Path(args.out).write_text(record.to_json() + "\n", encoding="utf-8")
    result = record.result
    rows = [
        {
            "experiment": spec.run_name(),
            "mitigation": spec.mitigation.name,
            "nrh": spec.mitigation.nrh,
            "channels": spec.platform.channel_count,
            "ipc": round(result.ipc, 4),
            "preventive_refreshes": result.preventive_refreshes,
            "secure": result.security_ok,
            "spec_hash": record.provenance["spec_hash"][:12],
        }
    ]
    return format_table(rows, title=f"spec run ({spec_path.name})")


def _command_compare(args: argparse.Namespace) -> str:
    session = _session()
    mitigations = [name for name in mitigation_names() if name != "none"]
    records = session.compare(
        WorkloadSpec(name=args.workload, num_requests=args.requests),
        mitigations,
        nrh=args.nrh,
        platform=PlatformSpec(
            channels=args.channels, controller=_policy_from_args(args)
        ),
    )
    baseline = records["none"].result
    rows = []
    for name in mitigations:
        result = records[name].result
        rows.append(
            {
                "mitigation": name,
                "normalized_IPC": round(result.ipc / baseline.ipc, 4) if baseline.ipc else 0.0,
                "preventive_refreshes": result.preventive_refreshes,
                "secure": result.security_ok,
            }
        )
    return format_table(
        rows, title=f"{args.workload} at NRH={args.nrh}, normalized to no mitigation"
    )


def _command_attack(args: argparse.Namespace) -> str:
    if not 0 <= args.target_channel < args.channels:
        raise SystemExit(
            f"--target-channel {args.target_channel} is out of range for "
            f"--channels {args.channels} (valid: 0..{args.channels - 1})"
        )
    # The baseline is verified too: `attack --mitigation none` reporting the
    # RowHammer violation (secure: no) is the point of the command.
    spec = ExperimentSpec(
        workload=WorkloadSpec(
            name="attack_traditional",
            num_requests=args.requests,
            params={"aggressor_rows_per_bank": 2, "channel": args.target_channel},
        ),
        mitigation=MitigationSpec(name=args.mitigation, nrh=args.nrh),
        platform=PlatformSpec(
            channels=args.channels, controller=_policy_from_args(args)
        ),
    )
    result = _session().run(spec).result
    rows = [
        {
            "mitigation": args.mitigation,
            "nrh": args.nrh,
            "secure": result.security_ok,
            "max_disturbance": result.max_disturbance,
            "preventive_refreshes": result.preventive_refreshes,
        }
    ]
    return format_table(rows, title="traditional RowHammer attack")


def _command_sweep(args: argparse.Namespace) -> str:
    policies = _policies_from_args(args)
    specs = expand_grid(
        workloads=args.workloads,
        mitigations=args.mitigations,
        nrhs=args.nrh,
        num_requests=args.requests,
        channels=args.channels,
        policies=policies,
    )
    session = _session(args)
    records = session.run_many(specs)
    show_policy = any(policy is not None for policy in policies)

    def _policy_label(spec):
        controller = spec.platform.controller
        return controller.label() if controller is not None else "default"

    baselines = {
        (spec.workload.name, spec.platform.channel_count, _policy_label(spec)):
            record.result
        for spec, record in zip(specs, records)
        if spec.mitigation.name == "none"
    }
    rows = []
    for spec, record in zip(specs, records):
        if spec.mitigation.name == "none":
            continue
        result = record.result
        baseline = baselines[
            (spec.workload.name, spec.platform.channel_count, _policy_label(spec))
        ]
        row = {
            "workload": spec.workload.name,
            "mitigation": spec.mitigation.name,
            "nrh": spec.mitigation.nrh,
            "channels": spec.platform.channel_count,
            "normalized_IPC": round(result.ipc / baseline.ipc, 4) if baseline.ipc else 0.0,
            "preventive_refreshes": result.preventive_refreshes,
            "secure": result.security_ok,
        }
        if show_policy:
            row["policy"] = _policy_label(spec)
        rows.append(row)
    cache_note = ""
    if not args.no_cache:
        cache_note = f" (cache: {session.cache_hits} hits, {session.cache_misses} misses)"
    return format_table(
        rows,
        title=f"sweep over {len(specs)} points{cache_note}",
    )


def _command_audit(args: argparse.Namespace) -> str:
    from repro.security.audit import run_audit

    # "all" anywhere in the list expands to the full set (it is a superset
    # of any explicit names given alongside it).
    mitigations = None if "all" in args.mitigations else args.mitigations
    patterns = None if "all" in args.patterns else args.patterns
    session = _session(args)
    report = run_audit(
        mitigations=mitigations,
        patterns=patterns,
        nrhs=args.nrh,
        num_requests=args.requests,
        channels=args.channels,
        seed=args.seed,
        include_baseline=args.include_baseline,
        policies=_policies_from_args(args),
        session=session,
    )
    if args.out is not None:
        Path(args.out).write_text(report.to_json() + "\n", encoding="utf-8")
    lines = [report.render()]
    if not args.no_cache:
        lines.append(
            f"(cache: {session.cache_hits} hits, {session.cache_misses} misses)"
        )
    lines.append("overall: " + ("secure" if report.is_secure else "INSECURE"))
    return "\n".join(lines)


def _campaign_spec_from_args(args: argparse.Namespace):
    from repro.experiment.spec import CampaignSpec

    if getattr(args, "scaling_study", False):
        from repro.security.audit import scaling_campaign

        return scaling_campaign()
    if args.campaign_file is not None:
        path = Path(args.campaign_file)
        try:
            return CampaignSpec.from_json(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise SystemExit(f"campaign file not found: {path}")
        except (KeyError, TypeError, ValueError) as exc:
            raise SystemExit(f"invalid campaign spec {path}: {exc}")
    try:
        return CampaignSpec(
            name=args.name,
            workloads=tuple(args.workloads),
            mitigations=tuple(args.mitigations),
            nrhs=tuple(args.nrh),
            num_requests=args.requests,
            num_cores=args.cores,
            channels=tuple(args.channels),
            priority=args.priority,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"invalid campaign grid: {exc}")


def _command_campaign(args: argparse.Namespace) -> str:
    handlers = {
        "run": _command_campaign_run,
        "status": _command_campaign_status,
        "query": _command_campaign_query,
    }
    return handlers[args.campaign_command](args)


def _command_campaign_run(args: argparse.Namespace) -> str:
    from repro.campaign import CampaignRunner

    campaign = _campaign_spec_from_args(args)
    store = _store_from_args(args)
    runner = CampaignRunner(
        campaign,
        store=store,
        queue=args.backend,
        max_workers=args.workers,
        lease=args.lease,
        budget=args.budget,
    )
    status = runner.run()
    row = status.as_row()
    row["backend"] = args.backend
    row["store"] = str(store.root)
    verdict = "finished" if status.finished else "resumable (budget/kill)"
    out = format_table([row], title=f"campaign {campaign.name}: {verdict}")
    if campaign.audit:
        # Any audit-mode campaign (--scaling-study, or a --campaign-file
        # with "audit": true) reduces its store to a security report —
        # partial if the run was budgeted or killed.
        from repro.security.audit import scaling_report

        out += "\n\n" + scaling_report(store, campaign).render()
    return out


def _command_campaign_status(args: argparse.Namespace) -> str:
    from repro.campaign.runner import status_from_state

    store = _store_from_args(args)
    campaign_ids = store.list_campaigns()
    if args.campaign is not None:
        campaign_ids = [c for c in campaign_ids if c.startswith(args.campaign)]
        if not campaign_ids:
            raise SystemExit(f"no campaign matching {args.campaign!r} in {store.root}")
    rows = []
    for campaign_id in campaign_ids:
        state = store.load_campaign(campaign_id)
        if state is None:
            continue
        status = status_from_state(store, state)
        row = status.as_row()
        del row["pending"], row["claimed"], row["executed"]
        row["finished"] = status.finished
        rows.append(row)
    if not rows:
        return f"no campaigns checkpointed in {store.root}"
    return format_table(
        rows, title=f"campaigns in {store.root} ({len(store)} records)"
    )


def _command_campaign_query(args: argparse.Namespace) -> str:
    store = _store_from_args(args)
    if args.spec_hash is not None:
        record = store.get_record(args.spec_hash)
        if record is None:
            raise SystemExit(f"no record for spec hash {args.spec_hash}")
        return record.to_json()
    rows = store.query(
        workload=args.workload,
        mitigation=args.mitigation,
        nrh=args.nrh,
        limit=args.limit,
    )
    if not rows:
        return f"no matching records in {store.root}"
    for row in rows:
        row["spec_hash"] = row["spec_hash"][:12]
        row["ipc"] = round(row["ipc"], 4)
        campaign = row.pop("campaign")
        row["campaign"] = campaign[:12] if campaign else "-"
    return format_table(rows, title=f"{len(rows)} stored results ({store.root})")


def _command_serve(args: argparse.Namespace) -> str:
    from repro.campaign import make_server

    store = _store_from_args(args)
    server = make_server(store, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    # Printed (and flushed) before serving so scripts can wait on readiness.
    print(f"serving {store.root} at http://{host}:{port} (Ctrl-C to stop)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
    return "stopped"


def _command_area(args: argparse.Namespace) -> str:
    rows = [
        comet_area_report(args.nrh).as_row(),
        graphene_area_report(args.nrh).as_row(),
        hydra_area_report(args.nrh).as_row(),
        prac_area_report(args.nrh).as_row(),
    ]
    return format_table(rows, title=f"storage and area at NRH={args.nrh} (Table 4 row)")


_COMMANDS = {
    "workloads": _command_workloads,
    "list": _command_list,
    "run": _command_run,
    "compare": _command_compare,
    "attack": _command_attack,
    "sweep": _command_sweep,
    "audit": _command_audit,
    "campaign": _command_campaign,
    "serve": _command_serve,
    "area": _command_area,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
