"""Command-line interface for quick experiments.

Installed as the ``python -m repro.cli`` entry point (and importable as
:func:`repro.cli.main`), the CLI exposes the most common experiment patterns
without writing a script:

``python -m repro.cli workloads``
    List the 61-workload suite grouped by memory-intensity category.

``python -m repro.cli run --workload 429.mcf --mitigation comet --nrh 125``
    Run one workload under one mitigation and print the result summary
    (normalized IPC against the unprotected baseline included).

``python -m repro.cli compare --workload 429.mcf --nrh 125``
    Run every mitigation on one workload and print a comparison table.

``python -m repro.cli attack --mitigation comet --nrh 125``
    Run the traditional RowHammer attack against a mitigation and report the
    security verifier's verdict.

``python -m repro.cli sweep --workloads 429.mcf --mitigations comet para --nrh 1000 125``
    Fan a mitigation x threshold grid across worker processes through the
    on-disk result cache and print every point (Figures 6-9 pattern).

``python -m repro.cli area --nrh 125``
    Print the storage/area comparison (Table 4 row) for a threshold.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.area.model import comet_area_report, graphene_area_report, hydra_area_report
from repro.sim.runner import (
    MITIGATION_REGISTRY,
    default_experiment_config,
    run_single_core,
)
from repro.sim.sweep import SweepRunner
from repro.workloads.attacks import traditional_rowhammer_attack
from repro.workloads.suite import build_trace, workloads_by_category


def _channel_count(value: str) -> int:
    """Argparse type for ``--channels``: a positive power of two.

    The interleaved address mapping slices fixed-width bit fields, so a
    non-power-of-two channel count would alias coordinates; rejecting it
    here gives a one-line CLI error instead of a traceback from the
    geometry validator (possibly inside a sweep worker process).
    """
    try:
        channels = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer") from None
    if channels < 1 or channels & (channels - 1):
        raise argparse.ArgumentTypeError(
            f"channel count must be a positive power of two, got {channels}"
        )
    return channels


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CoMeT reproduction: run scaled RowHammer-mitigation experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("workloads", help="list the synthetic workload suite")

    run_parser = subparsers.add_parser("run", help="run one workload under one mitigation")
    _add_common_arguments(run_parser)
    run_parser.add_argument(
        "--mitigation",
        default="comet",
        choices=sorted(MITIGATION_REGISTRY),
        help="mitigation mechanism (default: comet)",
    )

    compare_parser = subparsers.add_parser(
        "compare", help="run every mitigation on one workload"
    )
    _add_common_arguments(compare_parser)

    attack_parser = subparsers.add_parser(
        "attack", help="run the traditional RowHammer attack against a mitigation"
    )
    attack_parser.add_argument(
        "--mitigation",
        default="comet",
        choices=sorted(MITIGATION_REGISTRY),
        help="mitigation mechanism (default: comet)",
    )
    attack_parser.add_argument("--nrh", type=int, default=125, help="RowHammer threshold")
    attack_parser.add_argument(
        "--requests", type=int, default=6000, help="attack trace length"
    )
    attack_parser.add_argument(
        "--channels", type=_channel_count, default=1,
        help="memory channels (fabric width)",
    )
    attack_parser.add_argument(
        "--target-channel", type=int, default=0,
        help="channel the attack hammers (others stay benign-idle)",
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a mitigation x threshold grid through the sweep executor"
    )
    sweep_parser.add_argument(
        "--workloads", nargs="+", default=["429.mcf"], help="workload names"
    )
    sweep_parser.add_argument(
        "--mitigations",
        nargs="+",
        default=["comet"],
        choices=sorted(MITIGATION_REGISTRY),
        help="mitigation mechanisms to sweep",
    )
    sweep_parser.add_argument(
        "--nrh", type=int, nargs="+", default=[1000, 125], help="RowHammer thresholds"
    )
    sweep_parser.add_argument(
        "--channels", type=_channel_count, nargs="+", default=[1],
        help="memory channel counts to sweep (fabric width axis)",
    )
    sweep_parser.add_argument(
        "--requests", type=int, default=8000, help="trace length in requests"
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per CPU; 0 runs inline)",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None, help="result cache directory (see EXPERIMENTS.md)"
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true", help="bypass the on-disk result cache"
    )

    area_parser = subparsers.add_parser("area", help="print the Table 4 area comparison")
    area_parser.add_argument("--nrh", type=int, default=125, help="RowHammer threshold")

    return parser


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="429.mcf", help="workload name (see `workloads`)")
    parser.add_argument("--nrh", type=int, default=125, help="RowHammer threshold")
    parser.add_argument("--requests", type=int, default=8000, help="trace length in requests")
    parser.add_argument(
        "--channels", type=_channel_count, default=1,
        help="memory channels (fabric width)",
    )


def _command_workloads(_args: argparse.Namespace) -> str:
    rows = []
    for category, names in workloads_by_category().items():
        for name in sorted(names):
            rows.append({"category": category, "workload": name})
    return format_table(rows, title="Synthetic workload suite (Table 3 categories)")


def _command_run(args: argparse.Namespace) -> str:
    dram_config = default_experiment_config(channels=args.channels)
    trace = build_trace(args.workload, num_requests=args.requests, dram_config=dram_config)
    baseline = run_single_core(trace, "none", nrh=args.nrh, dram_config=dram_config)
    result = run_single_core(trace, args.mitigation, nrh=args.nrh, dram_config=dram_config)
    normalized = result.ipc / baseline.ipc if baseline.ipc else 0.0
    rows = [
        {
            "workload": args.workload,
            "mitigation": args.mitigation,
            "nrh": args.nrh,
            "ipc": round(result.ipc, 4),
            "normalized_IPC": round(normalized, 4),
            "preventive_refreshes": result.preventive_refreshes,
            "secure": result.security_ok,
        }
    ]
    return format_table(rows, title="single-core run")


def _command_compare(args: argparse.Namespace) -> str:
    dram_config = default_experiment_config(channels=args.channels)
    trace = build_trace(args.workload, num_requests=args.requests, dram_config=dram_config)
    baseline = run_single_core(trace, "none", nrh=args.nrh, dram_config=dram_config)
    rows = []
    for name in sorted(MITIGATION_REGISTRY):
        if name == "none":
            continue
        result = run_single_core(trace, name, nrh=args.nrh, dram_config=dram_config)
        rows.append(
            {
                "mitigation": name,
                "normalized_IPC": round(result.ipc / baseline.ipc, 4) if baseline.ipc else 0.0,
                "preventive_refreshes": result.preventive_refreshes,
                "secure": result.security_ok,
            }
        )
    return format_table(
        rows, title=f"{args.workload} at NRH={args.nrh}, normalized to no mitigation"
    )


def _command_attack(args: argparse.Namespace) -> str:
    if not 0 <= args.target_channel < args.channels:
        raise SystemExit(
            f"--target-channel {args.target_channel} is out of range for "
            f"--channels {args.channels} (valid: 0..{args.channels - 1})"
        )
    dram_config = default_experiment_config(channels=args.channels)
    attack = traditional_rowhammer_attack(
        num_requests=args.requests,
        dram_config=dram_config,
        aggressor_rows_per_bank=2,
        channel=args.target_channel,
    )
    result = run_single_core(attack, args.mitigation, nrh=args.nrh, dram_config=dram_config)
    rows = [
        {
            "mitigation": args.mitigation,
            "nrh": args.nrh,
            "secure": result.security_ok,
            "max_disturbance": result.max_disturbance,
            "preventive_refreshes": result.preventive_refreshes,
        }
    ]
    return format_table(rows, title="traditional RowHammer attack")


def _command_sweep(args: argparse.Namespace) -> str:
    points = SweepRunner.grid(
        workloads=args.workloads,
        mitigations=args.mitigations,
        nrhs=args.nrh,
        num_requests=args.requests,
        channels=args.channels,
    )
    runner = SweepRunner(
        max_workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    results = runner.run(points)
    baselines = {
        (point.workload, point.channels): result
        for point, result in zip(points, results)
        if point.mitigation == "none"
    }
    rows = []
    for point, result in zip(points, results):
        if point.mitigation == "none":
            continue
        baseline = baselines[(point.workload, point.channels)]
        rows.append(
            {
                "workload": point.workload,
                "mitigation": point.mitigation,
                "nrh": point.nrh,
                "channels": point.channels,
                "normalized_IPC": round(result.ipc / baseline.ipc, 4) if baseline.ipc else 0.0,
                "preventive_refreshes": result.preventive_refreshes,
                "secure": result.security_ok,
            }
        )
    cache_note = ""
    if runner.cache is not None:
        cache_note = f" (cache: {runner.cache.hits} hits, {runner.cache.misses} misses)"
    return format_table(
        rows,
        title=f"sweep over {len(points)} points{cache_note}",
    )


def _command_area(args: argparse.Namespace) -> str:
    rows = [
        comet_area_report(args.nrh).as_row(),
        graphene_area_report(args.nrh).as_row(),
        hydra_area_report(args.nrh).as_row(),
    ]
    return format_table(rows, title=f"storage and area at NRH={args.nrh} (Table 4 row)")


_COMMANDS = {
    "workloads": _command_workloads,
    "run": _command_run,
    "compare": _command_compare,
    "attack": _command_attack,
    "sweep": _command_sweep,
    "area": _command_area,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
