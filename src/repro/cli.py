"""Command-line interface for quick experiments.

Installed as the ``python -m repro.cli`` entry point (and importable as
:func:`repro.cli.main`), the CLI is a thin shell over the declarative
experiment API (:mod:`repro.experiment`): every subcommand builds
:class:`~repro.experiment.spec.ExperimentSpec` objects and executes them
through a :class:`~repro.experiment.session.Session`.

``python -m repro.cli workloads``
    List the 61-workload suite grouped by memory-intensity category.

``python -m repro.cli list``
    List every registered component: mitigation mechanisms (with their
    construction metadata and design thresholds), workloads (including the
    ``synth_*`` adversarial patterns) and the controller policies of the
    three policy axes.

``python -m repro.cli run --workload 429.mcf --mitigation comet --nrh 125``
    Run one workload under one mitigation and print the result summary
    (normalized IPC against the unprotected baseline included).

``python -m repro.cli run --spec experiment.json [--out record.json]``
    Run one serialized :class:`ExperimentSpec` end-to-end and print its
    summary; ``--out`` archives the full :class:`RunRecord` as JSON.

``python -m repro.cli run ... --profile``
    Profile the run under cProfile and append the top hot functions plus
    per-component time attribution (where the host cycles go:
    ``sim`` / ``controller`` / ``dram`` / ``cpu`` / ``mitigations`` / ...)
    to the summary — see :mod:`repro.analysis.profiling`.

``python -m repro.cli compare --workload 429.mcf --nrh 125``
    Run every mitigation on one workload and print a comparison table.

``python -m repro.cli attack --mitigation comet --nrh 125``
    Run the traditional RowHammer attack against a mitigation and report the
    security verifier's verdict.

``python -m repro.cli sweep --workloads 429.mcf --mitigations comet para --nrh 1000 125``
    Fan a mitigation x threshold grid across worker processes through the
    on-disk result cache and print every point (Figures 6-9 pattern).
    ``--scheduler/--row-policy/--refresh-policy`` accept several values and
    become controller-policy sweep axes (every workload x mitigation x NRH
    cell repeated per policy triple, each normalized to a baseline running
    the same policies).

``python -m repro.cli audit --mitigations all --patterns all --nrh 125``
    Run a security-audit campaign: every protective mechanism against every
    synthesized/hand-written adversarial pattern, reduced to per-mechanism
    verdicts and disturbance margins (``--out`` archives the SecurityReport
    JSON).

``python -m repro.cli area --nrh 125``
    Print the storage/area comparison (Table 4 row) for a threshold.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.area.model import comet_area_report, graphene_area_report, hydra_area_report
from repro.controller.policies import (
    ControllerPolicySpec,
    normalize_policy,
    policy_catalog,
    refresh_policy_names,
    row_policy_names,
    scheduler_names,
)
from repro.experiment.registry import (
    mitigation_entries,
    mitigation_names,
    registered_workload_names,
    workload_entry,
)
from repro.experiment.session import Session
from repro.experiment.spec import (
    ExperimentSpec,
    MitigationSpec,
    PlatformSpec,
    SampledConfig,
    WorkloadSpec,
    expand_grid,
)
from repro.workloads.suite import workloads_by_category


def _channel_count(value: str) -> int:
    """Argparse type for ``--channels``: a positive power of two.

    The interleaved address mapping slices fixed-width bit fields, so a
    non-power-of-two channel count would alias coordinates; rejecting it
    here gives a one-line CLI error instead of a traceback from the
    geometry validator (possibly inside a sweep worker process).
    """
    try:
        channels = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer") from None
    if channels < 1 or channels & (channels - 1):
        raise argparse.ArgumentTypeError(
            f"channel count must be a positive power of two, got {channels}"
        )
    return channels


def _add_policy_arguments(
    parser: argparse.ArgumentParser, sweepable: bool = False
) -> None:
    """Controller-policy flags; ``sweepable`` turns them into grid axes."""
    nargs = "+" if sweepable else None
    plural = " (several values sweep the axis)" if sweepable else ""
    parser.add_argument(
        "--scheduler",
        nargs=nargs,
        default=["fr_fcfs"] if sweepable else "fr_fcfs",
        choices=scheduler_names(),
        help=f"request scheduling policy{plural}",
    )
    parser.add_argument(
        "--row-policy",
        nargs=nargs,
        default=["open_page"] if sweepable else "open_page",
        choices=row_policy_names(),
        help=f"row-buffer policy{plural}",
    )
    parser.add_argument(
        "--refresh-policy",
        nargs=nargs,
        default=["all_bank"] if sweepable else "all_bank",
        choices=refresh_policy_names(),
        help=f"periodic refresh mode{plural}",
    )


def _policy_from_args(args: argparse.Namespace):
    """The single policy triple named by run/compare/attack flags (or None)."""
    return normalize_policy(
        ControllerPolicySpec(
            scheduler=args.scheduler,
            row_policy=args.row_policy,
            refresh_policy=args.refresh_policy,
        )
    )


def _policies_from_args(args: argparse.Namespace):
    """Cross-product of the sweepable policy flags, defaults normalized."""
    return [
        normalize_policy(
            ControllerPolicySpec(
                scheduler=scheduler,
                row_policy=row_policy,
                refresh_policy=refresh_policy,
            )
        )
        for scheduler in args.scheduler
        for row_policy in args.row_policy
        for refresh_policy in args.refresh_policy
    ]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CoMeT reproduction: run scaled RowHammer-mitigation experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("workloads", help="list the synthetic workload suite")

    subparsers.add_parser(
        "list",
        help="list registered mitigations, workloads and controller policies",
    )

    run_parser = subparsers.add_parser("run", help="run one workload under one mitigation")
    _add_common_arguments(run_parser)
    run_parser.add_argument(
        "--mitigation",
        default="comet",
        choices=mitigation_names(),
        help="mitigation mechanism (default: comet)",
    )
    run_parser.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="run a serialized ExperimentSpec JSON file instead of the flags",
    )
    run_parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="with --spec: also write the full RunRecord JSON here",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the run under cProfile and append the top hot "
        "functions plus per-component time attribution",
    )
    run_parser.add_argument(
        "--fidelity",
        default="full",
        choices=("full", "sampled"),
        help="execution fidelity: 'full' evaluates every command on the "
        "event kernel; 'sampled' fast-forwards functionally between "
        "detailed windows (approximate timing, exact mitigation state)",
    )
    run_parser.add_argument(
        "--sample-interval",
        type=int,
        default=None,
        metavar="N",
        help="with --fidelity sampled: trace entries per sampling period "
        "(default %d)" % SampledConfig().interval,
    )
    run_parser.add_argument(
        "--detailed-window",
        type=int,
        default=None,
        metavar="N",
        help="with --fidelity sampled: detailed entries at the end of each "
        "period (default %d)" % SampledConfig().detailed_window,
    )
    run_parser.add_argument(
        "--warmup",
        type=int,
        default=None,
        metavar="N",
        help="with --fidelity sampled: detailed entries before the first "
        "fast-forward (default %d)" % SampledConfig().warmup,
    )

    compare_parser = subparsers.add_parser(
        "compare", help="run every mitigation on one workload"
    )
    _add_common_arguments(compare_parser)

    attack_parser = subparsers.add_parser(
        "attack", help="run the traditional RowHammer attack against a mitigation"
    )
    attack_parser.add_argument(
        "--mitigation",
        default="comet",
        choices=mitigation_names(),
        help="mitigation mechanism (default: comet)",
    )
    attack_parser.add_argument("--nrh", type=int, default=125, help="RowHammer threshold")
    attack_parser.add_argument(
        "--requests", type=int, default=6000, help="attack trace length"
    )
    attack_parser.add_argument(
        "--channels", type=_channel_count, default=1,
        help="memory channels (fabric width)",
    )
    attack_parser.add_argument(
        "--target-channel", type=int, default=0,
        help="channel the attack hammers (others stay benign-idle)",
    )
    _add_policy_arguments(attack_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a mitigation x threshold grid through the sweep executor"
    )
    sweep_parser.add_argument(
        "--workloads", nargs="+", default=["429.mcf"], help="workload names"
    )
    sweep_parser.add_argument(
        "--mitigations",
        nargs="+",
        default=["comet"],
        choices=mitigation_names(),
        help="mitigation mechanisms to sweep",
    )
    sweep_parser.add_argument(
        "--nrh", type=int, nargs="+", default=[1000, 125], help="RowHammer thresholds"
    )
    sweep_parser.add_argument(
        "--channels", type=_channel_count, nargs="+", default=[1],
        help="memory channel counts to sweep (fabric width axis)",
    )
    _add_policy_arguments(sweep_parser, sweepable=True)
    sweep_parser.add_argument(
        "--requests", type=int, default=8000, help="trace length in requests"
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per CPU; 0 runs inline)",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None, help="result cache directory (see EXPERIMENTS.md)"
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true", help="bypass the on-disk result cache"
    )

    audit_parser = subparsers.add_parser(
        "audit",
        help="run a mitigation x adversarial-pattern security-audit campaign",
    )
    audit_parser.add_argument(
        "--mitigations", nargs="+", default=["all"],
        help="mechanisms to audit ('all' = every protective mechanism)",
    )
    audit_parser.add_argument(
        "--patterns", nargs="+", default=["all"],
        help="adversarial patterns ('all' = every synth_* and attack_* workload)",
    )
    audit_parser.add_argument(
        "--nrh", type=int, nargs="+", default=None,
        help="RowHammer thresholds (default: each mechanism's design threshold)",
    )
    audit_parser.add_argument(
        "--requests", type=int, default=6000, help="trace length per pattern"
    )
    audit_parser.add_argument(
        "--channels", type=_channel_count, default=1,
        help="memory channels (fabric width)",
    )
    audit_parser.add_argument(
        "--seed", type=int, default=0, help="pattern-synthesis seed (reproducible)"
    )
    _add_policy_arguments(audit_parser, sweepable=True)
    audit_parser.add_argument(
        "--include-baseline", action="store_true",
        help="also audit the unprotected baseline (expected insecure)",
    )
    audit_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the full SecurityReport JSON here",
    )
    audit_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per CPU; 0 runs inline)",
    )
    audit_parser.add_argument(
        "--cache-dir", default=None, help="result cache directory (see EXPERIMENTS.md)"
    )
    audit_parser.add_argument(
        "--no-cache", action="store_true", help="bypass the on-disk result cache"
    )

    area_parser = subparsers.add_parser("area", help="print the Table 4 area comparison")
    area_parser.add_argument("--nrh", type=int, default=125, help="RowHammer threshold")

    return parser


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="429.mcf", help="workload name (see `workloads`)")
    parser.add_argument("--nrh", type=int, default=125, help="RowHammer threshold")
    parser.add_argument("--requests", type=int, default=8000, help="trace length in requests")
    parser.add_argument(
        "--channels", type=_channel_count, default=1,
        help="memory channels (fabric width)",
    )
    _add_policy_arguments(parser)


def _session(args: Optional[argparse.Namespace] = None) -> Session:
    """A Session honouring the sweep flags (other commands run uncached)."""
    if args is not None and hasattr(args, "workers"):
        return Session(
            max_workers=args.workers,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
        )
    return Session(max_workers=0, use_cache=False)


def _command_list(_args: argparse.Namespace) -> str:
    from repro.security.audit import design_nrh

    sections = []
    mitigation_rows = []
    for name, entry in sorted(mitigation_entries().items()):
        mitigation_rows.append(
            {
                "mitigation": name,
                "takes_nrh": entry.takes_nrh,
                "seedable": entry.seedable,
                "design_nrh": design_nrh(name) if name != "none" else "-",
            }
        )
    sections.append(
        format_table(mitigation_rows, title="registered mitigation mechanisms")
    )

    workload_rows = []
    for name in registered_workload_names():
        workload_rows.append(
            {"category": workload_entry(name).category, "workload": name}
        )
    workload_rows.sort(key=lambda row: (row["category"], row["workload"]))
    sections.append(
        format_table(
            workload_rows,
            title=f"registered workloads ({len(workload_rows)}, incl. synth_* patterns)",
        )
    )

    policy_rows = [
        {
            "axis": entry.kind,
            "policy": entry.name,
            "params": ", ".join(entry.params) or "-",
            "description": entry.description,
        }
        for entry in policy_catalog()
    ]
    sections.append(
        format_table(
            policy_rows,
            title="controller policies (--scheduler / --row-policy / --refresh-policy)",
        )
    )
    return "\n\n".join(sections)


def _command_workloads(_args: argparse.Namespace) -> str:
    rows = []
    for category, names in workloads_by_category().items():
        for name in sorted(names):
            rows.append({"category": category, "workload": name})
    return format_table(rows, title="Synthetic workload suite (Table 3 categories)")


def _command_run(args: argparse.Namespace) -> str:
    body = _run_spec_file if args.spec is not None else _run_from_flags
    if not args.profile:
        return body(args)
    # Profiled runs go through an uncached Session (`_session()` with no
    # sweep flags disables the result cache), so cProfile always sees a
    # real simulation, never a cache hit.
    from repro.analysis.profiling import profile_call

    output, report = profile_call(lambda: body(args))
    return output + "\n\n" + report.render()


def _sampled_from_args(args: argparse.Namespace):
    """``(fidelity, SampledConfig | None)`` from the run-command flags."""
    knobs = {
        "interval": getattr(args, "sample_interval", None),
        "detailed_window": getattr(args, "detailed_window", None),
        "warmup": getattr(args, "warmup", None),
    }
    set_knobs = {key: value for key, value in knobs.items() if value is not None}
    if getattr(args, "fidelity", "full") != "sampled":
        if set_knobs:
            flags = ", ".join(f"--{key.replace('_', '-')}" for key in set_knobs)
            raise SystemExit(f"{flags} require --fidelity sampled")
        return "full", None
    try:
        return "sampled", SampledConfig(**{**vars(SampledConfig()), **set_knobs})
    except ValueError as exc:
        raise SystemExit(f"invalid sampling configuration: {exc}")


def _run_from_flags(args: argparse.Namespace) -> str:
    session = _session()
    policy = _policy_from_args(args)
    fidelity, sampled = _sampled_from_args(args)
    records = session.compare(
        WorkloadSpec(name=args.workload, num_requests=args.requests),
        [args.mitigation],
        nrh=args.nrh,
        platform=PlatformSpec(channels=args.channels, controller=policy),
        fidelity=fidelity,
        sampled=sampled,
    )
    baseline, result = records["none"].result, records[args.mitigation].result
    normalized = result.ipc / baseline.ipc if baseline.ipc else 0.0
    rows = [
        {
            "workload": args.workload,
            "mitigation": args.mitigation,
            "nrh": args.nrh,
            "ipc": round(result.ipc, 4),
            "normalized_IPC": round(normalized, 4),
            "preventive_refreshes": result.preventive_refreshes,
            "secure": result.security_ok,
        }
    ]
    if policy is not None:
        rows[0]["policy"] = policy.label()
    if fidelity != "full":
        rows[0]["fidelity"] = fidelity
    return format_table(rows, title="single-core run")


def _run_spec_file(args: argparse.Namespace) -> str:
    spec_path = Path(args.spec)
    try:
        spec = ExperimentSpec.from_json(spec_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SystemExit(f"spec file not found: {spec_path}")
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"invalid experiment spec {spec_path}: {exc}")
    record = _session().run(spec)
    if args.out is not None:
        Path(args.out).write_text(record.to_json() + "\n", encoding="utf-8")
    result = record.result
    rows = [
        {
            "experiment": spec.run_name(),
            "mitigation": spec.mitigation.name,
            "nrh": spec.mitigation.nrh,
            "channels": spec.platform.channel_count,
            "ipc": round(result.ipc, 4),
            "preventive_refreshes": result.preventive_refreshes,
            "secure": result.security_ok,
            "spec_hash": record.provenance["spec_hash"][:12],
        }
    ]
    return format_table(rows, title=f"spec run ({spec_path.name})")


def _command_compare(args: argparse.Namespace) -> str:
    session = _session()
    mitigations = [name for name in mitigation_names() if name != "none"]
    records = session.compare(
        WorkloadSpec(name=args.workload, num_requests=args.requests),
        mitigations,
        nrh=args.nrh,
        platform=PlatformSpec(
            channels=args.channels, controller=_policy_from_args(args)
        ),
    )
    baseline = records["none"].result
    rows = []
    for name in mitigations:
        result = records[name].result
        rows.append(
            {
                "mitigation": name,
                "normalized_IPC": round(result.ipc / baseline.ipc, 4) if baseline.ipc else 0.0,
                "preventive_refreshes": result.preventive_refreshes,
                "secure": result.security_ok,
            }
        )
    return format_table(
        rows, title=f"{args.workload} at NRH={args.nrh}, normalized to no mitigation"
    )


def _command_attack(args: argparse.Namespace) -> str:
    if not 0 <= args.target_channel < args.channels:
        raise SystemExit(
            f"--target-channel {args.target_channel} is out of range for "
            f"--channels {args.channels} (valid: 0..{args.channels - 1})"
        )
    # The baseline is verified too: `attack --mitigation none` reporting the
    # RowHammer violation (secure: no) is the point of the command.
    spec = ExperimentSpec(
        workload=WorkloadSpec(
            name="attack_traditional",
            num_requests=args.requests,
            params={"aggressor_rows_per_bank": 2, "channel": args.target_channel},
        ),
        mitigation=MitigationSpec(name=args.mitigation, nrh=args.nrh),
        platform=PlatformSpec(
            channels=args.channels, controller=_policy_from_args(args)
        ),
    )
    result = _session().run(spec).result
    rows = [
        {
            "mitigation": args.mitigation,
            "nrh": args.nrh,
            "secure": result.security_ok,
            "max_disturbance": result.max_disturbance,
            "preventive_refreshes": result.preventive_refreshes,
        }
    ]
    return format_table(rows, title="traditional RowHammer attack")


def _command_sweep(args: argparse.Namespace) -> str:
    policies = _policies_from_args(args)
    specs = expand_grid(
        workloads=args.workloads,
        mitigations=args.mitigations,
        nrhs=args.nrh,
        num_requests=args.requests,
        channels=args.channels,
        policies=policies,
    )
    session = _session(args)
    records = session.run_many(specs)
    show_policy = any(policy is not None for policy in policies)

    def _policy_label(spec):
        controller = spec.platform.controller
        return controller.label() if controller is not None else "default"

    baselines = {
        (spec.workload.name, spec.platform.channel_count, _policy_label(spec)):
            record.result
        for spec, record in zip(specs, records)
        if spec.mitigation.name == "none"
    }
    rows = []
    for spec, record in zip(specs, records):
        if spec.mitigation.name == "none":
            continue
        result = record.result
        baseline = baselines[
            (spec.workload.name, spec.platform.channel_count, _policy_label(spec))
        ]
        row = {
            "workload": spec.workload.name,
            "mitigation": spec.mitigation.name,
            "nrh": spec.mitigation.nrh,
            "channels": spec.platform.channel_count,
            "normalized_IPC": round(result.ipc / baseline.ipc, 4) if baseline.ipc else 0.0,
            "preventive_refreshes": result.preventive_refreshes,
            "secure": result.security_ok,
        }
        if show_policy:
            row["policy"] = _policy_label(spec)
        rows.append(row)
    cache_note = ""
    if not args.no_cache:
        cache_note = f" (cache: {session.cache_hits} hits, {session.cache_misses} misses)"
    return format_table(
        rows,
        title=f"sweep over {len(specs)} points{cache_note}",
    )


def _command_audit(args: argparse.Namespace) -> str:
    from repro.security.audit import run_audit

    # "all" anywhere in the list expands to the full set (it is a superset
    # of any explicit names given alongside it).
    mitigations = None if "all" in args.mitigations else args.mitigations
    patterns = None if "all" in args.patterns else args.patterns
    session = _session(args)
    report = run_audit(
        mitigations=mitigations,
        patterns=patterns,
        nrhs=args.nrh,
        num_requests=args.requests,
        channels=args.channels,
        seed=args.seed,
        include_baseline=args.include_baseline,
        policies=_policies_from_args(args),
        session=session,
    )
    if args.out is not None:
        Path(args.out).write_text(report.to_json() + "\n", encoding="utf-8")
    lines = [report.render()]
    if not args.no_cache:
        lines.append(
            f"(cache: {session.cache_hits} hits, {session.cache_misses} misses)"
        )
    lines.append("overall: " + ("secure" if report.is_secure else "INSECURE"))
    return "\n".join(lines)


def _command_area(args: argparse.Namespace) -> str:
    rows = [
        comet_area_report(args.nrh).as_row(),
        graphene_area_report(args.nrh).as_row(),
        hydra_area_report(args.nrh).as_row(),
    ]
    return format_table(rows, title=f"storage and area at NRH={args.nrh} (Table 4 row)")


_COMMANDS = {
    "workloads": _command_workloads,
    "list": _command_list,
    "run": _command_run,
    "compare": _command_compare,
    "attack": _command_attack,
    "sweep": _command_sweep,
    "audit": _command_audit,
    "area": _command_area,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
