"""Misra-Gries frequent-item summary, the algorithm behind Graphene.

Graphene (Park et al., MICRO 2020) keeps a small table of ``(row, counter)``
entries per bank and maintains it with the Misra-Gries algorithm: an
activation to a tracked row increments its counter; an activation to an
untracked row either claims an entry whose counter equals the current
*spillover* value or increments the spillover counter.  The structure
guarantees that the true activation count of any row is at most
``entry_counter`` (if tracked) or ``spillover`` (if not), so Graphene can
trigger preventive refreshes before any row reaches the RowHammer threshold.

The number of entries needed is ``ceil(W / T)`` where ``W`` is the maximum
number of activations in the tracking window and ``T`` the Graphene threshold;
that growth is what drives Graphene's area explosion at low thresholds
(Table 1 of the CoMeT paper), which this module also models through
:meth:`MisraGriesSummary.storage_bits`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass
class MisraGriesEntry:
    """One tagged counter entry of a Misra-Gries table."""

    key: int
    count: int


class MisraGriesSummary:
    """Misra-Gries summary with a spillover counter (Graphene's table).

    Parameters
    ----------
    num_entries:
        Number of tagged counter entries.
    key_width_bits:
        Width of the stored tag (DRAM row address bits), for storage modelling.
    counter_width_bits:
        Width of each counter, for storage modelling.
    """

    def __init__(
        self,
        num_entries: int,
        key_width_bits: int = 17,
        counter_width_bits: int = 12,
    ) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self.key_width_bits = key_width_bits
        self.counter_width_bits = counter_width_bits
        self._entries: Dict[int, int] = {}
        self.spillover = 0
        self.total_updates = 0

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def update(self, key: int, amount: int = 1) -> int:
        """Record ``amount`` occurrences of ``key``; return its new estimate."""
        if amount < 0:
            raise ValueError("Misra-Gries does not support negative updates")
        self.total_updates += amount
        for _ in range(amount):
            self._update_once(key)
        return self.estimate(key)

    def _update_once(self, key: int) -> None:
        if key in self._entries:
            self._entries[key] += 1
            return
        if len(self._entries) < self.num_entries:
            # Empty slot available: claim it, starting from the spillover
            # value so the estimate remains an upper bound.
            self._entries[key] = self.spillover + 1
            return
        # Table full: replace an entry whose count equals the spillover value,
        # otherwise increment the spillover counter.
        victim = self._find_entry_at_spillover()
        if victim is not None:
            del self._entries[victim]
            self._entries[key] = self.spillover + 1
        else:
            self.spillover += 1

    def update_batch(self, keys, amount: int = 1) -> None:
        """Sequential updates for every key in ``keys``.

        Misra-Gries is inherently order-sensitive (which entry spills depends
        on the arrival order), and the table is tiny (``ceil(W/T)`` entries
        living in a dict), so there is no numpy batch form — this exists so
        batch consumers have one call site across every sketch type.
        """
        for key in keys:
            self.update(key, amount)

    def _find_entry_at_spillover(self) -> Optional[int]:
        for key, count in self._entries.items():
            if count <= self.spillover:
                return key
        return None

    def estimate(self, key: int) -> int:
        """Upper bound on the number of occurrences of ``key`` since the last reset."""
        if key in self._entries:
            return self._entries[key]
        return self.spillover

    def is_tracked(self, key: int) -> bool:
        return key in self._entries

    def reset(self) -> None:
        """Clear the table (Graphene's periodic reset every tREFW/k)."""
        self._entries.clear()
        self.spillover = 0
        self.total_updates = 0

    def reset_key(self, key: int) -> None:
        """Reset one tracked entry to the spillover value (after a preventive refresh)."""
        if key in self._entries:
            self._entries[key] = self.spillover

    # ------------------------------------------------------------------ #
    # Introspection and storage modelling
    # ------------------------------------------------------------------ #
    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def tracked_items(self) -> Dict[int, int]:
        return dict(self._entries)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data checkpoint of the mutable summary state.

        Entry insertion order is preserved (``_find_entry_at_spillover``
        scans in insertion order, so it is behaviorally significant).
        """
        return {
            "entries": list(self._entries.items()),
            "spillover": self.spillover,
            "total_updates": self.total_updates,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        self._entries = {key: count for key, count in state["entries"]}
        self.spillover = state["spillover"]
        self.total_updates = state["total_updates"]

    @property
    def storage_bits(self) -> int:
        """Storage of the table: tags + counters + the spillover counter."""
        per_entry = self.key_width_bits + self.counter_width_bits
        return self.num_entries * per_entry + self.counter_width_bits

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"MisraGriesSummary(entries={self.num_entries}, "
            f"occupancy={self.occupancy}, spillover={self.spillover})"
        )


def graphene_table_entries(max_activations_in_window: int, threshold: int) -> int:
    """Number of Misra-Gries entries Graphene provisions.

    Graphene sizes its table so that every row that could possibly be
    activated ``threshold`` times in the tracking window has a dedicated
    entry: ``ceil(W / T)`` entries, where ``W`` is the maximum number of row
    activations that fit in the window and ``T`` the Graphene threshold.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if max_activations_in_window < 0:
        raise ValueError("max_activations_in_window must be non-negative")
    return max(1, -(-max_activations_in_window // threshold))
