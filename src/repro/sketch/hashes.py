"""Hash families used by the sketch-based trackers.

CoMeT's hardware implementation uses "simple hash functions that consist of
bit-shift and bit-mask operations, which are easy to implement in hardware"
(Section 4, "Key Components").  :class:`ShiftMaskHashFamily` models exactly
that.  Two additional families are provided for analysis and testing:

* :class:`MultiplyShiftHashFamily` — the classic universal multiply-shift
  scheme, useful as a statistically stronger reference point.
* :class:`TabulationHashFamily` — simple tabulation hashing, a 3-independent
  family often used when modelling counting Bloom filters (BlockHammer).

Every family is deterministic for a given seed so experiments are
reproducible.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Sequence

_MASK64 = (1 << 64) - 1


class HashFamily(ABC):
    """A family of ``num_hashes`` hash functions mapping ints to ``[0, num_buckets)``.

    Parameters
    ----------
    num_hashes:
        Number of independent hash functions in the family.
    num_buckets:
        Size of the output range of each hash function.
    seed:
        Seed controlling the (deterministic) construction of the family.
    """

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        self.num_hashes = num_hashes
        self.num_buckets = num_buckets
        self.seed = seed

    @abstractmethod
    def hash(self, index: int, key: int) -> int:
        """Return the value of hash function ``index`` applied to ``key``."""

    def hash_all(self, key: int) -> List[int]:
        """Return ``[h_0(key), ..., h_{k-1}(key)]``."""
        return [self.hash(i, key) for i in range(self.num_hashes)]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"{type(self).__name__}(num_hashes={self.num_hashes}, "
            f"num_buckets={self.num_buckets}, seed={self.seed})"
        )


class ShiftMaskHashFamily(HashFamily):
    """Hardware-style hash functions built from bit shifts, XOR folding and masking.

    Hash function *i* right-shifts the key by a per-function shift amount,
    XOR-folds the shifted key with the unshifted key, adds a per-function odd
    constant, and reduces modulo the number of buckets.  This mirrors the
    "bit-shift and bit-mask" functions CoMeT implements in its Counter Table
    while still distributing typical row-address streams well.
    """

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        rng = random.Random(seed * 0x9E3779B9 + 0xC0FFEE)
        # Distinct shifts spread hash functions over different bit ranges of
        # the row address; odd multipliers decorrelate sequential addresses.
        self._shifts = [(seed + 3 * i + 1) % 17 + 1 for i in range(num_hashes)]
        self._constants = [rng.getrandbits(32) | 1 for _ in range(num_hashes)]

    def hash(self, index: int, key: int) -> int:
        shift = self._shifts[index]
        constant = self._constants[index]
        folded = (key ^ (key >> shift)) & _MASK64
        mixed = (folded * constant) & _MASK64
        return (mixed >> 7) % self.num_buckets


class MultiplyShiftHashFamily(HashFamily):
    """Universal multiply-shift hashing (Dietzfelbinger et al.).

    ``h_a(x) = ((a * x) mod 2^64) >> (64 - p)`` mapped into ``num_buckets``.
    Provides strong universality guarantees; used as a reference tracker
    configuration in sensitivity tests.
    """

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        rng = random.Random(seed * 0x51ED2701 + 17)
        self._multipliers = [rng.getrandbits(64) | 1 for _ in range(num_hashes)]
        self._addends = [rng.getrandbits(64) for _ in range(num_hashes)]

    def hash(self, index: int, key: int) -> int:
        a = self._multipliers[index]
        b = self._addends[index]
        value = (a * (key & _MASK64) + b) & _MASK64
        return (value >> 17) % self.num_buckets


class TabulationHashFamily(HashFamily):
    """Simple tabulation hashing over 8-bit characters of a 32-bit key.

    Each hash function owns four random lookup tables of 256 entries; the
    hash of a key is the XOR of the table entries selected by the key's
    bytes.  3-independent and very well behaved in practice.
    """

    _NUM_CHARS = 4

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        rng = random.Random(seed * 0xDEADBEEF + 3)
        self._tables: List[List[List[int]]] = [
            [[rng.getrandbits(32) for _ in range(256)] for _ in range(self._NUM_CHARS)]
            for _ in range(num_hashes)
        ]

    def hash(self, index: int, key: int) -> int:
        tables = self._tables[index]
        value = 0
        k = key
        for char_index in range(self._NUM_CHARS):
            value ^= tables[char_index][k & 0xFF]
            k >>= 8
        return value % self.num_buckets


def make_hash_family(
    kind: str, num_hashes: int, num_buckets: int, seed: int = 0
) -> HashFamily:
    """Factory for hash families by name (``shift_mask``, ``multiply_shift``, ``tabulation``)."""
    families = {
        "shift_mask": ShiftMaskHashFamily,
        "multiply_shift": MultiplyShiftHashFamily,
        "tabulation": TabulationHashFamily,
    }
    if kind not in families:
        raise ValueError(f"unknown hash family {kind!r}; expected one of {sorted(families)}")
    return families[kind](num_hashes, num_buckets, seed)


def collision_rate(family: HashFamily, keys: Sequence[int]) -> float:
    """Fraction of key pairs that collide on *all* hash functions of ``family``.

    Used by tests and the false-positive analysis to sanity-check that a hash
    family spreads realistic row-address streams.
    """
    signature_counts: dict = {}
    for key in keys:
        signature = tuple(family.hash_all(key))
        signature_counts[signature] = signature_counts.get(signature, 0) + 1
    n = len(keys)
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0:
        return 0.0
    colliding_pairs = sum(c * (c - 1) // 2 for c in signature_counts.values())
    return colliding_pairs / total_pairs
