"""Hash families used by the sketch-based trackers.

CoMeT's hardware implementation uses "simple hash functions that consist of
bit-shift and bit-mask operations, which are easy to implement in hardware"
(Section 4, "Key Components").  :class:`ShiftMaskHashFamily` models exactly
that.  Two additional families are provided for analysis and testing:

* :class:`MultiplyShiftHashFamily` — the classic universal multiply-shift
  scheme, useful as a statistically stronger reference point.
* :class:`TabulationHashFamily` — simple tabulation hashing, a 3-independent
  family often used when modelling counting Bloom filters (BlockHammer).

Every family is deterministic for a given seed so experiments are
reproducible.  The seed-derived constants of each family are built once per
``(num_hashes, seed)`` pair at module level and shared by every instance:
the per-bank trackers (BlockHammer builds two CBFs per bank, CoMeT one
Counter Table per bank) construct hundreds of families with identical
parameters, and regenerating the constants — or, for tabulation, 4x256
random table entries per hash — on every construction dominated tracker
setup (micro-benchmarked in ``benchmarks/test_micro_address_keys.py``).

When numpy is available (see :mod:`repro._np`) each family also exposes the
same constants as ready-made vectors through :meth:`HashFamily.hash_matrix`,
the batch entry point the numpy-backed sketches use; the scalar and vector
paths read the *same* cached constant tuples, so they cannot drift apart.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from functools import lru_cache
from typing import List, Sequence

from repro._np import np

_MASK64 = (1 << 64) - 1

# Seed salts, hoisted so the scalar constructors and the cached vector
# builders derive identical constant streams from one definition.
_SHIFT_MASK_MULT = 0x9E3779B9
_SHIFT_MASK_ADD = 0xC0FFEE
_MULTIPLY_SHIFT_MULT = 0x51ED2701
_MULTIPLY_SHIFT_ADD = 17
_TABULATION_MULT = 0xDEADBEEF
_TABULATION_ADD = 3


@lru_cache(maxsize=None)
def _shift_mask_params(num_hashes: int, seed: int):
    """(shifts, odd constants) of a shift-mask family, shared across instances."""
    rng = random.Random(seed * _SHIFT_MASK_MULT + _SHIFT_MASK_ADD)
    # Distinct shifts spread hash functions over different bit ranges of
    # the row address; odd multipliers decorrelate sequential addresses.
    shifts = tuple((seed + 3 * i + 1) % 17 + 1 for i in range(num_hashes))
    constants = tuple(rng.getrandbits(32) | 1 for _ in range(num_hashes))
    return shifts, constants


@lru_cache(maxsize=None)
def _multiply_shift_params(num_hashes: int, seed: int):
    """(multipliers, addends) of a multiply-shift family, shared across instances."""
    rng = random.Random(seed * _MULTIPLY_SHIFT_MULT + _MULTIPLY_SHIFT_ADD)
    multipliers = tuple(rng.getrandbits(64) | 1 for _ in range(num_hashes))
    addends = tuple(rng.getrandbits(64) for _ in range(num_hashes))
    return multipliers, addends


@lru_cache(maxsize=None)
def _tabulation_tables(num_hashes: int, seed: int):
    """The 4x256 per-hash lookup tables of a tabulation family (read-only)."""
    rng = random.Random(seed * _TABULATION_MULT + _TABULATION_ADD)
    return tuple(
        tuple(
            tuple(rng.getrandbits(32) for _ in range(256))
            for _ in range(TabulationHashFamily._NUM_CHARS)
        )
        for _ in range(num_hashes)
    )


class HashFamily(ABC):
    """A family of ``num_hashes`` hash functions mapping ints to ``[0, num_buckets)``.

    Parameters
    ----------
    num_hashes:
        Number of independent hash functions in the family.
    num_buckets:
        Size of the output range of each hash function.
    seed:
        Seed controlling the (deterministic) construction of the family.
    """

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        self.num_hashes = num_hashes
        self.num_buckets = num_buckets
        self.seed = seed

    @abstractmethod
    def hash(self, index: int, key: int) -> int:
        """Return the value of hash function ``index`` applied to ``key``."""

    def hash_all(self, key: int) -> List[int]:
        """Return ``[h_0(key), ..., h_{k-1}(key)]``."""
        return [self.hash(i, key) for i in range(self.num_hashes)]

    def hash_matrix(self, keys: Sequence[int]):
        """Bucket indices for a batch of keys, shape ``(num_hashes, len(keys))``.

        Returns a numpy int64 array when numpy is available and every key
        fits an unsigned 64-bit word, otherwise a list of per-hash lists.
        Either way the values are bit-identical to :meth:`hash` (pinned by
        ``tests/test_sketch_vectorized.py``).
        """
        if np is not None:
            try:
                keys_u64 = np.asarray(keys, dtype=np.uint64)
            except (OverflowError, ValueError):
                keys_u64 = None  # out-of-range key: python ints handle it
            if keys_u64 is not None:
                return self._hash_matrix_np(keys_u64)
        return [[self.hash(i, key) for key in keys] for i in range(self.num_hashes)]

    def _hash_matrix_np(self, keys_u64):
        """Vectorized bucket indices (overridden per family when numpy is on)."""
        return np.array(
            [[self.hash(i, int(key)) for key in keys_u64] for i in range(self.num_hashes)],
            dtype=np.int64,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"{type(self).__name__}(num_hashes={self.num_hashes}, "
            f"num_buckets={self.num_buckets}, seed={self.seed})"
        )


class ShiftMaskHashFamily(HashFamily):
    """Hardware-style hash functions built from bit shifts, XOR folding and masking.

    Hash function *i* right-shifts the key by a per-function shift amount,
    XOR-folds the shifted key with the unshifted key, adds a per-function odd
    constant, and reduces modulo the number of buckets.  This mirrors the
    "bit-shift and bit-mask" functions CoMeT implements in its Counter Table
    while still distributing typical row-address streams well.
    """

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        self._shifts, self._constants = _shift_mask_params(num_hashes, seed)
        self._pairs = tuple(zip(self._shifts, self._constants))

    def hash(self, index: int, key: int) -> int:
        shift = self._shifts[index]
        constant = self._constants[index]
        folded = (key ^ (key >> shift)) & _MASK64
        mixed = (folded * constant) & _MASK64
        return (mixed >> 7) % self.num_buckets

    def hash_all(self, key: int) -> List[int]:
        buckets = self.num_buckets
        return [
            ((((key ^ (key >> shift)) & _MASK64) * constant & _MASK64) >> 7) % buckets
            for shift, constant in self._pairs
        ]

    def _hash_matrix_np(self, keys_u64):
        shifts = np.array(self._shifts, dtype=np.uint64)[:, None]
        constants = np.array(self._constants, dtype=np.uint64)[:, None]
        folded = keys_u64[None, :] ^ (keys_u64[None, :] >> shifts)
        mixed = folded * constants  # uint64 arithmetic wraps mod 2**64
        return ((mixed >> np.uint64(7)) % np.uint64(self.num_buckets)).astype(np.int64)


class MultiplyShiftHashFamily(HashFamily):
    """Universal multiply-shift hashing (Dietzfelbinger et al.).

    ``h_a(x) = ((a * x) mod 2^64) >> (64 - p)`` mapped into ``num_buckets``.
    Provides strong universality guarantees; used as a reference tracker
    configuration in sensitivity tests.
    """

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        self._multipliers, self._addends = _multiply_shift_params(num_hashes, seed)
        self._pairs = tuple(zip(self._multipliers, self._addends))

    def hash(self, index: int, key: int) -> int:
        a = self._multipliers[index]
        b = self._addends[index]
        value = (a * (key & _MASK64) + b) & _MASK64
        return (value >> 17) % self.num_buckets

    def hash_all(self, key: int) -> List[int]:
        buckets = self.num_buckets
        masked = key & _MASK64
        return [((a * masked + b & _MASK64) >> 17) % buckets for a, b in self._pairs]

    def _hash_matrix_np(self, keys_u64):
        multipliers = np.array(self._multipliers, dtype=np.uint64)[:, None]
        addends = np.array(self._addends, dtype=np.uint64)[:, None]
        value = multipliers * keys_u64[None, :] + addends  # wraps mod 2**64
        return ((value >> np.uint64(17)) % np.uint64(self.num_buckets)).astype(np.int64)


class TabulationHashFamily(HashFamily):
    """Simple tabulation hashing over 8-bit characters of a 32-bit key.

    Each hash function owns four random lookup tables of 256 entries; the
    hash of a key is the XOR of the table entries selected by the key's
    bytes.  3-independent and very well behaved in practice.
    """

    _NUM_CHARS = 4

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        self._tables = _tabulation_tables(num_hashes, seed)
        self._np_tables = None
        if np is not None:
            self._np_tables = np.array(self._tables, dtype=np.uint64)

    def hash(self, index: int, key: int) -> int:
        tables = self._tables[index]
        value = 0
        k = key
        for char_index in range(self._NUM_CHARS):
            value ^= tables[char_index][k & 0xFF]
            k >>= 8
        return value % self.num_buckets

    def _hash_matrix_np(self, keys_u64):
        value = np.zeros((self.num_hashes, len(keys_u64)), dtype=np.uint64)
        for char_index in range(self._NUM_CHARS):
            chars = (keys_u64 >> np.uint64(8 * char_index)) & np.uint64(0xFF)
            value ^= self._np_tables[:, char_index, :][:, chars.astype(np.int64)]
        return (value % np.uint64(self.num_buckets)).astype(np.int64)


def make_hash_family(
    kind: str, num_hashes: int, num_buckets: int, seed: int = 0
) -> HashFamily:
    """Factory for hash families by name (``shift_mask``, ``multiply_shift``, ``tabulation``)."""
    families = {
        "shift_mask": ShiftMaskHashFamily,
        "multiply_shift": MultiplyShiftHashFamily,
        "tabulation": TabulationHashFamily,
    }
    if kind not in families:
        raise ValueError(f"unknown hash family {kind!r}; expected one of {sorted(families)}")
    return families[kind](num_hashes, num_buckets, seed)


def collision_rate(family: HashFamily, keys: Sequence[int]) -> float:
    """Fraction of key pairs that collide on *all* hash functions of ``family``.

    Used by tests and the false-positive analysis to sanity-check that a hash
    family spreads realistic row-address streams.
    """
    signature_counts: dict = {}
    for key in keys:
        signature = tuple(family.hash_all(key))
        signature_counts[signature] = signature_counts.get(signature, 0) + 1
    n = len(keys)
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0:
        return 0.0
    colliding_pairs = sum(c * (c - 1) // 2 for c in signature_counts.values())
    return colliding_pairs / total_pairs
