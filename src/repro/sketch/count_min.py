"""Count-Min Sketch and the conservative-update variant (CMS-CU).

These are faithful implementations of the structures described in Section 2.3
of the CoMeT paper:

* :class:`CountMinSketch` — a ``k × m`` counter array indexed by ``k`` hash
  functions.  ``update`` increments every counter of an item's counter group;
  ``estimate`` returns the minimum counter of the group.  The estimate never
  underestimates the true frequency and may overestimate it.
* :class:`ConservativeCountMinSketch` — CMS with conservative updates
  (Estan & Varghese): only the counters currently holding the group's minimum
  value are incremented, which reduces overestimation while preserving the
  never-underestimate property.

Both support counter saturation at a configurable ceiling (CoMeT's Counter
Table saturates counters at the preventive refresh threshold and never resets
individual counters) and bulk reset (CoMeT's periodic counter reset).

Counter storage has two interchangeable backends, latched at construction
time: a contiguous numpy int64 array (when numpy is importable and the
:mod:`repro.fastpath` switch is on — the vectorized batch operations and
cheap snapshots ride on it) and a list-of-lists pure-Python fallback.  The
two backends produce bit-identical counts, estimates and snapshots (pinned
by ``tests/test_sketch_vectorized.py``), so a sketch snapshotted under one
backend restores under the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro import fastpath
from repro._np import np
from repro.sketch.hashes import HashFamily, ShiftMaskHashFamily


@dataclass(frozen=True)
class SketchConfig:
    """Configuration of a Count-Min Sketch.

    Attributes
    ----------
    num_hashes:
        Number of hash functions (``k``, the number of counter rows).
    counters_per_hash:
        Number of counters per hash function (``m``, the row width).
    counter_width_bits:
        Width of each counter; counters saturate at ``2**width - 1`` unless a
        lower ``saturation_value`` is given at construction time.
    seed:
        Seed for the hash family.
    hash_kind:
        Name of the hash family (see :func:`repro.sketch.hashes.make_hash_family`).
    """

    num_hashes: int = 4
    counters_per_hash: int = 512
    counter_width_bits: int = 10
    seed: int = 0
    hash_kind: str = "shift_mask"

    @property
    def total_counters(self) -> int:
        return self.num_hashes * self.counters_per_hash

    @property
    def storage_bits(self) -> int:
        """Total storage of the counter array in bits."""
        return self.total_counters * self.counter_width_bits


class CountMinSketch:
    """Classic Count-Min Sketch over integer keys.

    Parameters
    ----------
    config:
        Sketch geometry and hashing configuration.
    hash_family:
        Optional pre-built hash family; when omitted a
        :class:`~repro.sketch.hashes.ShiftMaskHashFamily` is built from the
        config (matching CoMeT's hardware-style hashing).
    saturation_value:
        Optional ceiling for counters.  ``None`` means counters saturate at
        the maximum value representable in ``counter_width_bits``.
    """

    def __init__(
        self,
        config: SketchConfig,
        hash_family: Optional[HashFamily] = None,
        saturation_value: Optional[int] = None,
    ) -> None:
        self.config = config
        if hash_family is None:
            hash_family = ShiftMaskHashFamily(
                config.num_hashes, config.counters_per_hash, seed=config.seed
            )
        if hash_family.num_hashes != config.num_hashes:
            raise ValueError("hash family size does not match config.num_hashes")
        if hash_family.num_buckets != config.counters_per_hash:
            raise ValueError("hash family range does not match config.counters_per_hash")
        self.hash_family = hash_family
        max_representable = (1 << config.counter_width_bits) - 1
        if saturation_value is None:
            saturation_value = max_representable
        if saturation_value > max_representable:
            raise ValueError(
                f"saturation_value {saturation_value} does not fit in "
                f"{config.counter_width_bits}-bit counters"
            )
        self.saturation_value = saturation_value
        # Backend latch: contiguous numpy array vs list-of-lists fallback.
        self._vec = np is not None and fastpath.enabled()
        if self._vec:
            self._array = np.zeros(
                (config.num_hashes, config.counters_per_hash), dtype=np.int64
            )
            self._rows = np.arange(config.num_hashes)
            self._counters: Optional[List[List[int]]] = None
        else:
            self._array = None
            self._counters = [
                [0] * config.counters_per_hash for _ in range(config.num_hashes)
            ]
        self.total_updates = 0

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def counter_group(self, key: int) -> List[int]:
        """Return the counter indices (one per hash row) for ``key``."""
        return self.hash_family.hash_all(key)

    def estimate(self, key: int) -> int:
        """Return the (never-underestimating) frequency estimate for ``key``."""
        indices = self.hash_family.hash_all(key)
        if self._vec:
            array = self._array
            return int(min(array[row, column] for row, column in enumerate(indices)))
        counters = self._counters
        return min(counters[row][column] for row, column in enumerate(indices))

    def update(self, key: int, amount: int = 1) -> int:
        """Record ``amount`` occurrences of ``key`` and return the new estimate."""
        if amount < 0:
            raise ValueError("Count-Min Sketch does not support negative updates")
        indices = self.hash_family.hash_all(key)
        self.total_updates += amount
        saturation = self.saturation_value
        if self._vec:
            array = self._array
            minimum = saturation
            for row, column in enumerate(indices):
                value = int(array[row, column]) + amount
                if value > saturation:
                    value = saturation
                array[row, column] = value
                if value < minimum:
                    minimum = value
            return minimum
        counters = self._counters
        minimum = saturation
        for row, column in enumerate(indices):
            value = counters[row][column] + amount
            if value > saturation:
                value = saturation
            counters[row][column] = value
            if value < minimum:
                minimum = value
        return minimum

    def update_batch(self, keys: Sequence[int], amount: int = 1) -> None:
        """Record ``amount`` occurrences of every key in ``keys``.

        State-equivalent to updating each key in sequence (plain CMS updates
        commute: saturation clamps a monotone sum, so clamping per step or
        once at the end lands on the same counters).  Unlike :meth:`update`
        no per-key estimates are produced — batch callers only need the
        final table.
        """
        if amount < 0:
            raise ValueError("Count-Min Sketch does not support negative updates")
        if not len(keys):
            return
        self.total_updates += amount * len(keys)
        if self._vec:
            matrix = self.hash_family.hash_matrix(keys)
            if isinstance(matrix, list):
                matrix = np.array(matrix, dtype=np.int64)
            array = self._array
            for row in range(self.config.num_hashes):
                np.add.at(array[row], matrix[row], amount)
            np.minimum(array, self.saturation_value, out=array)
            return
        self.total_updates -= amount * len(keys)  # the scalar loop re-adds
        for key in keys:
            self.update(key, amount)

    def set_group(self, key: int, value: int) -> None:
        """Force every counter of ``key``'s group to ``value`` (clamped to saturation).

        CoMeT uses this when a row triggers a preventive refresh: the group's
        counters are set to the preventive refresh threshold so they remain a
        valid over-estimate for every other row sharing them.
        """
        value = min(value, self.saturation_value)
        indices = self.hash_family.hash_all(key)
        if self._vec:
            array = self._array
            for row, column in enumerate(indices):
                if array[row, column] < value:
                    array[row, column] = value
            return
        counters = self._counters
        for row, column in enumerate(indices):
            if counters[row][column] < value:
                counters[row][column] = value

    def reset(self) -> None:
        """Reset every counter to zero (CoMeT's periodic reset / early refresh)."""
        if self._vec:
            self._array.fill(0)
        else:
            for row in self._counters:
                for column in range(len(row)):
                    row[column] = 0
        self.total_updates = 0

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    def is_saturated(self, key: int) -> bool:
        """True when every counter in ``key``'s group is at the saturation value."""
        return self.estimate(key) >= self.saturation_value

    def counter_value(self, row: int, column: int) -> int:
        """Raw value of one counter (used by tests and analysis code)."""
        if self._vec:
            return int(self._array[row, column])
        return self._counters[row][column]

    def counters_snapshot(self) -> List[List[int]]:
        """Deep copy of the counter array (plain Python ints either backend)."""
        if self._vec:
            return self._array.tolist()
        return [list(row) for row in self._counters]

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data checkpoint of the mutable sketch state.

        Geometry, hashing and the saturation ceiling are construction-time
        constants and are not captured; ``restore`` assumes an identically
        configured instance.  The captured counters are plain lists either
        way, so snapshots are backend-portable (and picklable).
        """
        return {
            "counters": self.counters_snapshot(),
            "total_updates": self.total_updates,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        if self._vec:
            self._array = np.array(state["counters"], dtype=np.int64)
        else:
            self._counters = [list(row) for row in state["counters"]]
        self.total_updates = state["total_updates"]

    def max_counter(self) -> int:
        """Largest counter value currently stored."""
        if self._vec:
            return int(self._array.max())
        return max(max(row) for row in self._counters)

    def num_saturated_counters(self) -> int:
        """Number of counters currently at the saturation value."""
        if self._vec:
            return int((self._array >= self.saturation_value).sum())
        return sum(
            1 for row in self._counters for value in row if value >= self.saturation_value
        )

    def estimate_many(self, keys: Sequence[int]) -> List[int]:
        """Vector form of :meth:`estimate` (one fancy-indexed gather on numpy)."""
        if self._vec and len(keys):
            matrix = self.hash_family.hash_matrix(keys)
            if isinstance(matrix, list):
                matrix = np.array(matrix, dtype=np.int64)
            values = self._array[self._rows[:, None], matrix]
            return [int(v) for v in values.min(axis=0)]
        return [self.estimate(key) for key in keys]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"{type(self).__name__}(k={self.config.num_hashes}, "
            f"m={self.config.counters_per_hash}, "
            f"saturation={self.saturation_value}, updates={self.total_updates})"
        )


class ConservativeCountMinSketch(CountMinSketch):
    """Count-Min Sketch with conservative updates (CMS-CU).

    On an update, only counters currently equal to the group minimum are
    incremented (and only up to ``old_minimum + amount``); counters already
    above that target are left untouched.  This is the variant CoMeT's
    Counter Table uses (Section 2.3, "Optimizations").
    """

    def update(self, key: int, amount: int = 1) -> int:
        if amount < 0:
            raise ValueError("Count-Min Sketch does not support negative updates")
        indices = self.hash_family.hash_all(key)
        self.total_updates += amount
        if self._vec:
            array = self._array
            current = [int(array[row, column]) for row, column in enumerate(indices)]
            target = min(min(current) + amount, self.saturation_value)
            for (row, column), value in zip(enumerate(indices), current):
                if value < target:
                    array[row, column] = target
            return target
        counters = self._counters
        current = [counters[row][column] for row, column in enumerate(indices)]
        target = min(min(current) + amount, self.saturation_value)
        for (row, column), value in zip(enumerate(indices), current):
            if value < target:
                counters[row][column] = target
        # The counters at the old minimum were just raised to ``target``, so
        # the group's new minimum — the estimate — is ``target`` itself.
        return target

    def update_batch(self, keys: Sequence[int], amount: int = 1) -> None:
        """Sequential conservative updates for every key in ``keys``.

        CMS-CU is order-sensitive (an earlier update can lift the minimum a
        later colliding key sees), so the batch form is the exact sequential
        loop — it exists so batch callers hit one call site regardless of
        sketch variant, not to reorder the arithmetic.
        """
        for key in keys:
            self.update(key, amount)
