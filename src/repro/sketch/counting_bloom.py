"""Counting Bloom filter, the tracking structure used by BlockHammer.

BlockHammer (Yaglikci et al., HPCA 2021) tracks DRAM row activation *rates*
with a pair of counting Bloom filters (CBFs).  The key structural difference
from CoMeT's Counter Table, called out in Section 8.3 of the CoMeT paper, is
that a CBF's hash functions can map a row to *any* counter in a single shared
counter array, while CoMeT partitions its array into one set per hash
function.  That difference is what produces BlockHammer's higher
false-positive rate in Figure 17, and this module exists so the reproduction
can regenerate that comparison.

The implementation supports the dual-filter, epoch-based operation
BlockHammer uses: two filters alternate between an *active* and a *passive*
role every half refresh window, and the estimate of a row is taken from the
active filter (see :class:`DualCountingBloomFilter`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro import fastpath
from repro._np import np
from repro.sketch.hashes import HashFamily, ShiftMaskHashFamily


class CountingBloomFilter:
    """A counting Bloom filter over integer keys.

    Parameters
    ----------
    num_counters:
        Size of the single shared counter array.
    num_hashes:
        Number of hash functions; all of them index the same array.
    counter_width_bits:
        Width of each counter (counters saturate, they never wrap).
    seed:
        Hash family seed.
    hash_family:
        Optional pre-built hash family with range ``num_counters``.
    """

    def __init__(
        self,
        num_counters: int,
        num_hashes: int,
        counter_width_bits: int = 16,
        seed: int = 0,
        hash_family: Optional[HashFamily] = None,
    ) -> None:
        if num_counters <= 0:
            raise ValueError("num_counters must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_counters = num_counters
        self.num_hashes = num_hashes
        self.counter_width_bits = counter_width_bits
        self.saturation_value = (1 << counter_width_bits) - 1
        if hash_family is None:
            hash_family = ShiftMaskHashFamily(num_hashes, num_counters, seed=seed)
        self.hash_family = hash_family
        # Backend latch (see count_min.py): contiguous numpy array when
        # numpy is importable and the fastpath switch is on, else a plain
        # list.  Both produce bit-identical counts and snapshots.
        self._vec = np is not None and fastpath.enabled()
        if self._vec:
            self._array = np.zeros(num_counters, dtype=np.int64)
            self._counters: Optional[List[int]] = None
        else:
            self._array = None
            self._counters = [0] * num_counters
        self.total_updates = 0

    def indices(self, key: int) -> List[int]:
        """Counter indices touched by ``key`` (may contain duplicates)."""
        return self.hash_family.hash_all(key)

    def update(self, key: int, amount: int = 1) -> int:
        """Record ``amount`` occurrences of ``key`` using conservative updates.

        BlockHammer's CBFs use conservative (minimum-increment) updates, the
        same optimization as CMS-CU, so only counters at the current minimum
        are advanced.
        """
        if amount < 0:
            raise ValueError("counting Bloom filter does not support negative updates")
        self.total_updates += amount
        idx = self.hash_family.hash_all(key)
        if self._vec:
            array = self._array
            current = [int(array[i]) for i in idx]
            target = min(min(current) + amount, self.saturation_value)
            for i, value in zip(idx, current):
                if value < target:
                    array[i] = target
            return target
        counters = self._counters
        current = [counters[i] for i in idx]
        target = min(min(current) + amount, self.saturation_value)
        for i, value in zip(idx, current):
            if value < target:
                counters[i] = target
        # The counters at the old minimum were raised to ``target``, so the
        # group's new minimum — the estimate — is ``target`` itself.
        return target

    def update_batch(self, keys: Sequence[int], amount: int = 1) -> None:
        """Sequential conservative updates for every key in ``keys``.

        Conservative updates are order-sensitive, so the batch form is the
        exact sequential loop (one call site for batch consumers).
        """
        for key in keys:
            self.update(key, amount)

    def estimate(self, key: int) -> int:
        """Never-underestimating frequency estimate of ``key``."""
        if self._vec:
            array = self._array
            return int(min(array[i] for i in self.hash_family.hash_all(key)))
        counters = self._counters
        return min(counters[i] for i in self.hash_family.hash_all(key))

    def contains(self, key: int, threshold: int) -> bool:
        """True when the estimate of ``key`` is at least ``threshold``."""
        return self.estimate(key) >= threshold

    def reset(self) -> None:
        """Clear all counters (epoch rollover)."""
        if self._vec:
            self._array.fill(0)
        else:
            self._counters = [0] * self.num_counters
        self.total_updates = 0

    def counters_snapshot(self) -> List[int]:
        if self._vec:
            return self._array.tolist()
        return list(self._counters)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data checkpoint of the mutable filter state (backend-portable)."""
        return {
            "counters": self.counters_snapshot(),
            "total_updates": self.total_updates,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        if self._vec:
            self._array = np.array(state["counters"], dtype=np.int64)
        else:
            self._counters = list(state["counters"])
        self.total_updates = state["total_updates"]

    @property
    def storage_bits(self) -> int:
        return self.num_counters * self.counter_width_bits

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CountingBloomFilter(num_counters={self.num_counters}, "
            f"num_hashes={self.num_hashes}, updates={self.total_updates})"
        )


class DualCountingBloomFilter:
    """BlockHammer-style pair of CBFs with epoch-based role swapping.

    Both filters are updated on every activation; at the end of each epoch the
    older filter is cleared and the roles swap.  Estimates come from the
    filter that has been accumulating the longest (the *active* filter), which
    guarantees the estimate covers at least one full epoch of history and thus
    never underestimates the activation count within the current epoch.
    """

    def __init__(
        self,
        num_counters: int,
        num_hashes: int,
        counter_width_bits: int = 16,
        seed: int = 0,
    ) -> None:
        self.filters = [
            CountingBloomFilter(num_counters, num_hashes, counter_width_bits, seed=seed),
            CountingBloomFilter(num_counters, num_hashes, counter_width_bits, seed=seed + 1),
        ]
        self.active_index = 0
        self.epoch = 0

    @property
    def active(self) -> CountingBloomFilter:
        return self.filters[self.active_index]

    @property
    def passive(self) -> CountingBloomFilter:
        return self.filters[1 - self.active_index]

    def update(self, key: int, amount: int = 1) -> int:
        """Update both filters; return the active filter's new estimate."""
        self.passive.update(key, amount)
        return self.active.update(key, amount)

    def estimate(self, key: int) -> int:
        return self.active.estimate(key)

    def rollover(self) -> None:
        """End the epoch: clear the active filter and promote the passive one."""
        self.active.reset()
        self.active_index = 1 - self.active_index
        self.epoch += 1

    def reset(self) -> None:
        for f in self.filters:
            f.reset()
        self.active_index = 0
        self.epoch = 0

    @property
    def storage_bits(self) -> int:
        return sum(f.storage_bits for f in self.filters)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data checkpoint: both filters plus the epoch bookkeeping."""
        return {
            "filters": [f.snapshot() for f in self.filters],
            "active_index": self.active_index,
            "epoch": self.epoch,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        for f, sub in zip(self.filters, state["filters"]):
            f.restore(sub)
        self.active_index = state["active_index"]
        self.epoch = state["epoch"]


def false_positive_rate(
    tracker_estimate,
    keys: Sequence[int],
    true_counts: dict,
    threshold: int,
) -> float:
    """Fraction of keys flagged by the tracker that are *not* truly above threshold.

    ``tracker_estimate`` is a callable mapping a key to its estimated count.
    Used by the Figure 17 analysis for both CoMeT's CT and BlockHammer's CBF.
    """
    flagged = [k for k in keys if tracker_estimate(k) >= threshold]
    if not flagged:
        return 0.0
    false = [k for k in flagged if true_counts.get(k, 0) < threshold]
    return len(false) / len(flagged)
