"""Frequent-item-counting substrates used by RowHammer trackers.

This subpackage implements, from scratch, the three summary data structures
that the CoMeT paper and its comparison points are built on:

* :class:`~repro.sketch.count_min.CountMinSketch` and its conservative-update
  variant (:class:`~repro.sketch.count_min.ConservativeCountMinSketch`) —
  the structure underlying CoMeT's Counter Table (Section 2.3 of the paper).
* :class:`~repro.sketch.counting_bloom.CountingBloomFilter` — the structure
  underlying BlockHammer's RowBlocker tracker (Section 8.3).
* :class:`~repro.sketch.misra_gries.MisraGriesSummary` — the frequent-item
  algorithm underlying Graphene (Section 3.2 / 6).

All structures share the never-underestimate/possibly-overestimate contract
that the paper's security argument relies on, and each exposes an
``estimate`` method so the analysis code can compare their false-positive
behaviour (Figure 17).
"""

from repro.sketch.hashes import (
    HashFamily,
    MultiplyShiftHashFamily,
    ShiftMaskHashFamily,
    TabulationHashFamily,
)
from repro.sketch.count_min import CountMinSketch, ConservativeCountMinSketch
from repro.sketch.counting_bloom import CountingBloomFilter
from repro.sketch.misra_gries import MisraGriesSummary

__all__ = [
    "HashFamily",
    "ShiftMaskHashFamily",
    "MultiplyShiftHashFamily",
    "TabulationHashFamily",
    "CountMinSketch",
    "ConservativeCountMinSketch",
    "CountingBloomFilter",
    "MisraGriesSummary",
]
