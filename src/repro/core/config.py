"""CoMeT configuration.

Default values follow the design-space exploration of Section 7.1:

* Counter Table: 4 hash functions x 512 counters per hash function per bank
  (Figure 6), conservative updates, counters saturate at ``NPR``.
* Recent Aggressor Table: 128 entries per bank (Figure 7), 17-bit row tags.
* Counter reset period ``tREFW / k`` with ``k = 3`` and preventive refresh
  threshold ``NPR = NRH / (k + 1)`` (Equation 1, Figure 9).
* Early preventive refresh: 256-entry RAT-miss history vector with an early
  preventive refresh threshold of 25% capacity misses (Figure 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CoMeTConfig:
    """All tunable parameters of CoMeT."""

    nrh: int
    num_hashes: int = 4
    counters_per_hash: int = 512
    rat_entries: int = 128
    reset_period_divider: int = 3          # the "k" of Equation 1
    rat_miss_history_length: int = 256
    early_refresh_threshold_fraction: float = 0.25
    row_tag_bits: int = 17
    blast_radius: int = 1
    hash_seed: int = 0

    def __post_init__(self) -> None:
        if self.nrh <= 0:
            raise ValueError("nrh must be positive")
        if self.num_hashes <= 0 or self.counters_per_hash <= 0:
            raise ValueError("counter table dimensions must be positive")
        if self.rat_entries <= 0:
            raise ValueError("rat_entries must be positive")
        if self.reset_period_divider <= 0:
            raise ValueError("reset_period_divider must be positive")
        if not 0.0 <= self.early_refresh_threshold_fraction <= 1.0:
            raise ValueError("early_refresh_threshold_fraction must be in [0, 1]")
        if self.npr < 1:
            raise ValueError(
                f"NRH={self.nrh} with k={self.reset_period_divider} yields NPR < 1; "
                "use a smaller reset_period_divider"
            )

    # ------------------------------------------------------------------ #
    # Derived parameters
    # ------------------------------------------------------------------ #
    @property
    def npr(self) -> int:
        """Preventive refresh threshold: NPR = NRH / (k + 1)  (Equation 1)."""
        return self.nrh // (self.reset_period_divider + 1)

    @property
    def counter_width_bits(self) -> int:
        """Bits per Counter Table counter: enough to hold NPR (saturating)."""
        return max(1, math.ceil(math.log2(self.npr + 1)))

    @property
    def total_ct_counters(self) -> int:
        return self.num_hashes * self.counters_per_hash

    @property
    def early_refresh_threshold(self) -> int:
        """Capacity misses in the history vector that trigger an early refresh."""
        return max(1, int(self.rat_miss_history_length * self.early_refresh_threshold_fraction))

    def reset_period_cycles(self, trefw_cycles: int) -> int:
        """Counter reset period: tREFW / k."""
        return max(1, trefw_cycles // self.reset_period_divider)

    # ------------------------------------------------------------------ #
    # Storage model (Section 7.2 / Table 4)
    # ------------------------------------------------------------------ #
    @property
    def ct_storage_bits_per_bank(self) -> int:
        return self.total_ct_counters * self.counter_width_bits

    @property
    def rat_storage_bits_per_bank(self) -> int:
        return self.rat_entries * (self.row_tag_bits + self.counter_width_bits)

    @property
    def history_storage_bits_per_bank(self) -> int:
        return self.rat_miss_history_length

    @property
    def storage_bits_per_bank(self) -> int:
        return (
            self.ct_storage_bits_per_bank
            + self.rat_storage_bits_per_bank
            + self.history_storage_bits_per_bank
        )
