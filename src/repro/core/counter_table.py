"""CoMeT's Counter Table (CT).

The CT is a Count-Min Sketch with conservative updates whose counters
saturate at the preventive refresh threshold ``NPR``.  Each DRAM bank has its
own CT (Section 7.2.1), and the CT is only ever reset in bulk — after a
periodic counter reset or an early preventive refresh — never per row,
because counters are shared between rows (Section 4).
"""

from __future__ import annotations

from typing import List

from repro.core.config import CoMeTConfig
from repro.sketch.count_min import ConservativeCountMinSketch, SketchConfig
from repro.sketch.hashes import ShiftMaskHashFamily


class CounterTable:
    """Per-bank hash-based activation counters (CMS-CU saturating at NPR)."""

    def __init__(self, config: CoMeTConfig, bank_seed: int = 0) -> None:
        self.config = config
        sketch_config = SketchConfig(
            num_hashes=config.num_hashes,
            counters_per_hash=config.counters_per_hash,
            counter_width_bits=config.counter_width_bits,
            seed=config.hash_seed + bank_seed,
            hash_kind="shift_mask",
        )
        hash_family = ShiftMaskHashFamily(
            config.num_hashes, config.counters_per_hash, seed=config.hash_seed + bank_seed
        )
        self._sketch = ConservativeCountMinSketch(
            sketch_config, hash_family=hash_family, saturation_value=config.npr
        )

    # ------------------------------------------------------------------ #
    # CoMeT operations (Section 4.1)
    # ------------------------------------------------------------------ #
    def estimate(self, row: int) -> int:
        """Min-counter estimate of the row's activation count (never underestimates)."""
        return self._sketch.estimate(row)

    def increment(self, row: int) -> int:
        """Conservative-update increment of the row's counter group."""
        return self._sketch.update(row, 1)

    def saturate(self, row: int) -> None:
        """Set every counter in the row's group to NPR (after a preventive refresh)."""
        self._sketch.set_group(row, self.config.npr)

    def is_saturated(self, row: int) -> bool:
        """True when the row's estimate has reached NPR."""
        return self._sketch.estimate(row) >= self.config.npr

    def reset(self) -> None:
        """Bulk reset (periodic reset or early preventive refresh)."""
        self._sketch.reset()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def counter_group(self, row: int) -> List[int]:
        return self._sketch.counter_group(row)

    def num_saturated_counters(self) -> int:
        return self._sketch.num_saturated_counters()

    def counters_snapshot(self) -> List[List[int]]:
        return self._sketch.counters_snapshot()

    def snapshot(self) -> dict:
        """Plain-data checkpoint (delegates to the underlying sketch)."""
        return self._sketch.snapshot()

    def restore(self, state: dict) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        self._sketch.restore(state)

    @property
    def npr(self) -> int:
        return self.config.npr

    @property
    def storage_bits(self) -> int:
        return self.config.ct_storage_bits_per_bank
