"""The CoMeT RowHammer mitigation mechanism (Section 4 of the paper).

Operation on every row activation (Section 4.1):

1. **Periodic reset** (lazy): if the counter reset period (``tREFW / k``)
   elapsed, all Counter Table and RAT counters are cleared.
2. **Activation count estimation**: the activation count is the row's RAT
   counter if the row has a RAT entry, otherwise the minimum of its Counter
   Table counter group.
3. **Update / preventive refresh**: if the updated count reaches the
   preventive refresh threshold ``NPR = NRH / (k+1)``, CoMeT preventively
   refreshes the row's two neighbours, saturates the row's CT counter group
   at ``NPR`` and (re)allocates a RAT entry with counter 0; otherwise it
   increments the RAT counter (if present) or the CT counter group
   (conservative update).
4. **Early preventive refresh** (Section 4.2): every RAT miss by a row whose
   CT counters were *already* at ``NPR`` is a capacity miss (the row was
   evicted from the RAT); if the RAT-miss history vector holds more capacity
   misses than the early-preventive-refresh threshold, CoMeT refreshes the
   whole rank (tREFW/tREFI REF commands) and resets all counters.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.core.config import CoMeTConfig
from repro.core.counter_table import CounterTable
from repro.core.rat import RecentAggressorTable
from repro.dram.address import DRAMAddress
from repro.mitigations.base import RowHammerMitigation
from repro.experiment.registry import register_mitigation

BankKey = Tuple[int, int, int, int]


class _BankTracker:
    """Per-bank CoMeT state: one Counter Table, one RAT, one miss-history vector."""

    def __init__(self, config: CoMeTConfig, bank_seed: int) -> None:
        self.counter_table = CounterTable(config, bank_seed=bank_seed)
        self.rat = RecentAggressorTable(config.rat_entries, seed=bank_seed)
        self.miss_history: Deque[int] = deque(maxlen=config.rat_miss_history_length)

    def reset(self) -> None:
        self.counter_table.reset()
        self.rat.reset()
        self.miss_history.clear()

    @property
    def capacity_misses_in_history(self) -> int:
        return sum(self.miss_history)


@register_mitigation("comet")
class CoMeT(RowHammerMitigation):
    """Count-Min-Sketch-based row tracking to mitigate RowHammer at low cost."""

    name = "comet"

    def __init__(
        self,
        nrh: int,
        config: Optional[CoMeTConfig] = None,
        blast_radius: int = 1,
    ) -> None:
        super().__init__(nrh=nrh, blast_radius=blast_radius)
        self.config = config or CoMeTConfig(nrh=nrh, blast_radius=blast_radius)
        self._banks: Dict[BankKey, _BankTracker] = {}
        self._next_reset_cycle: Optional[int] = None
        self._reset_period: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def attach(self, controller) -> None:
        super().attach(controller)
        self._reset_period = self.config.reset_period_cycles(self.dram_config.tREFW)
        self._next_reset_cycle = self._reset_period

    def bank_tracker(self, bank_key: BankKey) -> _BankTracker:
        tracker = self._banks.get(bank_key)
        if tracker is None:
            seed = self.config.hash_seed + (hash(bank_key) % 997)
            tracker = _BankTracker(self.config, bank_seed=seed)
            self._banks[bank_key] = tracker
        return tracker

    # ------------------------------------------------------------------ #
    # Main event hook (Section 4.1)
    # ------------------------------------------------------------------ #
    def on_activation(self, cycle: int, address: DRAMAddress, is_preventive: bool) -> None:
        # Preventive ACTs are tracked like any other activation: the Counter
        # Table counts every ACT command the scheduler issues, and a
        # preventively refreshed victim row disturbs *its* neighbours, so
        # skipping these would leave refresh storms unobserved.
        self._maybe_periodic_reset(cycle)
        self.stats.observed_activations += 1

        tracker = self.bank_tracker(address.bank_key)
        row = address.row
        npr = self.config.npr

        # Step 2: activation count estimation (RAT wins over CT when present).
        rat_value = tracker.rat.lookup(row)
        in_rat = rat_value is not None
        ct_estimate = tracker.counter_table.estimate(row)
        estimate = rat_value if in_rat else ct_estimate
        updated_count = estimate + 1

        # Step 3: update counters / trigger a preventive refresh.
        if updated_count >= npr:
            self._handle_aggressor(cycle, address, tracker, in_rat, ct_estimate)
        else:
            if in_rat:
                tracker.rat.increment(row)
            else:
                tracker.counter_table.increment(row)

    def _handle_aggressor(
        self,
        cycle: int,
        address: DRAMAddress,
        tracker: _BankTracker,
        in_rat: bool,
        ct_estimate: int,
    ) -> None:
        row = address.row
        npr = self.config.npr

        self.refresh_victims(cycle, address)
        tracker.counter_table.saturate(row)

        if in_rat:
            tracker.rat.set(row, 0)
            return

        # RAT miss: classify it for the early-preventive-refresh mechanism.
        # A row whose CT counters were already at NPR before this activation
        # must have been identified as an aggressor earlier in this reset
        # period and then evicted from the RAT -> capacity miss.
        capacity_miss = ct_estimate >= npr
        tracker.miss_history.append(1 if capacity_miss else 0)
        if capacity_miss:
            tracker.rat.stats.capacity_misses += 1
        else:
            tracker.rat.stats.compulsory_misses += 1

        evicted = tracker.rat.allocate(row, 0)
        if evicted is not None:
            self.stats.bump("rat_evictions")

        # Step 4: early preventive refresh at coarse granularity (Section 4.2).
        if tracker.capacity_misses_in_history >= self.config.early_refresh_threshold:
            self._early_preventive_refresh(cycle, address)

    # ------------------------------------------------------------------ #
    # Early preventive refresh (Section 4.2)
    # ------------------------------------------------------------------ #
    def _early_preventive_refresh(self, cycle: int, address: DRAMAddress) -> None:
        """Refresh every row of the rank and reset all counters of its banks."""
        refresh_commands = max(1, self.dram_config.tREFW // self.dram_config.tREFI)
        self.controller.schedule_rank_refresh(address.channel, address.rank, refresh_commands)
        self.stats.early_refresh_operations += 1
        for bank_key, tracker in self._banks.items():
            if bank_key[0] == address.channel and bank_key[1] == address.rank:
                tracker.reset()

    # ------------------------------------------------------------------ #
    # Periodic counter reset (Section 4.3)
    # ------------------------------------------------------------------ #
    def _maybe_periodic_reset(self, cycle: int) -> None:
        if self._next_reset_cycle is None or cycle < self._next_reset_cycle:
            return
        while cycle >= self._next_reset_cycle:
            self._next_reset_cycle += self._reset_period
        for tracker in self._banks.values():
            tracker.reset()
        self.stats.counter_resets += 1

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def _snapshot_state(self) -> Dict:
        return {
            "banks": {
                bank_key: {
                    "counter_table": tracker.counter_table.snapshot(),
                    "rat": tracker.rat.snapshot(),
                    "miss_history": list(tracker.miss_history),
                }
                for bank_key, tracker in self._banks.items()
            },
            "next_reset_cycle": self._next_reset_cycle,
        }

    def _restore_state(self, state: Dict) -> None:
        self._banks = {}
        for bank_key, bank_state in state["banks"].items():
            tracker = self.bank_tracker(tuple(bank_key))
            tracker.counter_table.restore(bank_state["counter_table"])
            tracker.rat.restore(bank_state["rat"])
            tracker.miss_history.clear()
            tracker.miss_history.extend(bank_state["miss_history"])
        self._next_reset_cycle = state["next_reset_cycle"]

    # ------------------------------------------------------------------ #
    # Storage model (Section 7.2 / Table 4)
    # ------------------------------------------------------------------ #
    def storage_bits_per_bank(self) -> int:
        return self.config.storage_bits_per_bank

    def storage_report(self) -> Dict[str, float]:
        banks = self.bank_count() if self.dram_config is not None else 32
        ct_bits = self.config.ct_storage_bits_per_bank * banks
        rat_bits = self.config.rat_storage_bits_per_bank * banks
        history_bits = self.config.history_storage_bits_per_bank * banks
        total = ct_bits + rat_bits + history_bits
        return {
            "ct_KiB": ct_bits / 8 / 1024,
            "rat_KiB": rat_bits / 8 / 1024,
            "history_KiB": history_bits / 8 / 1024,
            "total_KiB": total / 8 / 1024,
        }

    # ------------------------------------------------------------------ #
    # Introspection used by tests and analysis
    # ------------------------------------------------------------------ #
    def estimate(self, bank_key: BankKey, row: int) -> int:
        """Current activation-count estimate for a row (RAT first, then CT)."""
        tracker = self.bank_tracker(bank_key)
        if tracker.rat.contains(row):
            return tracker.rat.entries_snapshot()[row]
        return tracker.counter_table.estimate(row)
