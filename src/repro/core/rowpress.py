"""RowPress-aware threshold adaptation (Section 3.1 of the paper).

RowPress (Luo et al., ISCA 2023) induces bitflips by keeping a DRAM row open
for a long time; under realistic conditions it lowers the effective
disturbance budget by one to two orders of magnitude relative to classic
RowHammer.  The CoMeT paper argues that existing activation-count-based
mitigations can be adapted to RowPress by (i) limiting how long a row may
stay open and (ii) triggering preventive actions at smaller activation counts
that correspond to the allowed row-open time.

This module implements that adaptation for CoMeT (and for any mitigation in
this package, since they all take an ``nrh`` parameter):

* :func:`effective_rowhammer_threshold` converts a RowHammer threshold plus a
  maximum row-open time into the *effective* threshold a tracker must enforce;
* :class:`RowPressAwareConfig` wraps the conversion and produces a
  :class:`~repro.core.config.CoMeTConfig` configured for the reduced budget;
* :func:`row_open_time_cap_cycles` computes the row-open-time cap the memory
  controller should enforce (the paper's adaptation (i)), given DDR4 timings.

The default RowPress coefficients follow the characterization summarized in
the RowPress paper: the longer a row stays open per activation, the fewer
activations are needed to disturb a neighbour.  The model is deliberately
simple (a piecewise-linear interpolation in log-time), which is sufficient for
the sensitivity analysis exercised by the tests and the ablation benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import CoMeTConfig
from repro.dram.config import DRAMTiming

#: (row open time in nanoseconds, threshold reduction factor) anchor points.
#: With the minimum row-open time (tRAS ~ 32 ns) the classic RowHammer
#: threshold applies (factor 1); holding rows open for micro- to milliseconds
#: reduces the activation budget by one to two orders of magnitude.
DEFAULT_ROWPRESS_ANCHORS: Tuple[Tuple[float, float], ...] = (
    (36.0, 1.0),
    (1_000.0, 0.5),
    (10_000.0, 0.1),
    (100_000.0, 0.02),
    (1_000_000.0, 0.01),
)


def rowpress_reduction_factor(
    row_open_time_ns: float,
    anchors: Sequence[Tuple[float, float]] = DEFAULT_ROWPRESS_ANCHORS,
) -> float:
    """Fraction of the RowHammer activation budget that remains at a row-open time.

    Piecewise log-linear interpolation between the anchor points; clamped to
    the first/last anchor outside the characterized range.
    """
    if row_open_time_ns <= 0:
        raise ValueError("row_open_time_ns must be positive")
    anchors = sorted(anchors)
    if row_open_time_ns <= anchors[0][0]:
        return anchors[0][1]
    if row_open_time_ns >= anchors[-1][0]:
        return anchors[-1][1]
    for (t0, f0), (t1, f1) in zip(anchors, anchors[1:]):
        if t0 <= row_open_time_ns <= t1:
            # Interpolate in log(time) against log(factor).
            position = (math.log(row_open_time_ns) - math.log(t0)) / (
                math.log(t1) - math.log(t0)
            )
            return math.exp(
                math.log(f0) + position * (math.log(f1) - math.log(f0))
            )
    return anchors[-1][1]  # pragma: no cover - unreachable


def effective_rowhammer_threshold(
    nrh: int,
    max_row_open_time_ns: float,
    anchors: Sequence[Tuple[float, float]] = DEFAULT_ROWPRESS_ANCHORS,
) -> int:
    """Effective activation threshold once RowPress at a given open time is considered.

    This is the threshold an activation-count tracker must protect to also
    prevent RowPress bitflips when rows may stay open for up to
    ``max_row_open_time_ns`` per activation.
    """
    if nrh <= 0:
        raise ValueError("nrh must be positive")
    factor = rowpress_reduction_factor(max_row_open_time_ns, anchors)
    return max(1, int(nrh * factor))


def row_open_time_cap_cycles(
    timing: Optional[DRAMTiming] = None,
    target_factor: float = 0.5,
    anchors: Sequence[Tuple[float, float]] = DEFAULT_ROWPRESS_ANCHORS,
) -> int:
    """Row-open-time cap (in DRAM cycles) that keeps the RowPress penalty bounded.

    Returns the largest row-open time whose reduction factor is still at least
    ``target_factor``, expressed in DRAM clock cycles; the memory controller
    can enforce it by issuing PRE at that deadline (adaptation (i) in the
    paper).  Never smaller than tRAS.
    """
    timing = timing or DRAMTiming()
    if not 0 < target_factor <= 1:
        raise ValueError("target_factor must be in (0, 1]")
    best_time_ns = sorted(anchors)[0][0]
    for time_ns in _log_space(sorted(anchors)[0][0], sorted(anchors)[-1][0], 200):
        if rowpress_reduction_factor(time_ns, anchors) >= target_factor:
            best_time_ns = time_ns
        else:
            break
    return max(timing.tRAS, timing.cycles(best_time_ns))


def _log_space(start: float, stop: float, count: int) -> List[float]:
    log_start, log_stop = math.log(start), math.log(stop)
    return [
        math.exp(log_start + i * (log_stop - log_start) / (count - 1)) for i in range(count)
    ]


@dataclass(frozen=True)
class RowPressAwareConfig:
    """Produces CoMeT configurations that also cover RowPress.

    Attributes
    ----------
    nrh:
        The classic RowHammer threshold of the DRAM chips.
    max_row_open_time_ns:
        The longest a row may stay open per activation (enforced by the
        memory controller's row policy).
    """

    nrh: int
    max_row_open_time_ns: float = 36.0

    @property
    def effective_nrh(self) -> int:
        return effective_rowhammer_threshold(self.nrh, self.max_row_open_time_ns)

    def comet_config(self, **overrides) -> CoMeTConfig:
        """A CoMeTConfig protecting the RowPress-adjusted threshold."""
        return CoMeTConfig(nrh=self.effective_nrh, **overrides)

    def describe(self) -> str:
        return (
            f"NRH={self.nrh}, row open time <= {self.max_row_open_time_ns} ns "
            f"-> effective threshold {self.effective_nrh}"
        )
