"""Crash-safe filesystem primitives shared by the on-disk caches and stores.

Every byte the sweep cache (:mod:`repro.sim.sweep`) or the campaign result
store (:mod:`repro.campaign.store`) persists goes through
:func:`atomic_write_bytes`: the payload lands in a same-directory temporary
file first and is published with :func:`os.replace`, which POSIX guarantees
to be atomic.  A reader therefore only ever sees a complete file or no file
— never a torn write from a worker that was killed mid-``write``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union


def atomic_write_bytes(path: Union[str, Path], payload: bytes) -> Path:
    """Write ``payload`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives in the target directory (``os.replace`` must
    not cross filesystems) and carries the writer's PID so concurrent
    writers of the same path never collide on the temp name; the loser of a
    concurrent publish simply overwrites the winner with identical-or-newer
    content.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with tmp.open("wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        # A failed replace (or an exception mid-write) must not leave the
        # temp file behind to be mistaken for a record by directory scans.
        if tmp.exists():
            tmp.unlink(missing_ok=True)
    return path


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Text-mode convenience wrapper over :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding))


__all__ = ["atomic_write_bytes", "atomic_write_text"]
