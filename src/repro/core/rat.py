"""CoMeT's Recent Aggressor Table (RAT).

The RAT is a small, per-bank table of tagged per-row counters.  An entry is
allocated only when a row's Counter Table estimate reaches the preventive
refresh threshold ``NPR``; from then on the row's activation count comes from
its (exact) RAT counter rather than from the saturated sketch counters, which
is what prevents repeated unnecessary preventive refreshes (Section 4).

When the RAT is full a random victim entry is evicted (Section 4.1, step 3);
the evicted row falls back to its saturated CT counters, which is safe (the
estimate is an overestimate) but may cause an unnecessary refresh on its next
activation — the effect that the early-preventive-refresh mechanism and
Figure 8 are about.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class RATStatistics:
    """RAT behaviour counters used by the Figure 8 analysis."""

    allocations: int = 0
    evictions: int = 0
    hits: int = 0
    misses: int = 0
    capacity_misses: int = 0
    compulsory_misses: int = 0

    @property
    def occupancy_pressure(self) -> float:
        """Fraction of misses caused by capacity (vs. compulsory) misses."""
        if self.misses == 0:
            return 0.0
        return self.capacity_misses / self.misses


class RecentAggressorTable:
    """Per-bank table of tagged per-row activation counters with random eviction."""

    def __init__(self, num_entries: int, seed: int = 0) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self._entries: Dict[int, int] = {}
        self._rng = random.Random(seed)
        self.stats = RATStatistics()

    # ------------------------------------------------------------------ #
    # Lookup / update
    # ------------------------------------------------------------------ #
    def lookup(self, row: int) -> Optional[int]:
        """Counter value for ``row`` or None when the row has no entry."""
        value = self._entries.get(row)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def contains(self, row: int) -> bool:
        return row in self._entries

    def increment(self, row: int) -> int:
        """Increment an existing entry; raises KeyError when absent."""
        self._entries[row] += 1
        return self._entries[row]

    def set(self, row: int, value: int) -> None:
        """Overwrite an existing entry's counter (used after preventive refresh)."""
        if row not in self._entries:
            raise KeyError(f"row {row} has no RAT entry")
        self._entries[row] = value

    def allocate(self, row: int, value: int = 0) -> Optional[int]:
        """Allocate an entry for ``row``; returns the evicted row, if any."""
        evicted = None
        if row in self._entries:
            self._entries[row] = value
            return None
        if len(self._entries) >= self.num_entries:
            evicted = self._rng.choice(list(self._entries.keys()))
            del self._entries[evicted]
            self.stats.evictions += 1
        self._entries[row] = value
        self.stats.allocations += 1
        return evicted

    def reset(self) -> None:
        """Clear the table (periodic reset / early preventive refresh)."""
        self._entries.clear()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.num_entries

    def entries_snapshot(self) -> Dict[int, int]:
        return dict(self._entries)

    def snapshot(self) -> dict:
        """Plain-data checkpoint: entries (ordered), RNG state and statistics.

        The RNG state is included because random eviction draws from it —
        restoring must reproduce the identical eviction sequence.
        """
        return {
            "entries": list(self._entries.items()),
            "rng_state": self._rng.getstate(),
            "stats": dict(vars(self.stats)),
        }

    def restore(self, state: dict) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        self._entries = {row: count for row, count in state["entries"]}
        self._rng.setstate(state["rng_state"])
        for key, value in state["stats"].items():
            setattr(self.stats, key, value)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RecentAggressorTable(entries={self.num_entries}, "
            f"occupancy={self.occupancy})"
        )
