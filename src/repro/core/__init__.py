"""CoMeT: Count-Min-Sketch-based row tracking (the paper's contribution).

The mechanism combines two per-bank structures:

* :class:`~repro.core.counter_table.CounterTable` — a Count-Min Sketch with
  conservative updates whose counters saturate at the preventive refresh
  threshold ``NPR`` and are only reset in bulk (periodic reset / early
  preventive refresh);
* :class:`~repro.core.rat.RecentAggressorTable` — a small table of tagged
  per-row counters allocated to rows that reached ``NPR``, so saturated
  sketch counters do not keep triggering unnecessary refreshes.

:class:`~repro.core.comet.CoMeT` wires both into the
:class:`~repro.mitigations.base.RowHammerMitigation` interface together with
the RAT-miss-history-driven early preventive refresh and the periodic counter
reset of Sections 4.1-4.3.
"""

from repro.core.config import CoMeTConfig
from repro.core.counter_table import CounterTable
from repro.core.rat import RecentAggressorTable, RATStatistics
from repro.core.comet import CoMeT

__all__ = [
    "CoMeTConfig",
    "CounterTable",
    "RecentAggressorTable",
    "RATStatistics",
    "CoMeT",
]
