"""DDR4 DRAM device model.

This subpackage is the reproduction's substitute for Ramulator's DRAM model:
a command-granularity, timing-accurate model of a DDR4 memory system
(channel / rank / bank-group / bank / row / column) sufficient to reproduce
the command streams, bandwidth contention and refresh behaviour that the
CoMeT paper's evaluation depends on.

Main entry points:

* :class:`~repro.dram.config.DRAMConfig` — organization + timing parameters
  (defaults model the paper's DDR4 configuration in Table 2).
* :class:`~repro.dram.address.AddressMapper` — physical address to DRAM
  coordinate translation.
* :class:`~repro.dram.dram_system.DRAMSystem` — the device model itself:
  accepts commands, enforces every timing constraint, tracks open rows and
  per-row activation counts (used by the security verifier).
"""

from repro.dram.config import DRAMConfig, DRAMTiming, DRAMOrganization
from repro.dram.commands import Command, CommandKind
from repro.dram.address import AddressMapper, DRAMAddress
from repro.dram.bank import Bank, BankState
from repro.dram.dram_system import DRAMSystem, Rank

__all__ = [
    "DRAMConfig",
    "DRAMTiming",
    "DRAMOrganization",
    "Command",
    "CommandKind",
    "AddressMapper",
    "DRAMAddress",
    "Bank",
    "BankState",
    "Rank",
    "DRAMSystem",
]
