"""Rank- and channel-level DRAM device model.

:class:`DRAMSystem` owns every bank of every rank of every channel, enforces
the cross-bank constraints (tRRD, tFAW, tCCD, data-bus occupancy, read/write
turnaround, tRFC) and exposes two operations to the memory controller:

* :meth:`DRAMSystem.earliest_issue_cycle` — the first cycle at or after a
  given cycle at which a command would be legal, and
* :meth:`DRAMSystem.issue` — apply the command, updating all state.

The model also maintains the ground-truth row activation bookkeeping that the
security verifier and the RowHammer mitigations observe: observers can be
registered for row activations and for row refreshes (both periodic REF
coverage and preventive ACT-based refreshes).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro import fastpath
from repro.dram.address import DRAMAddress
from repro.dram.bank import Bank, BankTimingTable, TimingViolation
from repro.dram.commands import Command, CommandKind
from repro.dram.config import DRAMConfig


ActivationObserver = Callable[[int, DRAMAddress, bool], None]
RefreshObserver = Callable[[int, Tuple[int, int], int, int], None]
RowRefreshObserver = Callable[[int, DRAMAddress], None]

#: Batched activation observers receive SoA columns of buffered ACT events:
#: ``observer(cycles, addresses, flags)`` with three equal-length sequences.
BatchActivationObserver = Callable[[List[int], List[DRAMAddress], List[bool]], None]

#: Flush the batched-ACT buffer once it holds this many events even if no
#: natural drain point (refresh boundary, snapshot, run end) arrives first —
#: bounds buffer memory and keeps batch sizes cache-friendly.
_BATCH_FLUSH_LIMIT = 256


@dataclass
class DRAMStatistics:
    """Global command counts, used by the energy model and reports.

    The fields below the fold are DDR5-era accounting inputs for the
    energy model: ``refresh_rows`` (rows covered by periodic REFs, so
    fine-granularity refresh is charged by coverage rather than per
    command), ``rfms`` (RFM commands), ``in_dram_refresh_rows`` (victim
    rows the device refreshed itself during RFM/ABO service) and
    ``counter_updates`` (PRAC per-row counter read-modify-writes).  They
    are deliberately *not* part of :meth:`as_dict` — the seven-key report
    shape is pinned by the golden records — but they snapshot/restore and
    aggregate across channels like every other field.
    """

    acts: int = 0
    pres: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    preventive_acts: int = 0
    preventive_refresh_pairs: int = 0
    refresh_rows: int = 0
    rfms: int = 0
    in_dram_refresh_rows: int = 0
    counter_updates: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "acts": self.acts,
            "pres": self.pres,
            "reads": self.reads,
            "writes": self.writes,
            "refreshes": self.refreshes,
            "preventive_acts": self.preventive_acts,
            "preventive_refresh_pairs": self.preventive_refresh_pairs,
        }


class Rank:
    """One DRAM rank: a set of banks plus rank-scoped timing state.

    ``table``/``index_base`` place this rank's banks in the DRAM system's
    shared :class:`~repro.dram.bank.BankTimingTable` (dense, contiguous
    slots); standalone construction creates a private table.
    """

    def __init__(
        self,
        config: DRAMConfig,
        channel: int,
        rank: int,
        table: Optional[BankTimingTable] = None,
        index_base: int = 0,
    ) -> None:
        self.config = config
        self.channel = channel
        self.rank = rank
        org = config.organization
        timing = config.timing
        num_banks = org.bankgroups_per_rank * org.banks_per_bankgroup
        if table is None:
            table = BankTimingTable(num_banks)
            index_base = 0
        self.table = table
        self._bank_indices = range(index_base, index_base + num_banks)
        self.banks: Dict[Tuple[int, int], Bank] = {}
        index = index_base
        for bankgroup in range(org.bankgroups_per_rank):
            for bank in range(org.banks_per_bankgroup):
                key = (bankgroup, bank)
                self.banks[key] = Bank(
                    timing,
                    org.rows_per_bank,
                    bank_key=(channel, rank, bankgroup, bank),
                    table=table,
                    index=index,
                )
                index += 1
        # Rank-level ACT constraints.
        self.last_act_cycle = -(10**9)
        self.last_act_bankgroup: Optional[int] = None
        self.recent_act_cycles: Deque[int] = deque(maxlen=4)
        # Column command constraints (per rank, bank-group aware).
        self.last_col_cycle = -(10**9)
        self.last_col_bankgroup: Optional[int] = None
        self.last_col_was_write = False
        self.last_col_data_end = -(10**9)
        # Refresh state.
        self.blocked_until = 0
        self.refresh_row_pointer = 0

    # ------------------------------------------------------------------ #
    # Constraint queries
    # ------------------------------------------------------------------ #
    def earliest_act(self, cycle: int, bankgroup: int, bank: int) -> int:
        timing = self.config.timing
        target = self.banks[(bankgroup, bank)]
        earliest = max(cycle, target.earliest_activate(), self.blocked_until)
        if self.last_act_bankgroup is not None:
            rrd = (
                timing.tRRD_L
                if bankgroup == self.last_act_bankgroup
                else timing.tRRD_S
            )
            earliest = max(earliest, self.last_act_cycle + rrd)
        if len(self.recent_act_cycles) == self.recent_act_cycles.maxlen:
            earliest = max(earliest, self.recent_act_cycles[0] + timing.tFAW)
        return earliest

    def earliest_pre(self, cycle: int, bankgroup: int, bank: int) -> int:
        target = self.banks[(bankgroup, bank)]
        return max(cycle, target.earliest_precharge(), self.blocked_until)

    def earliest_column(
        self, cycle: int, bankgroup: int, bank: int, is_write: bool
    ) -> int:
        timing = self.config.timing
        target = self.banks[(bankgroup, bank)]
        earliest = max(cycle, target.earliest_column(is_write), self.blocked_until)
        if self.last_col_bankgroup is not None:
            ccd = (
                timing.tCCD_L
                if bankgroup == self.last_col_bankgroup
                else timing.tCCD_S
            )
            earliest = max(earliest, self.last_col_cycle + ccd)
            if self.last_col_was_write and not is_write:
                wtr = (
                    timing.tWTR_L
                    if bankgroup == self.last_col_bankgroup
                    else timing.tWTR_S
                )
                earliest = max(earliest, self.last_col_data_end + wtr)
            if not self.last_col_was_write and is_write:
                earliest = max(earliest, self.last_col_cycle + timing.tRTW)
        return earliest

    def earliest_refresh(self, cycle: int) -> int:
        """A REF may issue once every bank is precharged and tRP has elapsed."""
        earliest = max(cycle, self.blocked_until)
        table = self.table
        tRP = self.config.timing.tRP
        for i in self._bank_indices:
            if table.open_row[i] is not None:
                # The controller must precharge first; report the earliest
                # cycle the bank could be closed and reopened for REF.
                candidate = table.next_pre[i] + tRP
            else:
                candidate = table.next_act[i]
            if candidate > earliest:
                earliest = candidate
        return earliest

    def all_banks_closed(self) -> bool:
        table = self.table
        return all(table.open_row[i] is None for i in self._bank_indices)

    # ------------------------------------------------------------------ #
    # Command application
    # ------------------------------------------------------------------ #
    def apply_act(self, cycle: int, bankgroup: int, bank: int, row: int, preventive: bool) -> None:
        self.banks[(bankgroup, bank)].activate(cycle, row, preventive=preventive)
        self.last_act_cycle = cycle
        self.last_act_bankgroup = bankgroup
        self.recent_act_cycles.append(cycle)

    def apply_pre(self, cycle: int, bankgroup: int, bank: int) -> None:
        self.banks[(bankgroup, bank)].precharge(cycle)

    def apply_column(
        self, cycle: int, bankgroup: int, bank: int, row: int, is_write: bool
    ) -> int:
        target = self.banks[(bankgroup, bank)]
        data_end = target.write(cycle, row) if is_write else target.read(cycle, row)
        self.last_col_cycle = cycle
        self.last_col_bankgroup = bankgroup
        self.last_col_was_write = is_write
        self.last_col_data_end = data_end
        return data_end

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict:
        """Plain-data checkpoint of the rank-scoped state plus its banks."""
        return {
            "last_act_cycle": self.last_act_cycle,
            "last_act_bankgroup": self.last_act_bankgroup,
            "recent_act_cycles": list(self.recent_act_cycles),
            "last_col_cycle": self.last_col_cycle,
            "last_col_bankgroup": self.last_col_bankgroup,
            "last_col_was_write": self.last_col_was_write,
            "last_col_data_end": self.last_col_data_end,
            "blocked_until": self.blocked_until,
            "refresh_row_pointer": self.refresh_row_pointer,
            "banks": {key: bank.snapshot() for key, bank in self.banks.items()},
        }

    def restore(self, state: Dict) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        self.last_act_cycle = state["last_act_cycle"]
        self.last_act_bankgroup = state["last_act_bankgroup"]
        self.recent_act_cycles.clear()
        self.recent_act_cycles.extend(state["recent_act_cycles"])
        self.last_col_cycle = state["last_col_cycle"]
        self.last_col_bankgroup = state["last_col_bankgroup"]
        self.last_col_was_write = state["last_col_was_write"]
        self.last_col_data_end = state["last_col_data_end"]
        self.blocked_until = state["blocked_until"]
        self.refresh_row_pointer = state["refresh_row_pointer"]
        for key, bank_state in state["banks"].items():
            self.banks[tuple(key)].restore(bank_state)

    def apply_refresh(self, cycle: int) -> Tuple[int, int]:
        """Apply a rank-level REF; returns the (start_row, row_count) refreshed.

        Every bank of the rank refreshes ``rows_per_refresh`` consecutive rows
        starting at the rank's refresh pointer, and the whole rank is blocked
        for tRFC.
        """
        if not self.all_banks_closed():
            raise TimingViolation(
                f"REF issued to rank {self.rank} with open banks at cycle {cycle}"
            )
        timing = self.config.timing
        until = cycle + timing.tRFC
        self.blocked_until = max(self.blocked_until, until)
        for bank in self.banks.values():
            bank.refresh_block(cycle, until)
        rows_per_refresh = self.config.rows_per_refresh
        start_row = self.refresh_row_pointer
        self.refresh_row_pointer = (
            self.refresh_row_pointer + rows_per_refresh
        ) % self.config.organization.rows_per_bank
        return start_row, rows_per_refresh

    def earliest_rfm(self, cycle: int, bankgroup: int, bank: int) -> int:
        """An RFM may issue to a bank once that bank is precharged."""
        earliest = max(cycle, self.blocked_until)
        target = self.banks[(bankgroup, bank)]
        table, i = self.table, target.index
        if table.open_row[i] is not None:
            # The controller must precharge first; report the earliest
            # cycle the closed bank could accept the RFM.
            return max(earliest, table.next_pre[i] + self.config.timing.tRP)
        return max(earliest, table.next_act[i])

    def apply_rfm(self, cycle: int, bankgroup: int, bank: int, trfm: int) -> None:
        """Apply a bank-scoped RFM: the bank is busy refreshing for tRFM."""
        self.banks[(bankgroup, bank)].refresh_block(cycle, cycle + trfm)


class DRAMSystem:
    """The DRAM device model behind one memory controller.

    By default the model owns every channel of the organization (the
    monolithic single-controller layout).  A channel-partitioned fabric
    instead builds one :class:`DRAMSystem` per channel by passing
    ``channel``: the model then owns only that channel's ranks and buses,
    while addresses keep their true (globally unique) channel coordinate.
    There are no cross-channel timing constraints in DDR4 — each channel has
    its own command/data bus and rank set — so the partition is exact.
    """

    def __init__(self, config: DRAMConfig, channel: Optional[int] = None) -> None:
        self.config = config
        org = config.organization
        if channel is not None and not 0 <= channel < org.channels:
            raise ValueError(
                f"channel {channel} out of range for {org.channels}-channel organization"
            )
        self.channel = channel
        channels = range(org.channels) if channel is None else (channel,)
        # One shared struct-of-arrays timing table covering every bank this
        # system owns; ranks claim contiguous slot ranges in (channel, rank,
        # bankgroup, bank) order.  The controller's FR-FCFS fast scan reads
        # these arrays directly (see MemoryController._build_fast_select).
        banks_per_rank = org.bankgroups_per_rank * org.banks_per_bankgroup
        num_channels = org.channels if channel is None else 1
        self.timing_table = BankTimingTable(
            num_channels * org.ranks_per_channel * banks_per_rank
        )
        self.ranks: Dict[Tuple[int, int], Rank] = {}
        index_base = 0
        for ch in channels:
            for rank in range(org.ranks_per_channel):
                self.ranks[(ch, rank)] = Rank(
                    config, ch, rank, table=self.timing_table, index_base=index_base
                )
                index_base += banks_per_rank
        # One data bus and one command bus per channel.
        self._data_bus_free: Dict[int, int] = {ch: 0 for ch in channels}
        self._command_bus_free: Dict[int, int] = {ch: 0 for ch in channels}
        self.stats = DRAMStatistics()
        self._activation_observers: List[ActivationObserver] = []
        self._refresh_observers: List[RefreshObserver] = []
        self._row_refresh_observers: List[RowRefreshObserver] = []
        # Batched ACT delivery: pure observers (the streaming security
        # verifier) register here instead and receive SoA columns at drain
        # points.  Event order is preserved — the buffers are flushed before
        # any refresh notification is delivered, so increments and
        # deletions interleave exactly as in per-event delivery.
        self._batch_act_observers: List[BatchActivationObserver] = []
        self._batch_cycles: List[int] = []
        self._batch_addresses: List[DRAMAddress] = []
        self._batch_flags: List[bool] = []
        # Latch the fastpath switch: controllers constructed under the fast
        # path pre-validate their scheduling decisions and ask issue() to
        # skip the redundant earliest-cycle recheck.
        self._fast = fastpath.enabled()
        self.current_cycle = 0

    # ------------------------------------------------------------------ #
    # Observer registration
    # ------------------------------------------------------------------ #
    def add_activation_observer(self, observer: ActivationObserver) -> None:
        """Observer called as ``observer(cycle, DRAMAddress, is_preventive)`` on each ACT."""
        self._activation_observers.append(observer)

    def add_refresh_observer(self, observer: RefreshObserver) -> None:
        """Observer called as ``observer(cycle, (channel, rank), start_row, count)`` on each REF."""
        self._refresh_observers.append(observer)

    def add_row_refresh_observer(self, observer: RowRefreshObserver) -> None:
        """Observer called as ``observer(cycle, DRAMAddress)`` whenever a single row is refreshed.

        Fired for preventive refreshes (the ACT to a victim row refreshes that
        row) and for DRAM-internal refreshes performed by mechanisms such as
        REGA (which calls :meth:`notify_row_refresh` directly).
        """
        self._row_refresh_observers.append(observer)

    def add_batch_activation_observer(self, observer: BatchActivationObserver) -> None:
        """Observer called as ``observer(cycles, addresses, flags)`` at drain points.

        The three arguments are equal-length lists (SoA columns) of the ACT
        events buffered since the previous flush, in issue order.  Batched
        delivery is for *pure* observers only — anything that feeds back into
        the command stream (scheduling preventive refreshes, throttling)
        must use :meth:`add_activation_observer`, which stays synchronous.
        Drain points: refresh notifications (REF, RFM victim sweeps,
        preventive ACTs via :meth:`notify_row_refresh`), :meth:`snapshot`,
        explicit :meth:`flush_activations` calls (the simulation flushes at
        window end), and the ``_BATCH_FLUSH_LIMIT`` size cap.
        """
        self._batch_act_observers.append(observer)

    def flush_activations(self) -> None:
        """Deliver buffered ACT events to the batched observers, in order."""
        if not self._batch_cycles:
            return
        cycles = self._batch_cycles
        addresses = self._batch_addresses
        flags = self._batch_flags
        self._batch_cycles = []
        self._batch_addresses = []
        self._batch_flags = []
        for observer in self._batch_act_observers:
            observer(cycles, addresses, flags)

    def notify_row_refresh(self, cycle: int, address: DRAMAddress) -> None:
        """Report that ``address``'s row was refreshed by an in-DRAM mechanism."""
        # Row refreshes reset disturbance state downstream; buffered ACT
        # increments must land first to preserve per-event ordering.
        if self._batch_cycles:
            self.flush_activations()
        for observer in self._row_refresh_observers:
            observer(cycle, address)

    def deliver_activation(self, cycle: int, address: DRAMAddress, is_preventive: bool) -> None:
        """Deliver one ACT event: buffer for batched observers, call the rest.

        The single delivery point shared by :meth:`issue` and the sampled
        fidelity's functional fast-forward (which reconstructs ACTs without
        issuing commands) — any path that synthesizes activation events must
        go through here so batched observers see the same stream as
        per-event ones.
        """
        if self._batch_act_observers:
            self._batch_cycles.append(cycle)
            self._batch_addresses.append(address)
            self._batch_flags.append(is_preventive)
            if len(self._batch_cycles) >= _BATCH_FLUSH_LIMIT:
                self.flush_activations()
        for observer in self._activation_observers:
            observer(cycle, address, is_preventive)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def rank(self, channel: int, rank: int) -> Rank:
        return self.ranks[(channel, rank)]

    def bank(self, channel: int, rank: int, bankgroup: int, bank: int) -> Bank:
        return self.ranks[(channel, rank)].banks[(bankgroup, bank)]

    def bank_for(self, address: DRAMAddress) -> Bank:
        return self.bank(address.channel, address.rank, address.bankgroup, address.bank)

    def iter_banks(self):
        for rank in self.ranks.values():
            for bank in rank.banks.values():
                yield bank

    # ------------------------------------------------------------------ #
    # Timing queries
    # ------------------------------------------------------------------ #
    def earliest_issue_cycle(self, command: Command, cycle: int) -> int:
        """First cycle >= ``cycle`` at which ``command`` satisfies all constraints."""
        rank = self.ranks[(command.channel, command.rank)]
        earliest = max(cycle, self._command_bus_free[command.channel])
        if command.kind is CommandKind.ACT:
            return max(
                earliest, rank.earliest_act(cycle, command.bankgroup, command.bank)
            )
        if command.kind is CommandKind.PRE:
            return max(
                earliest, rank.earliest_pre(cycle, command.bankgroup, command.bank)
            )
        if command.kind in (CommandKind.RD, CommandKind.WR):
            is_write = command.kind is CommandKind.WR
            earliest = max(
                earliest,
                rank.earliest_column(cycle, command.bankgroup, command.bank, is_write),
            )
            # The data burst must also find the channel data bus free.
            timing = self.config.timing
            data_latency = timing.tCWL if is_write else timing.tCL
            data_start = earliest + data_latency
            bus_free = self._data_bus_free[command.channel]
            if data_start < bus_free:
                earliest += bus_free - data_start
            return earliest
        if command.kind is CommandKind.REF:
            return max(earliest, rank.earliest_refresh(cycle))
        if command.kind is CommandKind.RFM:
            return max(
                earliest, rank.earliest_rfm(cycle, command.bankgroup, command.bank)
            )
        raise ValueError(f"unknown command kind {command.kind}")

    def can_issue(self, command: Command, cycle: int) -> bool:
        return self.earliest_issue_cycle(command, cycle) <= cycle

    # ------------------------------------------------------------------ #
    # Command application
    # ------------------------------------------------------------------ #
    def issue(self, command: Command, cycle: int, validated: bool = False) -> Optional[int]:
        """Apply ``command`` at ``cycle``.

        Returns the data-completion cycle for RD/WR commands, the
        rank-unblock cycle for REF, and ``None`` for ACT/PRE.  Raises
        :class:`~repro.dram.bank.TimingViolation` when the command is early.

        ``validated=True`` promises the caller already checked
        :meth:`earliest_issue_cycle` for this exact ``(command, cycle)``
        pair, so the recheck is skipped.  The memory controller's scheduler
        always computes the earliest cycle before deciding to issue (and
        guards cached decisions with a mutation counter), making the second
        computation pure overhead on the hot path; direct callers — tests
        deliberately issuing illegal commands — keep the default and the
        :class:`TimingViolation` it raises.
        """
        if not validated:
            earliest = self.earliest_issue_cycle(command, cycle)
            if earliest > cycle:
                raise TimingViolation(
                    f"{command.describe()} issued at cycle {cycle}, "
                    f"earliest legal cycle is {earliest}"
                )
        self.current_cycle = max(self.current_cycle, cycle)
        rank = self.ranks[(command.channel, command.rank)]
        self._command_bus_free[command.channel] = cycle + 1
        timing = self.config.timing

        if command.kind is CommandKind.ACT:
            rank.apply_act(
                cycle, command.bankgroup, command.bank, command.row, command.is_preventive
            )
            self.stats.acts += 1
            if command.is_preventive:
                self.stats.preventive_acts += 1
            address = DRAMAddress(
                channel=command.channel,
                rank=command.rank,
                bankgroup=command.bankgroup,
                bank=command.bank,
                row=command.row,
                column=0,
            )
            self.deliver_activation(cycle, address, command.is_preventive)
            if command.is_preventive:
                # A preventive ACT refreshes the activated (victim) row
                # itself; notify_row_refresh drains the batch buffer first.
                self.notify_row_refresh(cycle, address)
            return None

        if command.kind is CommandKind.PRE:
            rank.apply_pre(cycle, command.bankgroup, command.bank)
            self.stats.pres += 1
            return None

        if command.kind in (CommandKind.RD, CommandKind.WR):
            is_write = command.kind is CommandKind.WR
            data_end = rank.apply_column(
                cycle, command.bankgroup, command.bank,
                self.bank_for_command(command).open_row, is_write,
            )
            self._data_bus_free[command.channel] = data_end
            if is_write:
                self.stats.writes += 1
            else:
                self.stats.reads += 1
            return data_end

        if command.kind is CommandKind.REF:
            start_row, count = rank.apply_refresh(cycle)
            self.stats.refreshes += 1
            self.stats.refresh_rows += count
            # REF deletes disturbance state downstream; drain buffered ACT
            # increments first so batch delivery preserves event order.
            if self._batch_cycles:
                self.flush_activations()
            for observer in self._refresh_observers:
                observer(cycle, (command.channel, command.rank), start_row, count)
            return cycle + timing.tRFC

        if command.kind is CommandKind.RFM:
            trfm = command.metadata.get("trfm", timing.tRFC)
            rank.apply_rfm(cycle, command.bankgroup, command.bank, trfm)
            self.stats.rfms += 1
            return cycle + trfm

        raise ValueError(f"unknown command kind {command.kind}")

    def bank_for_command(self, command: Command) -> Bank:
        return self.bank(command.channel, command.rank, command.bankgroup, command.bank)

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict:
        """Plain-data checkpoint: every rank (with its banks), the per-channel
        bus state and the global statistics.  Observers are wiring, not
        state, and are not captured; buffered batch events are drained first
        so a restored system never replays them."""
        self.flush_activations()
        return {
            "ranks": {key: rank.snapshot() for key, rank in self.ranks.items()},
            "data_bus_free": dict(self._data_bus_free),
            "command_bus_free": dict(self._command_bus_free),
            "stats": dict(vars(self.stats)),
            "current_cycle": self.current_cycle,
        }

    def restore(self, state: Dict) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        self._batch_cycles = []
        self._batch_addresses = []
        self._batch_flags = []
        for key, rank_state in state["ranks"].items():
            self.ranks[tuple(key)].restore(rank_state)
        # In-place updates: the controller's fast demand scan binds these
        # dicts once at construction, so the objects must stay identical.
        self._data_bus_free.update(state["data_bus_free"])
        self._command_bus_free.update(state["command_bus_free"])
        for key, value in state["stats"].items():
            setattr(self.stats, key, value)
        self.current_cycle = state["current_cycle"]

    # ------------------------------------------------------------------ #
    # Aggregate statistics
    # ------------------------------------------------------------------ #
    def total_activations(self) -> int:
        return self.stats.acts

    def row_activation_counts(self) -> Dict[Tuple[int, int, int, int, int], int]:
        """Ground-truth activation count per row (for analysis and verification)."""
        counts: Dict[Tuple[int, int, int, int, int], int] = {}
        for (channel, rank_id), rank in self.ranks.items():
            for (bankgroup, bank_id), bank in rank.banks.items():
                for row, count in bank.activation_counts.items():
                    counts[(channel, rank_id, bankgroup, bank_id, row)] = count
        return counts
