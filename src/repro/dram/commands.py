"""DRAM command definitions.

The memory controller drives the DRAM device model with the five DDR4
commands the paper's mechanisms care about: ``ACT``, ``PRE``, ``RD``, ``WR``
and the rank-level ``REF``.  Preventive refreshes issued by RowHammer
mitigations are not a distinct DRAM command — per Section 7.2.2 of the paper
they are performed as an ACT+PRE pair to the victim row — but commands carry
a ``is_preventive`` flag so statistics and the energy model can attribute
them separately.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class CommandKind(enum.Enum):
    """The DRAM command types modelled by the simulator.

    ``RFM`` (Refresh Management) is the DDR5 addition: a bank-scoped
    command that gives the device a ``tRFM`` window to refresh the
    potential victims of recent activations.  The window length rides in
    :attr:`Command.metadata` under ``"trfm"`` because it is a policy
    parameter, not a device constant.
    """

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"
    RFM = "RFM"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Command:
    """One DRAM command addressed to a specific location.

    ``rank``/``bankgroup``/``bank`` identify the target bank; ``row`` is
    required for ACT, ``column`` for RD/WR.  REF is rank-level and ignores the
    bank fields.
    """

    kind: CommandKind
    channel: int = 0
    rank: int = 0
    bankgroup: int = 0
    bank: int = 0
    row: Optional[int] = None
    column: Optional[int] = None
    is_preventive: bool = False
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.kind is CommandKind.ACT and self.row is None:
            raise ValueError("ACT command requires a row")
        if self.kind in (CommandKind.RD, CommandKind.WR) and self.column is None:
            raise ValueError(f"{self.kind} command requires a column")

    @property
    def bank_key(self) -> tuple:
        """(bankgroup, bank) pair identifying the target bank within its rank."""
        return (self.bankgroup, self.bank)

    def describe(self) -> str:
        """Human-readable one-line description (used in logs and error messages)."""
        location = f"ch{self.channel}/ra{self.rank}/bg{self.bankgroup}/ba{self.bank}"
        if self.kind is CommandKind.ACT:
            location += f"/row{self.row}"
        elif self.kind in (CommandKind.RD, CommandKind.WR):
            location += f"/col{self.column}"
        preventive = " (preventive)" if self.is_preventive else ""
        return f"{self.kind}{preventive} -> {location}"
