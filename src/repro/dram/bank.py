"""Per-bank state machine and timing bookkeeping.

Each :class:`Bank` tracks its open row, the earliest cycle at which each
command type may legally be issued to it, per-row activation counters (used
by the security verifier and by statistics), and row-buffer hit/miss/conflict
counts.  Rank- and channel-level constraints (tRRD, tFAW, tCCD, data bus,
tRFC) are enforced by :class:`repro.dram.dram_system.Rank` /
:class:`repro.dram.dram_system.DRAMSystem`; the bank only owns the
bank-scoped constraints (tRCD, tRAS, tRC, tRP, tRTP, tWR).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.dram.config import DRAMTiming


class BankState(enum.Enum):
    """Row-buffer state of a bank."""

    CLOSED = "closed"
    OPEN = "open"


@dataclass
class BankStatistics:
    """Per-bank activity counters."""

    activations: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    preventive_activations: int = 0


class Bank:
    """One DRAM bank: open-row tracking plus bank-scoped timing constraints."""

    def __init__(self, timing: DRAMTiming, rows: int, bank_key: tuple = ()) -> None:
        self.timing = timing
        self.rows = rows
        self.bank_key = bank_key
        self.state = BankState.CLOSED
        self.open_row: Optional[int] = None
        self.stats = BankStatistics()
        # Earliest cycles at which each command type may be issued to this bank.
        self.next_act = 0
        self.next_pre = 0
        self.next_read = 0
        self.next_write = 0
        # Activation counts per row since the start of the simulation; the
        # security verifier keys off of these through the DRAM system.
        self.activation_counts: Dict[int, int] = {}
        # Column accesses served from the currently open row (used by the
        # FR-FCFS column cap).
        self.open_row_column_accesses = 0

    # ------------------------------------------------------------------ #
    # Legality checks
    # ------------------------------------------------------------------ #
    def can_activate(self, cycle: int) -> bool:
        return self.state is BankState.CLOSED and cycle >= self.next_act

    def can_precharge(self, cycle: int) -> bool:
        return self.state is BankState.OPEN and cycle >= self.next_pre

    def can_read(self, cycle: int, row: int) -> bool:
        return (
            self.state is BankState.OPEN
            and self.open_row == row
            and cycle >= self.next_read
        )

    def can_write(self, cycle: int, row: int) -> bool:
        return (
            self.state is BankState.OPEN
            and self.open_row == row
            and cycle >= self.next_write
        )

    def earliest_activate(self) -> int:
        return self.next_act

    def earliest_precharge(self) -> int:
        return self.next_pre

    def earliest_column(self, is_write: bool) -> int:
        return self.next_write if is_write else self.next_read

    # ------------------------------------------------------------------ #
    # Command application
    # ------------------------------------------------------------------ #
    def activate(self, cycle: int, row: int, preventive: bool = False) -> None:
        """Apply an ACT command at ``cycle``; raises if the bank is not ready."""
        if not self.can_activate(cycle):
            raise TimingViolation(
                f"ACT to bank {self.bank_key} row {row} at cycle {cycle}: "
                f"bank state={self.state.value}, next_act={self.next_act}"
            )
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range for bank with {self.rows} rows")
        timing = self.timing
        self.state = BankState.OPEN
        self.open_row = row
        self.open_row_column_accesses = 0
        self.next_read = max(self.next_read, cycle + timing.tRCD)
        self.next_write = max(self.next_write, cycle + timing.tRCD)
        self.next_pre = max(self.next_pre, cycle + timing.tRAS)
        self.next_act = max(self.next_act, cycle + timing.tRC)
        self.stats.activations += 1
        if preventive:
            self.stats.preventive_activations += 1
        self.activation_counts[row] = self.activation_counts.get(row, 0) + 1

    def precharge(self, cycle: int) -> None:
        """Apply a PRE command at ``cycle``."""
        if not self.can_precharge(cycle):
            raise TimingViolation(
                f"PRE to bank {self.bank_key} at cycle {cycle}: "
                f"state={self.state.value}, next_pre={self.next_pre}"
            )
        self.state = BankState.CLOSED
        self.open_row = None
        self.open_row_column_accesses = 0
        self.next_act = max(self.next_act, cycle + self.timing.tRP)
        self.stats.precharges += 1

    def read(self, cycle: int, row: int) -> int:
        """Apply a RD command; returns the cycle at which data transfer completes."""
        if not self.can_read(cycle, row):
            raise TimingViolation(
                f"RD to bank {self.bank_key} row {row} at cycle {cycle}: "
                f"open_row={self.open_row}, next_read={self.next_read}"
            )
        timing = self.timing
        self.next_pre = max(self.next_pre, cycle + timing.tRTP)
        self.stats.reads += 1
        self.open_row_column_accesses += 1
        return cycle + timing.tCL + timing.tBURST

    def write(self, cycle: int, row: int) -> int:
        """Apply a WR command; returns the cycle at which data transfer completes."""
        if not self.can_write(cycle, row):
            raise TimingViolation(
                f"WR to bank {self.bank_key} row {row} at cycle {cycle}: "
                f"open_row={self.open_row}, next_write={self.next_write}"
            )
        timing = self.timing
        data_end = cycle + timing.tCWL + timing.tBURST
        self.next_pre = max(self.next_pre, data_end + timing.tWR)
        self.stats.writes += 1
        self.open_row_column_accesses += 1
        return data_end

    def refresh_block(self, cycle: int, until: int) -> None:
        """Block the bank until ``until`` (rank-level REF under way)."""
        if self.state is BankState.OPEN:
            raise TimingViolation(
                f"REF issued while bank {self.bank_key} has row {self.open_row} open"
            )
        self.next_act = max(self.next_act, until)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def is_row_hit(self, row: int) -> bool:
        return self.state is BankState.OPEN and self.open_row == row

    def is_closed(self) -> bool:
        return self.state is BankState.CLOSED

    def activation_count(self, row: int) -> int:
        return self.activation_counts.get(row, 0)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Bank(key={self.bank_key}, state={self.state.value}, "
            f"open_row={self.open_row}, acts={self.stats.activations})"
        )


class TimingViolation(RuntimeError):
    """Raised when a command is applied before its timing constraints allow."""
