"""Per-bank state machine and timing bookkeeping.

Each :class:`Bank` tracks its open row, the earliest cycle at which each
command type may legally be issued to it, per-row activation counters (used
by the security verifier and by statistics), and row-buffer hit/miss/conflict
counts.  Rank- and channel-level constraints (tRRD, tFAW, tCCD, data bus,
tRFC) are enforced by :class:`repro.dram.dram_system.Rank` /
:class:`repro.dram.dram_system.DRAMSystem`; the bank only owns the
bank-scoped constraints (tRCD, tRAS, tRC, tRP, tRTP, tWR).

The timing state itself lives in a :class:`BankTimingTable`, one
struct-of-arrays earliest-cycle table shared by every bank of a
:class:`~repro.dram.dram_system.DRAMSystem`: ``next_act[i]``,
``open_row[i]`` and friends are plain list slots indexed by the bank's
dense index.  A :class:`Bank` is a *view* into its slot — its attribute
interface (``bank.next_act``, ``bank.open_row``, ``bank.state``) is
unchanged and remains the single source of truth — while the memory
controller's FR-FCFS scan reads the shared arrays directly and evaluates
every candidate bank against one earliest-issue vector instead of chasing
``ranks[...].banks[...]`` object chains per check.  A bank constructed
standalone (unit tests) owns a private 1-slot table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dram.config import DRAMTiming


class BankState(enum.Enum):
    """Row-buffer state of a bank."""

    CLOSED = "closed"
    OPEN = "open"


@dataclass
class BankStatistics:
    """Per-bank activity counters."""

    activations: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    preventive_activations: int = 0


class BankTimingTable:
    """Struct-of-arrays bank timing state: one slot per bank.

    ``open_row[i] is None`` encodes the closed state (there is no separate
    state array — a bank is open exactly when it holds an open row), and
    ``col_accesses[i]`` counts column commands served from the currently
    open row (the FR-FCFS column-cap input).  All cycle entries are
    integers; consumers compare them against integer controller cycles.
    """

    __slots__ = (
        "next_act",
        "next_pre",
        "next_read",
        "next_write",
        "open_row",
        "col_accesses",
    )

    def __init__(self, count: int) -> None:
        self.next_act: List[int] = [0] * count
        self.next_pre: List[int] = [0] * count
        self.next_read: List[int] = [0] * count
        self.next_write: List[int] = [0] * count
        self.open_row: List[Optional[int]] = [None] * count
        self.col_accesses: List[int] = [0] * count


class Bank:
    """One DRAM bank: open-row tracking plus bank-scoped timing constraints.

    ``table``/``index`` locate this bank's slot in the shared
    :class:`BankTimingTable`; when omitted the bank owns a private 1-slot
    table (standalone construction in unit tests).
    """

    def __init__(
        self,
        timing: DRAMTiming,
        rows: int,
        bank_key: tuple = (),
        table: Optional[BankTimingTable] = None,
        index: int = 0,
    ) -> None:
        self.timing = timing
        self.rows = rows
        self.bank_key = bank_key
        if table is None:
            table = BankTimingTable(1)
            index = 0
        self.table = table
        self.index = index
        self.stats = BankStatistics()
        # Activation counts per row since the start of the simulation; the
        # security verifier keys off of these through the DRAM system.
        self.activation_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Timing-table views (the attribute interface of the pre-SoA Bank)
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> BankState:
        return BankState.CLOSED if self.table.open_row[self.index] is None else BankState.OPEN

    @property
    def open_row(self) -> Optional[int]:
        return self.table.open_row[self.index]

    @open_row.setter
    def open_row(self, value: Optional[int]) -> None:
        self.table.open_row[self.index] = value

    @property
    def next_act(self) -> int:
        return self.table.next_act[self.index]

    @next_act.setter
    def next_act(self, value: int) -> None:
        self.table.next_act[self.index] = value

    @property
    def next_pre(self) -> int:
        return self.table.next_pre[self.index]

    @next_pre.setter
    def next_pre(self, value: int) -> None:
        self.table.next_pre[self.index] = value

    @property
    def next_read(self) -> int:
        return self.table.next_read[self.index]

    @next_read.setter
    def next_read(self, value: int) -> None:
        self.table.next_read[self.index] = value

    @property
    def next_write(self) -> int:
        return self.table.next_write[self.index]

    @next_write.setter
    def next_write(self, value: int) -> None:
        self.table.next_write[self.index] = value

    @property
    def open_row_column_accesses(self) -> int:
        return self.table.col_accesses[self.index]

    @open_row_column_accesses.setter
    def open_row_column_accesses(self, value: int) -> None:
        self.table.col_accesses[self.index] = value

    # ------------------------------------------------------------------ #
    # Legality checks
    # ------------------------------------------------------------------ #
    def can_activate(self, cycle: int) -> bool:
        table, i = self.table, self.index
        return table.open_row[i] is None and cycle >= table.next_act[i]

    def can_precharge(self, cycle: int) -> bool:
        table, i = self.table, self.index
        return table.open_row[i] is not None and cycle >= table.next_pre[i]

    def can_read(self, cycle: int, row: int) -> bool:
        table, i = self.table, self.index
        return table.open_row[i] == row and cycle >= table.next_read[i]

    def can_write(self, cycle: int, row: int) -> bool:
        table, i = self.table, self.index
        return table.open_row[i] == row and cycle >= table.next_write[i]

    def earliest_activate(self) -> int:
        return self.table.next_act[self.index]

    def earliest_precharge(self) -> int:
        return self.table.next_pre[self.index]

    def earliest_column(self, is_write: bool) -> int:
        table, i = self.table, self.index
        return table.next_write[i] if is_write else table.next_read[i]

    # ------------------------------------------------------------------ #
    # Command application
    # ------------------------------------------------------------------ #
    def activate(self, cycle: int, row: int, preventive: bool = False) -> None:
        """Apply an ACT command at ``cycle``; raises if the bank is not ready."""
        table, i = self.table, self.index
        if table.open_row[i] is not None or cycle < table.next_act[i]:
            raise TimingViolation(
                f"ACT to bank {self.bank_key} row {row} at cycle {cycle}: "
                f"bank state={self.state.value}, next_act={table.next_act[i]}"
            )
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range for bank with {self.rows} rows")
        timing = self.timing
        table.open_row[i] = row
        table.col_accesses[i] = 0
        if cycle + timing.tRCD > table.next_read[i]:
            table.next_read[i] = cycle + timing.tRCD
        if cycle + timing.tRCD > table.next_write[i]:
            table.next_write[i] = cycle + timing.tRCD
        if cycle + timing.tRAS > table.next_pre[i]:
            table.next_pre[i] = cycle + timing.tRAS
        if cycle + timing.tRC > table.next_act[i]:
            table.next_act[i] = cycle + timing.tRC
        self.stats.activations += 1
        if preventive:
            self.stats.preventive_activations += 1
        self.activation_counts[row] = self.activation_counts.get(row, 0) + 1

    def precharge(self, cycle: int) -> None:
        """Apply a PRE command at ``cycle``."""
        table, i = self.table, self.index
        if table.open_row[i] is None or cycle < table.next_pre[i]:
            raise TimingViolation(
                f"PRE to bank {self.bank_key} at cycle {cycle}: "
                f"state={self.state.value}, next_pre={table.next_pre[i]}"
            )
        table.open_row[i] = None
        table.col_accesses[i] = 0
        if cycle + self.timing.tRP > table.next_act[i]:
            table.next_act[i] = cycle + self.timing.tRP
        self.stats.precharges += 1

    def read(self, cycle: int, row: int) -> int:
        """Apply a RD command; returns the cycle at which data transfer completes."""
        table, i = self.table, self.index
        if table.open_row[i] != row or cycle < table.next_read[i]:
            raise TimingViolation(
                f"RD to bank {self.bank_key} row {row} at cycle {cycle}: "
                f"open_row={table.open_row[i]}, next_read={table.next_read[i]}"
            )
        timing = self.timing
        if cycle + timing.tRTP > table.next_pre[i]:
            table.next_pre[i] = cycle + timing.tRTP
        self.stats.reads += 1
        table.col_accesses[i] += 1
        return cycle + timing.tCL + timing.tBURST

    def write(self, cycle: int, row: int) -> int:
        """Apply a WR command; returns the cycle at which data transfer completes."""
        table, i = self.table, self.index
        if table.open_row[i] != row or cycle < table.next_write[i]:
            raise TimingViolation(
                f"WR to bank {self.bank_key} row {row} at cycle {cycle}: "
                f"open_row={table.open_row[i]}, next_write={table.next_write[i]}"
            )
        timing = self.timing
        data_end = cycle + timing.tCWL + timing.tBURST
        if data_end + timing.tWR > table.next_pre[i]:
            table.next_pre[i] = data_end + timing.tWR
        self.stats.writes += 1
        table.col_accesses[i] += 1
        return data_end

    def refresh_block(self, cycle: int, until: int) -> None:
        """Block the bank until ``until`` (rank-level REF under way)."""
        table, i = self.table, self.index
        if table.open_row[i] is not None:
            raise TimingViolation(
                f"REF issued while bank {self.bank_key} has row {table.open_row[i]} open"
            )
        if until > table.next_act[i]:
            table.next_act[i] = until

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict:
        """Plain-data checkpoint: the bank's timing-table slot, statistics
        and per-row activation counters."""
        table, i = self.table, self.index
        return {
            "next_act": table.next_act[i],
            "next_pre": table.next_pre[i],
            "next_read": table.next_read[i],
            "next_write": table.next_write[i],
            "open_row": table.open_row[i],
            "col_accesses": table.col_accesses[i],
            "stats": dict(vars(self.stats)),
            "activation_counts": dict(self.activation_counts),
        }

    def restore(self, state: Dict) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        table, i = self.table, self.index
        table.next_act[i] = state["next_act"]
        table.next_pre[i] = state["next_pre"]
        table.next_read[i] = state["next_read"]
        table.next_write[i] = state["next_write"]
        table.open_row[i] = state["open_row"]
        table.col_accesses[i] = state["col_accesses"]
        for key, value in state["stats"].items():
            setattr(self.stats, key, value)
        self.activation_counts = dict(state["activation_counts"])

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def is_row_hit(self, row: int) -> bool:
        return self.table.open_row[self.index] == row

    def is_closed(self) -> bool:
        return self.table.open_row[self.index] is None

    def activation_count(self, row: int) -> int:
        return self.activation_counts.get(row, 0)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Bank(key={self.bank_key}, state={self.state.value}, "
            f"open_row={self.open_row}, acts={self.stats.activations})"
        )


class TimingViolation(RuntimeError):
    """Raised when a command is applied before its timing constraints allow."""
