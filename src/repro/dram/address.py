"""Physical-address to DRAM-coordinate mapping.

The memory controller translates cache-line-aligned physical addresses into
(channel, rank, bank group, bank, row, column) coordinates.  The default
mapping interleaves consecutive cache lines across channels, bank groups and
banks before touching rank and row bits — the standard
``Row:Rank:BankGroup:Bank:Column:Channel`` style mapping that maximizes
bank-level parallelism for streaming workloads, matching the behaviour that
Ramulator's default DDR4 mapping gives the paper's workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.dram.config import DRAMConfig


class _cached_key:
    """Lock-free per-instance cache for the address key tuples.

    ``functools.cached_property`` would do the same job, but on Python 3.11
    it takes an RLock on every first access, which measurably *loses* to
    recomputing these tiny tuples (the lock was removed in 3.12).  This is
    the lock-free variant: compute once, stash in ``__dict__`` (allowed on a
    frozen dataclass — only ``__setattr__`` is blocked), and let ordinary
    attribute lookup find the cached tuple on every later read.  Equality,
    ordering and hashing are generated from the dataclass fields, so the
    cache never leaks into them.
    """

    def __init__(self, func):
        self._func = func
        self.__doc__ = func.__doc__

    def __set_name__(self, owner, name) -> None:
        self._name = name

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        value = self._func(instance)
        instance.__dict__[self._name] = value
        return value


@dataclass(frozen=True, order=True)
class DRAMAddress:
    """A fully decoded DRAM coordinate."""

    channel: int
    rank: int
    bankgroup: int
    bank: int
    row: int
    column: int

    # The keys are cached because the same address object is asked for them
    # many times: the FR-FCFS scheduler groups every queued request by
    # ``bank_key`` on *every* command selection while the request waits, and
    # each ACT's address is interrogated by the mitigation hooks on top.

    @_cached_key
    def bank_key(self) -> Tuple[int, int, int, int]:
        """Globally unique bank identifier (channel, rank, bankgroup, bank)."""
        return (self.channel, self.rank, self.bankgroup, self.bank)

    @_cached_key
    def row_key(self) -> Tuple[int, int, int, int, int]:
        """Globally unique row identifier."""
        return (self.channel, self.rank, self.bankgroup, self.bank, self.row)


def _bits(value: int) -> int:
    """Number of bits needed to index ``value`` distinct items (0 for 1 item)."""
    if value <= 1:
        return 0
    return (value - 1).bit_length()


def validate_mappable_geometry(config: DRAMConfig) -> None:
    """Check every dimension of the organization is addressable without aliasing.

    The interleaved bit layout slices the physical address into fixed-width
    fields, so each dimension must be a power of two (or 1): a field of
    ``ceil(log2(n))`` bits over a non-power-of-two ``n`` would either leave
    encodings unused or alias two coordinates onto one address, breaking the
    ``decode(encode(x)) == x`` round-trip the workload generators rely on.
    """
    org = config.organization
    dimensions = {
        "channels": org.channels,
        "ranks_per_channel": org.ranks_per_channel,
        "bankgroups_per_rank": org.bankgroups_per_rank,
        "banks_per_bankgroup": org.banks_per_bankgroup,
        "rows_per_bank": org.rows_per_bank,
        "columns_per_row / columns_per_cacheline": (
            org.columns_per_row // org.columns_per_cacheline
        ),
        "cacheline_bytes": org.cacheline_bytes,
    }
    for name, value in dimensions.items():
        if value < 1 or value & (value - 1):
            raise ValueError(
                f"DRAM organization is not address-mappable: {name}={value} "
                f"is not a power of two, so a {_bits(value)}-bit address field "
                f"would alias distinct coordinates"
            )


class AddressMapper:
    """Translates byte physical addresses to :class:`DRAMAddress` and back.

    The bit layout, from least to most significant, is::

        [cacheline offset][channel][bankgroup][bank][column][rank][row]

    which interleaves consecutive cache lines across channels and banks
    (maximizing parallelism) while keeping a row's cache lines contiguous in
    the column bits (preserving row-buffer locality within a row).
    """

    def __init__(self, config: DRAMConfig) -> None:
        validate_mappable_geometry(config)
        self.config = config
        org = config.organization
        self._offset_bits = _bits(org.cacheline_bytes)
        self._channel_bits = _bits(org.channels)
        self._bankgroup_bits = _bits(org.bankgroups_per_rank)
        self._bank_bits = _bits(org.banks_per_bankgroup)
        self._column_bits = _bits(org.columns_per_row // org.columns_per_cacheline)
        self._rank_bits = _bits(org.ranks_per_channel)
        self._row_bits = _bits(org.rows_per_bank)
        # Decoded-address memo: workloads re-touch the same cache lines
        # (hammering patterns by construction, benign traces through
        # locality), DRAMAddress is frozen, and decode is pure — so decoding
        # each distinct physical address once per mapper is exact.  Bounded
        # so a pathological trace cannot grow it without limit.
        self._decode_memo: Dict[int, DRAMAddress] = {}

    _DECODE_MEMO_LIMIT = 1 << 20

    # ------------------------------------------------------------------ #
    # Decode / encode
    # ------------------------------------------------------------------ #
    def decode(self, physical_address: int) -> DRAMAddress:
        """Decode a byte-granularity physical address."""
        address = self._decode_memo.get(physical_address)
        if address is not None:
            return address
        address = self._decode_slow(physical_address)
        if len(self._decode_memo) < self._DECODE_MEMO_LIMIT:
            self._decode_memo[physical_address] = address
        return address

    def _decode_slow(self, physical_address: int) -> DRAMAddress:
        if physical_address < 0:
            raise ValueError("physical address must be non-negative")
        org = self.config.organization
        value = physical_address >> self._offset_bits
        value, channel = self._take(value, self._channel_bits, org.channels)
        value, bankgroup = self._take(value, self._bankgroup_bits, org.bankgroups_per_rank)
        value, bank = self._take(value, self._bank_bits, org.banks_per_bankgroup)
        value, column = self._take(
            value, self._column_bits, org.columns_per_row // org.columns_per_cacheline
        )
        value, rank = self._take(value, self._rank_bits, org.ranks_per_channel)
        row = value % org.rows_per_bank
        return DRAMAddress(
            channel=channel,
            rank=rank,
            bankgroup=bankgroup,
            bank=bank,
            row=row,
            column=column * org.columns_per_cacheline,
        )

    def encode(self, address: DRAMAddress) -> int:
        """Inverse of :meth:`decode` (returns a cache-line-aligned byte address)."""
        org = self.config.organization
        value = address.row
        value = self._put(value, self._rank_bits, address.rank)
        value = self._put(
            value, self._column_bits, address.column // org.columns_per_cacheline
        )
        value = self._put(value, self._bank_bits, address.bank)
        value = self._put(value, self._bankgroup_bits, address.bankgroup)
        value = self._put(value, self._channel_bits, address.channel)
        return value << self._offset_bits

    @staticmethod
    def _take(value: int, bits: int, limit: int) -> Tuple[int, int]:
        if bits == 0:
            return value, 0
        field = value & ((1 << bits) - 1)
        return value >> bits, field % limit

    @staticmethod
    def _put(value: int, bits: int, field: int) -> int:
        return (value << bits) | field

    # ------------------------------------------------------------------ #
    # Convenience constructors used by workload generators
    # ------------------------------------------------------------------ #
    def address_for_row(
        self, row: int, bank_index: int = 0, column: int = 0, channel: int = 0
    ) -> int:
        """Build a physical address hitting a particular row of a flat bank index.

        ``bank_index`` enumerates (rank, bankgroup, bank) triples in
        rank-major order; workload and attack generators use this to target
        specific banks and rows directly.
        """
        org = self.config.organization
        rank, remainder = divmod(bank_index, org.banks_per_rank)
        bankgroup, bank = divmod(remainder, org.banks_per_bankgroup)
        return self.encode(
            DRAMAddress(
                channel=channel % org.channels,
                rank=rank % org.ranks_per_channel,
                bankgroup=bankgroup,
                bank=bank,
                row=row % org.rows_per_bank,
                column=column % org.columns_per_row,
            )
        )

    def all_bank_indices(self) -> List[int]:
        """Flat bank indices for every bank in one channel."""
        org = self.config.organization
        return list(range(org.ranks_per_channel * org.banks_per_rank))

    def iter_rows(self, bank_index: int, start: int, count: int) -> Iterator[int]:
        """Yield physical addresses for ``count`` consecutive rows of a bank."""
        for offset in range(count):
            yield self.address_for_row(start + offset, bank_index=bank_index)

    def neighbors(self, address: DRAMAddress, blast_radius: int = 1) -> Sequence[DRAMAddress]:
        """Victim rows physically adjacent to ``address`` (within ``blast_radius``).

        The paper's mitigations refresh the two immediate neighbours of an
        aggressor row; a larger blast radius models half-double style
        configurations used in some sensitivity tests.
        """
        org = self.config.organization
        victims = []
        for distance in range(1, blast_radius + 1):
            for direction in (-1, 1):
                victim_row = address.row + direction * distance
                if 0 <= victim_row < org.rows_per_bank:
                    victims.append(
                        DRAMAddress(
                            channel=address.channel,
                            rank=address.rank,
                            bankgroup=address.bankgroup,
                            bank=address.bank,
                            row=victim_row,
                            column=0,
                        )
                    )
        return victims
