"""DRAM organization and timing configuration.

The defaults reproduce the simulated system of Table 2 in the CoMeT paper:
DDR4, 1 channel, 2 ranks per channel, 4 bank groups, 4 banks per bank group,
128K rows per bank.  Timing values are DDR4-2400 (tCK = 0.833 ns) taken from
the JEDEC DDR4 specification / Micron datasheets referenced by the paper.

All timings are stored in DRAM clock cycles.  The refresh window ``tREFW``
and the derived refresh interval ``tREFI`` can be scaled down with
``refresh_window_scale`` so that experiments over short synthetic traces span
several counter-reset windows (the paper's RowHammer mechanisms all operate
per refresh window); EXPERIMENTS.md documents where this scaling is used.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class DRAMOrganization:
    """Geometry of the simulated memory system."""

    channels: int = 1
    ranks_per_channel: int = 2
    bankgroups_per_rank: int = 4
    banks_per_bankgroup: int = 4
    rows_per_bank: int = 128 * 1024
    columns_per_row: int = 1024
    device_width_bits: int = 8
    bus_width_bits: int = 64
    burst_length: int = 8

    @property
    def banks_per_rank(self) -> int:
        return self.bankgroups_per_rank * self.banks_per_bankgroup

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def total_rows(self) -> int:
        return self.total_banks * self.rows_per_bank

    @property
    def row_size_bytes(self) -> int:
        """Size of one DRAM row (page) in bytes as seen by the channel."""
        return self.columns_per_row * self.bus_width_bits // 8

    @property
    def cacheline_bytes(self) -> int:
        """Bytes transferred per read/write burst."""
        return self.bus_width_bits // 8 * self.burst_length

    @property
    def columns_per_cacheline(self) -> int:
        return self.burst_length

    @property
    def capacity_bytes(self) -> int:
        return self.total_rows * self.row_size_bytes


@dataclass(frozen=True)
class DRAMTiming:
    """DDR4-2400 timing parameters, in DRAM clock cycles.

    ``tCK_ns`` converts cycles to nanoseconds.  ``tREFW`` defaults to 64 ms
    (DDR4 normal temperature range); ``tREFI`` to 7.8 us.
    """

    tCK_ns: float = 0.833

    tRCD: int = 16      # ACT -> RD/WR
    tRP: int = 16       # PRE -> ACT
    tCL: int = 16       # RD -> data
    tCWL: int = 12      # WR -> data
    tRAS: int = 39      # ACT -> PRE
    tRC: int = 55       # ACT -> ACT, same bank
    tRRD_S: int = 4     # ACT -> ACT, different bank group
    tRRD_L: int = 6     # ACT -> ACT, same bank group
    tFAW: int = 26      # four-ACT window
    tCCD_S: int = 4     # RD/WR -> RD/WR, different bank group
    tCCD_L: int = 6     # RD/WR -> RD/WR, same bank group
    tWR: int = 18       # end of write data -> PRE
    tRTP: int = 9       # RD -> PRE
    tWTR_S: int = 3     # write data -> RD, different bank group
    tWTR_L: int = 9     # write data -> RD, same bank group
    tRTW: int = 8       # RD -> WR turnaround
    tRFC: int = 420     # REF -> next command, same rank (350 ns / tCK)
    tREFI: int = 9363   # REF interval (7.8 us / tCK)
    tREFW_ms: float = 64.0  # refresh window in milliseconds
    tBURST: int = 4     # burst length 8 / double data rate

    @property
    def tREFW(self) -> int:
        """Refresh window in DRAM clock cycles."""
        return int(round(self.tREFW_ms * 1e6 / self.tCK_ns))

    @property
    def refreshes_per_window(self) -> int:
        """Number of REF commands issued per refresh window (typically 8192)."""
        return max(1, self.tREFW // self.tREFI)

    def ns(self, cycles: int) -> float:
        """Convert a cycle count to nanoseconds."""
        return cycles * self.tCK_ns

    def cycles(self, nanoseconds: float) -> int:
        """Convert nanoseconds to (rounded-up) cycle counts."""
        import math

        return int(math.ceil(nanoseconds / self.tCK_ns - 1e-9))


@dataclass(frozen=True)
class DRAMConfig:
    """Complete DRAM configuration: organization + timing + scaling knobs."""

    organization: DRAMOrganization = field(default_factory=DRAMOrganization)
    timing: DRAMTiming = field(default_factory=DRAMTiming)
    refresh_window_scale: float = 1.0
    refresh_enabled: bool = True

    def __post_init__(self) -> None:
        if self.refresh_window_scale <= 0:
            raise ValueError("refresh_window_scale must be positive")

    @property
    def tREFW(self) -> int:
        """Refresh window in cycles, after scaling."""
        return max(1, int(self.timing.tREFW * self.refresh_window_scale))

    @property
    def tREFI(self) -> int:
        """Refresh interval in cycles.

        Deliberately *not* scaled by ``refresh_window_scale``: scaling only
        the window keeps the refresh duty cycle (tRFC / tREFI) realistic while
        reducing the number of REF commands per window, so scaled simulations
        spend the same ~4.5% of time refreshing as real DDR4 does.
        """
        return max(1, self.timing.tREFI)

    @property
    def refreshes_per_window(self) -> int:
        return max(1, self.tREFW // self.tREFI)

    @property
    def rows_per_refresh(self) -> int:
        """Rows of each bank refreshed by a single REF command."""
        return max(
            1, -(-self.organization.rows_per_bank // self.refreshes_per_window)
        )

    @property
    def max_activations_per_window(self) -> int:
        """Upper bound on ACTs to a single bank within one refresh window.

        Used to size Graphene tables and to reason about how many rows can be
        hammered concurrently (Section 3.2 of the paper).
        """
        return max(1, self.tREFW // self.timing.tRC)

    def scaled(self, refresh_window_scale: float) -> "DRAMConfig":
        """Return a copy with a different refresh-window scale."""
        return replace(self, refresh_window_scale=refresh_window_scale)


def small_test_config(
    rows_per_bank: int = 1024,
    banks_per_bankgroup: int = 2,
    bankgroups_per_rank: int = 2,
    ranks_per_channel: int = 1,
    refresh_window_scale: float = 1.0 / 1024.0,
    channels: int = 1,
) -> DRAMConfig:
    """A scaled-down configuration used throughout the test-suite and benches.

    The organization is shrunk (fewer banks and rows) and the refresh window
    shortened so that complete refresh windows and counter-reset periods
    elapse within traces of a few thousand requests.  ``channels`` sizes the
    channel-partitioned fabric; every dimension must stay a power of two so
    the address mapping is alias-free (validated here eagerly, so a bad
    geometry fails at configuration time rather than at trace generation).
    """
    organization = DRAMOrganization(
        channels=channels,
        ranks_per_channel=ranks_per_channel,
        bankgroups_per_rank=bankgroups_per_rank,
        banks_per_bankgroup=banks_per_bankgroup,
        rows_per_bank=rows_per_bank,
    )
    config = DRAMConfig(
        organization=organization,
        refresh_window_scale=refresh_window_scale,
    )
    # Imported here to avoid a circular import (address.py imports config).
    from repro.dram.address import validate_mappable_geometry

    validate_mappable_geometry(config)
    return config
