"""Sampled-fidelity execution: functional fast-forward + detailed windows.

Full-fidelity simulation evaluates every DRAM command on the event kernel.
That is the right default, but sweep campaigns over long benign workloads
spend almost all of their time in steady-state stretches whose *timing* is
predictable while their *state* (activation counters, sketch contents,
row-buffer state, refresh phase) still has to be tracked exactly — CoMeT's
security argument depends on counter state, not on cycle-exact scheduling.

:func:`run_sampled` exploits that split.  It drives one :class:`System`
through alternating phases:

* **Detailed windows** run on the unified
  :class:`~repro.sim.engine.EventKernel`, bit-exactly like a full run, with
  each core's :attr:`~repro.cpu.core.Core.window_limit` bounding how many
  trace entries it may replay before the window closes (outstanding reads
  drain, queues empty — the system reaches a checkpointable drained point).
* **Fast-forward phases** advance the remaining trace entries *functionally*:
  every skipped access still updates the row-buffer state, per-row
  activation counters, DRAM/controller statistics and — crucially — fires
  the DRAM activation observers, so every mitigation (CoMeT sketches,
  Graphene tables, Hydra, BlockHammer CBFs) and every security verifier
  observes the complete, unsampled ACT stream.  Periodic refreshes are
  applied functionally at every tREFI crossing (advancing each rank's
  refresh pointer and firing the refresh observers), so refresh-window
  boundaries are never sampled away and threshold-crossing detection stays
  sound.  Only *cycle placement* is approximated: fast-forward time advances
  at the cycles-per-instruction rate *measured in the detailed windows so
  far* (the SMARTS-style calibration loop — every detailed window refines
  the estimate the next fast-forward phase extrapolates with), so the
  estimated clock tracks the true clock as closely as the windows are
  representative of the skipped stretches.

What is approximate, precisely:

* IPC / cycle counts (calibrated extrapolation instead of scheduling);
* disturbance *phase* relative to refresh boundaries (event counts are
  exact, their cycle stamps are estimates, so ``max_disturbance`` can
  differ within a tolerance from a full run);
* BlockHammer's throttling delays (counted, not timing-modelled) during
  fast-forward.

Mitigation outputs during fast-forward are intercepted per controller and
applied functionally: a preventive refresh refreshes its victim row in
place (activation observers + row-refresh notification + statistics), an
early rank refresh advances the refresh pointer immediately, and injected
mitigation traffic (Hydra counter accesses) warms the row-buffer state it
would have touched.  The interception is installed as instance attributes
for the duration of the phase and removed afterwards, so detailed windows
always run the pristine controller code.

Security audits should still use full fidelity (see EXPERIMENTS.md): the
verifier's event stream is complete under sampling, but violation *cycles*
are estimates.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.dram.address import DRAMAddress
from repro.experiment.spec import SampledConfig
from repro.sim.engine import EventKernel
from repro.sim.system import SimulationResult, System


# --------------------------------------------------------------------- #
# Functional state warming
# --------------------------------------------------------------------- #
def _warm_access(
    ctl, address: DRAMAddress, is_write: bool, cycle: int
) -> Tuple[int, int]:
    """Apply one column access functionally; returns ``(service, latency)``.

    Updates the bank's open-row state, activation counters and statistics
    exactly as the detailed command sequence (PRE? ACT? RD/WR) would, and
    fires the activation observers on a demand ACT.  ``service`` estimates
    the bank/bus occupancy of the access and ``latency`` the read round-trip,
    both in memory-controller cycles.
    """
    dram = ctl.dram
    bank = dram.bank_for(address)
    table, i = bank.table, bank.index
    timing = ctl.dram_config.timing
    row = address.row
    open_row = table.open_row[i]
    if open_row == row:
        ctl.stats.row_hits += 1
        service = timing.tBURST
        latency = timing.tCL + timing.tBURST
    else:
        service = timing.tRCD + timing.tBURST
        latency = timing.tRCD + timing.tCL + timing.tBURST
        if open_row is not None:
            # Conflict: the open row is precharged away first.
            table.open_row[i] = None
            bank.stats.precharges += 1
            dram.stats.pres += 1
            ctl.stats.row_conflicts += 1
            service += timing.tRP
            latency += timing.tRP
        ctl.stats.row_misses += 1
        table.open_row[i] = row
        table.col_accesses[i] = 0
        bank.stats.activations += 1
        bank.activation_counts[row] = bank.activation_counts.get(row, 0) + 1
        dram.stats.acts += 1
        # Observers receive the demand address as the ACT address.  Every
        # registered observer (mitigations, verifiers, controller stats)
        # keys on (channel, rank, bankgroup, bank, row) only, so skipping
        # the column=0 copy the detailed path materializes is free.
        dram.deliver_activation(cycle, address, False)
    table.col_accesses[i] += 1
    if is_write:
        bank.stats.writes += 1
        dram.stats.writes += 1
    else:
        bank.stats.reads += 1
        dram.stats.reads += 1
    return service, latency


def _functional_rank_refresh(ctl, rank_key: Tuple[int, int], cycle: int) -> None:
    """Apply one rank-level REF functionally (pointer, observers, stats).

    Unlike :meth:`~repro.dram.dram_system.Rank.apply_refresh` this never
    requires the banks to be closed and blocks nothing: fast-forward time is
    estimated anyway, so only the refresh *coverage* matters here.
    """
    dram = ctl.dram
    rank = dram.ranks[rank_key]
    rows_per_refresh = ctl.dram_config.rows_per_refresh
    rows_per_bank = ctl.dram_config.organization.rows_per_bank
    start_row = rank.refresh_row_pointer
    rank.refresh_row_pointer = (start_row + rows_per_refresh) % rows_per_bank
    dram.stats.refreshes += 1
    dram.stats.refresh_rows += rows_per_refresh
    # Match issue(): drain buffered ACT events before delivering the REF so
    # batched observers see increments and deletions in true order.
    if dram._batch_cycles:
        dram.flush_activations()
    for observer in dram._refresh_observers:
        observer(cycle, rank_key, start_row, rows_per_refresh)


def _catch_up_refreshes(ctl, cycle: int) -> None:
    """Apply every periodic refresh that became due by ``cycle``.

    The refresh *cost* (tRFC stalls) is not charged here: the calibrated
    pace measured in the detailed windows already amortizes it, because
    windows cover cycles at a uniform rate and therefore contain periodic
    REFs at their true frequency.
    """
    if not ctl.dram_config.refresh_enabled:
        return
    tREFI = ctl.dram_config.tREFI
    for rank_key in ctl._rank_keys:
        due = ctl.next_refresh_due[rank_key]
        while due <= cycle:
            _functional_rank_refresh(ctl, rank_key, due)
            due += tREFI
        ctl.next_refresh_due[rank_key] = due


def _functional_preventive_refresh(ctl, address: DRAMAddress, cycle: int) -> None:
    """Refresh ``address``'s row in place (the ACT+PRE pair, functionally).

    Mirrors the detailed preventive path end to end: the victim-row ACT is
    counted and *observed* (mitigations track preventive ACTs too — skipping
    them would open the blind spot the detailed model deliberately avoids),
    the row-refresh notification clears the verifier's disturbance, and the
    pair completion statistics match the drained detailed sequence.
    """
    dram = ctl.dram
    bank = dram.bank_for(address)
    ctl.stats.preventive_refreshes += 1
    bank.stats.activations += 1
    bank.stats.preventive_activations += 1
    bank.stats.precharges += 1
    bank.activation_counts[address.row] = (
        bank.activation_counts.get(address.row, 0) + 1
    )
    dram.stats.acts += 1
    dram.stats.preventive_acts += 1
    dram.stats.pres += 1
    dram.stats.preventive_refresh_pairs += 1
    act_address = DRAMAddress(
        channel=address.channel,
        rank=address.rank,
        bankgroup=address.bankgroup,
        bank=address.bank,
        row=address.row,
        column=0,
    )
    dram.deliver_activation(cycle, act_address, True)
    dram.notify_row_refresh(cycle, act_address)


def _install_functional_hooks(ctl, clock: Dict[str, int]) -> Callable[[], None]:
    """Shadow the mitigation-facing controller entry points for one phase.

    Returns an undo callable removing the instance attributes, restoring the
    class methods for the next detailed window.
    """

    def schedule_preventive_refresh(address: DRAMAddress, cycle: int) -> None:
        _functional_preventive_refresh(ctl, address, max(int(cycle), clock["now"]))

    def schedule_rank_refresh(channel: int, rank: int, count: int) -> None:
        ctl.stats.early_refresh_operations += 1
        for _ in range(count):
            _functional_rank_refresh(ctl, (channel, rank), clock["now"])

    def enqueue_mitigation_request(
        address: DRAMAddress, is_write: bool, cycle: int
    ) -> bool:
        ctl.stats.mitigation_requests += 1
        _warm_access(ctl, address, is_write, max(int(cycle), clock["now"]))
        return True

    ctl.schedule_preventive_refresh = schedule_preventive_refresh
    ctl.schedule_rank_refresh = schedule_rank_refresh
    ctl.enqueue_mitigation_request = enqueue_mitigation_request

    def undo() -> None:
        del ctl.__dict__["schedule_preventive_refresh"]
        del ctl.__dict__["schedule_rank_refresh"]
        del ctl.__dict__["enqueue_mitigation_request"]

    return undo


# --------------------------------------------------------------------- #
# Phase drivers
# --------------------------------------------------------------------- #
def _run_detailed(kernel: EventKernel, cores, budget: int) -> None:
    """Replay up to ``budget`` further trace entries per core, bit-exactly."""
    progress = False
    for core in cores:
        limit = min(len(core.trace), core._cursor + budget)
        core.window_limit = limit
        if limit > core._cursor:
            progress = True
    if progress:
        kernel.run()


def _fast_forward(
    system: System, kernel: EventKernel, budget: int, pace: Dict[int, float]
) -> None:
    """Advance up to ``budget`` trace entries per core functionally.

    Entered only at a drained point (a detailed window just completed, so
    queues are empty and no reads are outstanding).  Cores advance in
    estimated-cycle order through one shared clock so the cross-channel
    event interleaving — and with it the refresh/activation ordering every
    observer sees — tracks the detailed schedule closely.

    ``pace`` maps each core index to its calibrated cycles-per-instruction,
    measured over every detailed window replayed so far.  Each entry's
    estimated dispatch advances by ``instructions * cpi``, which amortizes
    everything the detailed engine charges for real — bank and bus
    contention, refresh stalls, mitigation traffic — at the rate the
    windows actually observed it.
    """
    cores = system.cores
    fabric = system.fabric
    controllers = fabric.controllers
    mapper = fabric.mapper
    clock = {"now": int(kernel.now)}
    undos = [_install_functional_hooks(ctl, clock) for ctl in controllers]
    start = float(kernel.now)
    end = start

    #: Per-channel "first periodic REF due" watermark: the full catch-up
    #: walk only runs when the estimated clock actually crosses it.
    refresh_due = [
        min(ctl.next_refresh_due.values())
        if ctl.dram_config.refresh_enabled and ctl.next_refresh_due
        else math.inf
        for ctl in controllers
    ]

    try:
        remaining: Dict[int, int] = {}
        heads: List[Tuple[float, int]] = []
        for index, core in enumerate(cores):
            take = min(budget, len(core.trace) - core._cursor)
            if take <= 0:
                continue
            remaining[index] = take
            heapq.heappush(heads, (max(start, core._front_cycle), index))
        while heads:
            dispatch, index = heapq.heappop(heads)
            core = cores[index]
            cache = core.cache
            stats = core.stats
            cpi = pace[index]
            trace = core.trace
            left = remaining[index]
            while True:
                entry = trace[core._cursor]
                need = entry.bubble_count + 1
                cycle = int(dispatch)
                clock["now"] = cycle

                accesses: List[Tuple[int, bool]] = []
                if cache is not None:
                    result = cache.access(entry.address, is_write=entry.is_write)
                    if result.hit:
                        stats.llc_hits += 1
                    else:
                        stats.llc_misses += 1
                        if result.writeback_address is not None:
                            accesses.append((result.writeback_address, True))
                        accesses.append((result.fill_address, False))
                else:
                    accesses.append((entry.address, entry.is_write))

                for physical, is_write in accesses:
                    address = mapper.decode(physical)
                    channel = address.channel
                    ctl = controllers[channel]
                    if cycle >= refresh_due[channel]:
                        _catch_up_refreshes(ctl, cycle)
                        refresh_due[channel] = min(ctl.next_refresh_due.values())
                    _, latency = _warm_access(ctl, address, is_write, cycle)
                    if is_write:
                        stats.memory_writes += 1
                        ctl.stats.write_requests += 1
                    else:
                        stats.memory_reads += 1
                        ctl.stats.read_requests += 1
                        completion = dispatch + latency
                        ctl.stats.total_read_latency += latency
                        ctl.stats.completed_reads += 1
                        ctl.stats.per_core_read_latency[core.core_id] += latency
                        ctl.stats.per_core_reads[core.core_id] += 1
                        if completion > core._last_completion_cycle:
                            core._last_completion_cycle = completion
                        if completion > stats.finish_cycle:
                            stats.finish_cycle = completion

                core._cursor += 1
                core._dispatched_instructions += need
                stats.retired_instructions = core._dispatched_instructions
                if core._cursor >= len(trace):
                    core._trace_exhausted = True
                dispatch += need * cpi
                left -= 1
                if left <= 0 or core._trace_exhausted:
                    break
                if heads and heads[0][0] < dispatch:
                    # Another core's next entry is earlier: yield to it and
                    # come back through the heap.
                    heapq.heappush(heads, (dispatch, index))
                    break
            core._front_cycle = dispatch
            core._dispatch_memo = None
            remaining[index] = left
            if dispatch > end:
                end = dispatch

        end_cycle = int(math.ceil(end))
        clock["now"] = end_cycle
        for ctl in controllers:
            _catch_up_refreshes(ctl, end_cycle)
    finally:
        for undo in undos:
            undo()
    for ctl in controllers:
        # Invalidate every cached kernel decision: device state moved on.
        ctl.mutations += 1
        if end_cycle > ctl.current_cycle:
            ctl.current_cycle = end_cycle
    kernel.now = float(end_cycle)
    for core in cores:
        if core._front_cycle < end_cycle and not core._trace_exhausted:
            # Idle cores resume no earlier than the fast-forwarded clock.
            core._front_cycle = float(end_cycle)
            core._dispatch_memo = None


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #
def run_sampled(
    system: System, config: Optional[SampledConfig] = None
) -> SimulationResult:
    """Run ``system`` in sampled fidelity; returns a full SimulationResult.

    ``warmup`` trace entries per core are replayed in detail first; then,
    out of every ``interval`` entries, the first ``interval -
    detailed_window`` are fast-forwarded and the remaining
    ``detailed_window`` replayed in detail — so every fast-forward phase is
    followed by a detailed window that re-grounds the timing state before
    measurements continue.
    """
    config = config or SampledConfig()
    kernel = EventKernel(
        system.cores, system.fabric, max_steps=system.config.max_steps
    )
    cores = system.cores
    ff_budget = config.interval - config.detailed_window

    # Running calibration per core: (detailed cycles, instructions retired
    # in detail).  Every detailed window adds to it; every fast-forward
    # phase paces itself with the cumulative cycles-per-instruction.
    calibration = [[0.0, 0] for _ in cores]
    timing = system.fabric.controllers[0].dram_config.timing
    # Rough prior for the degenerate warmup=0 first phase, before any
    # window has been measured: one overlapped miss round-trip.
    prior_cpi = (timing.tRCD + timing.tCL + timing.tBURST) / 4.0

    def _calibrated_detailed(budget: int) -> None:
        before = kernel.now
        marks = [core._dispatched_instructions for core in cores]
        _run_detailed(kernel, cores, budget)
        elapsed = kernel.now - before
        for index, core in enumerate(cores):
            retired = core._dispatched_instructions - marks[index]
            if retired > 0:
                calibration[index][0] += elapsed
                calibration[index][1] += retired

    def _pace() -> Dict[int, float]:
        return {
            index: (cycles / retired) if retired else prior_cpi
            for index, (cycles, retired) in enumerate(calibration)
        }

    _calibrated_detailed(config.warmup)
    while not all(core._trace_exhausted for core in cores):
        _fast_forward(system, kernel, ff_budget, _pace())
        if all(core._trace_exhausted for core in cores):
            break
        _calibrated_detailed(config.detailed_window)
    for core in cores:
        core.window_limit = None

    system._steps = kernel.steps
    now = int(math.ceil(kernel.now))
    final_cycle = max(system.fabric.drain(now), now)
    return system._build_result(final_cycle)


__all__ = ["run_sampled"]
