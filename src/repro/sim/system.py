"""Full-system simulation: cores + LLC + memory controller + DRAM + mitigation.

The simulation is event-driven: cores, the memory controller and the
mitigation register timestamped events on the min-heap kernel of
:mod:`repro.sim.engine`, and the system advances directly from event to
event, so no time is spent iterating over idle cycles or re-scanning idle
components.  This is what makes a pure-Python reproduction of a
cycle-accurate evaluation tractable (the repro-band note on simulation
speed).

A run produces a :class:`SimulationResult` carrying per-core IPC, memory
latency statistics, DRAM command counts, the energy breakdown, the
mitigation's statistics and the security verifier's verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.security import SecurityVerifier
from repro.controller.controller import ControllerConfig
from repro.controller.fabric import ChannelFabric
from repro.controller.policies import ControllerPolicySpec
from repro.cpu.cache import CacheConfig, LastLevelCache
from repro.cpu.core import Core, CoreConfig
from repro.cpu.trace import Trace
from repro.dram.config import DRAMConfig
from repro.energy.model import DRAMEnergyModel, EnergyBreakdown
from repro.mitigations.base import RowHammerMitigation
from repro.sim.engine import EventKernel


@dataclass
class SystemConfig:
    """Everything needed to build a system."""

    dram: DRAMConfig = field(default_factory=DRAMConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    #: Controller policy triple (scheduler / row policy / refresh policy);
    #: ``None`` selects the default (fr_fcfs, open_page, all_bank).
    policy: Optional[ControllerPolicySpec] = None
    core: CoreConfig = field(default_factory=CoreConfig)
    use_llc: bool = False
    llc: Optional[CacheConfig] = None
    verify_security: bool = True
    #: RowHammer threshold used by the security verifier (the mitigation's own
    #: threshold is configured on the mitigation object).
    nrh_for_verification: Optional[int] = None
    #: ``False`` runs the verifiers in their streaming max-margin mode (the
    #: verdict, count, first-violation cycle and max disturbance are kept;
    #: per-violation objects are not) — what security audits use.
    record_violations: bool = True
    max_steps: int = 200_000_000


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    name: str
    mitigation_name: str
    cycles: int
    per_core_ipc: List[float]
    per_core_instructions: List[int]
    average_read_latency: float
    read_requests: int
    write_requests: int
    dram_stats: Dict[str, int]
    energy: EnergyBreakdown
    preventive_refreshes: int
    early_refresh_operations: int
    mitigation_stats: Dict[str, float]
    security_ok: bool
    max_disturbance: int
    steps: int
    #: Total RowHammer-invariant violations across every channel's verifier
    #: (0 when verification was off or the run was secure).
    security_violations: int = 0
    #: Earliest cycle any verifier saw a violation (``None`` when secure).
    first_violation_cycle: Optional[int] = None

    @property
    def ipc(self) -> float:
        """Single-core IPC (first core), the metric of Figures 10 and 12."""
        return self.per_core_ipc[0] if self.per_core_ipc else 0.0

    @property
    def total_energy_nj(self) -> float:
        return self.energy.total_nj

    def summary(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "mitigation": self.mitigation_name,
            "cycles": self.cycles,
            "ipc": round(self.ipc, 5),
            "avg_read_latency": round(self.average_read_latency, 2),
            "preventive_refreshes": self.preventive_refreshes,
            "energy_nj": round(self.total_energy_nj, 1),
            "security_ok": self.security_ok,
        }


class System:
    """One simulated machine: N cores sharing a channel-partitioned fabric.

    ``mitigation`` is either a single :class:`RowHammerMitigation` instance
    (1-channel configurations) or one instance per channel; the fabric keeps
    each channel's mitigation state independent and this class reports their
    aggregate.
    """

    def __init__(
        self,
        traces: Sequence[Trace],
        mitigation: Union[
            None, RowHammerMitigation, Sequence[RowHammerMitigation]
        ] = None,
        config: Optional[SystemConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        if not traces:
            raise ValueError("at least one trace is required")
        self.config = config or SystemConfig()
        self.name = name or traces[0].name
        self.fabric = ChannelFabric(
            self.config.dram,
            self.config.controller,
            mitigations=mitigation,
            policy=self.config.policy,
        )
        #: Aggregate mitigation view (None for the unprotected baseline).
        self.mitigation = self.fabric.mitigation
        #: One security verifier per channel, each observing that channel's
        #: DRAM ground truth (the RowHammer invariant is per-bank, and banks
        #: never span channels, so the per-channel verdicts compose exactly).
        self.verifiers: List[SecurityVerifier] = []
        if self.config.verify_security:
            nrh = self.config.nrh_for_verification
            if nrh is None and self.mitigation is not None:
                nrh = self.mitigation.nrh
            self.verifiers = [
                SecurityVerifier(
                    controller.dram,
                    nrh=nrh or 10**9,
                    record_violations=self.config.record_violations,
                )
                for controller in self.fabric.controllers
            ]
        self.cores: List[Core] = []
        shared_cache = None
        if self.config.use_llc:
            cache_config = self.config.llc or (
                CacheConfig.paper_multi_core() if len(traces) > 1 else CacheConfig.paper_single_core()
            )
            shared_cache = LastLevelCache(cache_config)
        for core_id, trace in enumerate(traces):
            self.cores.append(
                Core(
                    core_id=core_id,
                    trace=trace,
                    controller=self.fabric,
                    config=self.config.core,
                    cache=shared_cache,
                )
            )
        self._steps = 0

    @property
    def controller(self):
        """The memory subsystem as tests address it.

        A 1-channel system exposes its single
        :class:`~repro.controller.controller.MemoryController` directly
        (preserving the pre-fabric interface used throughout the test
        suite); multi-channel systems expose the fabric.
        """
        if len(self.fabric.controllers) == 1:
            return self.fabric.controllers[0]
        return self.fabric

    @property
    def verifier(self) -> Optional[SecurityVerifier]:
        """The first channel's verifier (the only one on 1-channel systems)."""
        return self.verifiers[0] if self.verifiers else None

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Run to completion (all traces replayed, all queues drained).

        The heavy lifting lives in :class:`repro.sim.engine.EventKernel`:
        cores, the controller and the mitigation all register timestamped
        events on one min-heap, so each processed event costs O(log n)
        instead of a rescan of every component.
        """
        kernel = EventKernel(
            self.cores, self.fabric, max_steps=self.config.max_steps
        )
        now = kernel.run()
        self._steps = kernel.steps
        final_cycle = self.fabric.drain(int(math.ceil(now)))
        final_cycle = max(final_cycle, int(math.ceil(now)))
        return self._build_result(final_cycle)

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def _build_result(self, final_cycle: int) -> SimulationResult:
        energy_model = DRAMEnergyModel(
            num_ranks=self.config.dram.organization.ranks_per_channel
            * self.config.dram.organization.channels
        )
        dram_stats = self.fabric.dram_statistics()
        controller_stats = self.fabric.stats
        # The refresh-energy calibration (28 nJ per REF) assumes the
        # *unadjusted* all-bank coverage; fine-granularity refresh policies
        # rewrite tREFI/rows_per_refresh on their adjusted copy, and passing
        # the pre-adjustment coverage here is what keeps total refresh
        # energy granularity-invariant.
        energy = energy_model.energy(
            dram_stats,
            final_cycle,
            rows_per_refresh=self.config.dram.rows_per_refresh,
        )
        mitigation_name = self.mitigation.name if self.mitigation is not None else "none"
        mitigation_stats: Dict[str, float] = {}
        preventive = 0
        early = 0
        if self.mitigation is not None:
            stats = self.mitigation.stats
            preventive = stats.preventive_refreshes
            early = stats.early_refresh_operations
            mitigation_stats = {
                "observed_activations": stats.observed_activations,
                "preventive_refreshes": stats.preventive_refreshes,
                "early_refresh_operations": stats.early_refresh_operations,
                "mitigation_memory_requests": stats.mitigation_memory_requests,
                "throttled_activations": stats.throttled_activations,
                "counter_resets": stats.counter_resets,
            }
            mitigation_stats.update(stats.extra)
        security_ok = all(verifier.is_secure for verifier in self.verifiers)
        max_disturbance = max(
            (verifier.max_disturbance for verifier in self.verifiers), default=0
        )
        security_violations = sum(
            verifier.violation_count for verifier in self.verifiers
        )
        violation_cycles = [
            verifier.first_violation_cycle
            for verifier in self.verifiers
            if verifier.first_violation_cycle is not None
        ]
        first_violation_cycle = min(violation_cycles) if violation_cycles else None

        return SimulationResult(
            name=self.name,
            mitigation_name=mitigation_name,
            cycles=final_cycle,
            per_core_ipc=[core.instructions_per_cycle() for core in self.cores],
            per_core_instructions=[core.stats.retired_instructions for core in self.cores],
            average_read_latency=controller_stats.average_read_latency,
            read_requests=controller_stats.read_requests,
            write_requests=controller_stats.write_requests,
            dram_stats=dram_stats.as_dict(),
            energy=energy,
            preventive_refreshes=preventive,
            early_refresh_operations=early,
            mitigation_stats=mitigation_stats,
            security_ok=security_ok,
            max_disturbance=max_disturbance,
            steps=self._steps,
            security_violations=security_violations,
            first_violation_cycle=first_violation_cycle,
        )
