"""Full-system simulation: cores + LLC + memory controller + DRAM + mitigation.

The simulation is event-driven: at each step the system advances directly to
the earliest of (a) the next cycle a core wants to inject a request and
(b) the earliest cycle the memory controller can issue a DRAM command, so no
time is spent iterating over idle cycles.  This is what makes a pure-Python
reproduction of a cycle-accurate evaluation tractable (the repro-band note on
simulation speed).

A run produces a :class:`SimulationResult` carrying per-core IPC, memory
latency statistics, DRAM command counts, the energy breakdown, the
mitigation's statistics and the security verifier's verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.security import SecurityVerifier
from repro.controller.controller import ControllerConfig, MemoryController
from repro.cpu.cache import CacheConfig, LastLevelCache
from repro.cpu.core import Core, CoreConfig
from repro.cpu.trace import Trace
from repro.dram.config import DRAMConfig
from repro.energy.model import DRAMEnergyModel, EnergyBreakdown
from repro.mitigations.base import RowHammerMitigation

_INFINITY = math.inf


@dataclass
class SystemConfig:
    """Everything needed to build a system."""

    dram: DRAMConfig = field(default_factory=DRAMConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    use_llc: bool = False
    llc: Optional[CacheConfig] = None
    verify_security: bool = True
    #: RowHammer threshold used by the security verifier (the mitigation's own
    #: threshold is configured on the mitigation object).
    nrh_for_verification: Optional[int] = None
    max_steps: int = 200_000_000


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    name: str
    mitigation_name: str
    cycles: int
    per_core_ipc: List[float]
    per_core_instructions: List[int]
    average_read_latency: float
    read_requests: int
    write_requests: int
    dram_stats: Dict[str, int]
    energy: EnergyBreakdown
    preventive_refreshes: int
    early_refresh_operations: int
    mitigation_stats: Dict[str, float]
    security_ok: bool
    max_disturbance: int
    steps: int

    @property
    def ipc(self) -> float:
        """Single-core IPC (first core), the metric of Figures 10 and 12."""
        return self.per_core_ipc[0] if self.per_core_ipc else 0.0

    @property
    def total_energy_nj(self) -> float:
        return self.energy.total_nj

    def summary(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "mitigation": self.mitigation_name,
            "cycles": self.cycles,
            "ipc": round(self.ipc, 5),
            "avg_read_latency": round(self.average_read_latency, 2),
            "preventive_refreshes": self.preventive_refreshes,
            "energy_nj": round(self.total_energy_nj, 1),
            "security_ok": self.security_ok,
        }


class System:
    """One simulated machine: N cores sharing a memory controller."""

    def __init__(
        self,
        traces: Sequence[Trace],
        mitigation: Optional[RowHammerMitigation] = None,
        config: Optional[SystemConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        if not traces:
            raise ValueError("at least one trace is required")
        self.config = config or SystemConfig()
        self.mitigation = mitigation
        self.name = name or traces[0].name
        self.controller = MemoryController(
            self.config.dram, self.config.controller, mitigation=mitigation
        )
        self.verifier: Optional[SecurityVerifier] = None
        if self.config.verify_security:
            nrh = self.config.nrh_for_verification
            if nrh is None and mitigation is not None:
                nrh = mitigation.nrh
            self.verifier = SecurityVerifier(
                self.controller.dram, nrh=nrh or 10**9
            )
        self.cores: List[Core] = []
        shared_cache = None
        if self.config.use_llc:
            cache_config = self.config.llc or (
                CacheConfig.paper_multi_core() if len(traces) > 1 else CacheConfig.paper_single_core()
            )
            shared_cache = LastLevelCache(cache_config)
        for core_id, trace in enumerate(traces):
            self.cores.append(
                Core(
                    core_id=core_id,
                    trace=trace,
                    controller=self.controller,
                    config=self.config.core,
                    cache=shared_cache,
                )
            )
        self._steps = 0

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Run to completion (all traces replayed, all queues drained)."""
        now = 0.0
        max_steps = self.config.max_steps
        while self._steps < max_steps:
            if self._all_done():
                break
            self._steps += 1
            # Give blocked cores a chance to re-enqueue rejected requests.
            for core in self.cores:
                if core.has_blocked_request:
                    core.retry_blocked(now)

            core_cycle, next_core = self._next_core_event()
            controller_cycle = self.controller.next_issue_cycle(int(math.ceil(now)))
            controller_time = (
                float(controller_cycle) if controller_cycle is not None else _INFINITY
            )

            if core_cycle is _INFINITY and controller_time is _INFINITY:
                if self._all_done():
                    break
                # Cores are blocked on memory and the controller has no work:
                # this can only happen transiently while a blocked request
                # waits for queue space; nudge time forward by one cycle.
                now += 1.0
                continue

            if core_cycle <= controller_time:
                now = max(now, core_cycle)
                next_core.step(now)
            else:
                issued = self.controller.issue_next(int(math.ceil(controller_time)))
                now = max(now, float(issued if issued is not None else controller_time))

        final_cycle = self.controller.drain(int(math.ceil(now)))
        final_cycle = max(final_cycle, int(math.ceil(now)))
        return self._build_result(final_cycle)

    def _next_core_event(self):
        best_cycle = _INFINITY
        best_core = None
        for core in self.cores:
            cycle = core.next_event_cycle()
            if cycle < best_cycle:
                best_cycle = cycle
                best_core = core
        return best_cycle, best_core

    def _all_done(self) -> bool:
        return all(core.finished for core in self.cores) and not self.controller.has_work()

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def _build_result(self, final_cycle: int) -> SimulationResult:
        energy_model = DRAMEnergyModel(
            num_ranks=self.config.dram.organization.ranks_per_channel
            * self.config.dram.organization.channels
        )
        energy = energy_model.energy(self.controller.dram.stats, final_cycle)
        mitigation_name = self.mitigation.name if self.mitigation is not None else "none"
        mitigation_stats: Dict[str, float] = {}
        preventive = 0
        early = 0
        if self.mitigation is not None:
            stats = self.mitigation.stats
            preventive = stats.preventive_refreshes
            early = stats.early_refresh_operations
            mitigation_stats = {
                "observed_activations": stats.observed_activations,
                "preventive_refreshes": stats.preventive_refreshes,
                "early_refresh_operations": stats.early_refresh_operations,
                "mitigation_memory_requests": stats.mitigation_memory_requests,
                "throttled_activations": stats.throttled_activations,
                "counter_resets": stats.counter_resets,
            }
            mitigation_stats.update(stats.extra)
        security_ok = True
        max_disturbance = 0
        if self.verifier is not None:
            security_ok = not self.verifier.violations
            max_disturbance = self.verifier.max_disturbance

        return SimulationResult(
            name=self.name,
            mitigation_name=mitigation_name,
            cycles=final_cycle,
            per_core_ipc=[core.instructions_per_cycle() for core in self.cores],
            per_core_instructions=[core.stats.retired_instructions for core in self.cores],
            average_read_latency=self.controller.stats.average_read_latency,
            read_requests=self.controller.stats.read_requests,
            write_requests=self.controller.stats.write_requests,
            dram_stats=self.controller.dram.stats.as_dict(),
            energy=energy,
            preventive_refreshes=preventive,
            early_refresh_operations=early,
            mitigation_stats=mitigation_stats,
            security_ok=security_ok,
            max_disturbance=max_disturbance,
            steps=self._steps,
        )
