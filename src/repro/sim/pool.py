"""Shared warm worker pool for campaign and sweep fan-out.

Both fan-out layers — :class:`repro.sim.sweep.SweepRunner` and
:class:`repro.campaign.runner.CampaignRunner` — execute cells in a
``ProcessPoolExecutor``.  Each used to build (and tear down) its own pool
per ``run()`` call, so every campaign paid worker spawn plus a cold import
of the whole simulator stack in every worker before the first cell could
start; for the short cells typical of audit sweeps (seconds each) that
fixed cost rivals the real work.  This module keeps one process pool per
driver process, warmed by an initializer that pre-imports the execution
machinery and the workload/mitigation registries, so consecutive
campaigns and sweeps reuse hot workers.

Worker reuse is safe because both worker entry points
(:func:`repro.campaign.runner._execute_payload`,
:func:`repro.sim.sweep._worker_run`) construct the entire simulated system
per cell from a plain-data spec; the only state that persists across cells
is deliberately cacheable (imported modules, memoized trace synthesis —
deterministic functions of the spec).

Callers must NOT shut the shared pool down after a run — that is the whole
point.  It is torn down at interpreter exit (or explicitly via
:func:`shutdown_shared_pool`, which tests use to assert cold-start
behaviour).
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers: int = 0


def _warm_worker() -> None:  # pragma: no cover - runs inside pool workers
    """Pre-import the heavy modules a cell execution needs.

    Runs once per worker process at spawn time, moving the simulator-stack
    import cost (the dominant per-worker fixed cost for short cells) off
    the first cell's critical path.
    """
    import repro.analysis.security  # noqa: F401
    import repro.experiment.execute  # noqa: F401
    import repro.mitigations  # noqa: F401
    import repro.workloads  # noqa: F401


def shared_pool(max_workers: int) -> ProcessPoolExecutor:
    """The process-wide warm pool, (re)built only when it must grow.

    A pool with at least ``max_workers`` workers is reused as-is — callers
    throttle their own in-flight work, so a bigger pool never over-commits
    them.  A request for more workers than the current pool has replaces
    it (the old one drains in the background).
    """
    global _pool, _pool_workers
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if _pool is not None and _pool_workers >= max_workers:
        return _pool
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=False)
    # The platform-default start method, same as the per-run pools this
    # replaces: fork (Linux) inherits the driver's imports and makes the
    # initializer a cheap no-op, while spawn-default platforms (macOS,
    # Windows) pay a real per-worker interpreter warm-up — there the
    # initializer's pre-imports and the pool's process-long lifetime are
    # exactly what keeps that cost out of every run.  (Explicitly forcing
    # spawn/forkserver everywhere would re-import the driver's
    # ``__main__`` per worker, breaking guardless driver scripts that
    # worked with the old per-run pools.)
    _pool = ProcessPoolExecutor(max_workers=max_workers, initializer=_warm_worker)
    _pool_workers = max_workers
    return _pool


def shutdown_shared_pool(wait: bool = True) -> None:
    """Tear down the shared pool (no-op when none exists)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=wait, cancel_futures=True)
        _pool = None
        _pool_workers = 0


atexit.register(shutdown_shared_pool, wait=False)
