"""Performance and energy metrics used throughout the evaluation.

The paper reports:

* **Normalized IPC** for single-core runs (Figures 3, 6, 7, 9, 10, 12, 16,
  18) — IPC under a mitigation divided by IPC of the unprotected baseline.
* **Normalized weighted speedup** for multi-core runs (Figure 13) — the sum
  over cores of per-core IPC relative to the same core's isolated IPC,
  normalized to the unprotected baseline.
* **Normalized DRAM energy** (Figures 11, 14, 15).
* Geometric means across workloads and box-plot style distribution summaries
  (median, quartiles, min, max).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's cross-workload average for normalized IPC)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    log_sum = sum(math.log(v) for v in values)
    return math.exp(log_sum / len(values))


def normalized_values(values: Sequence[float], baseline: Sequence[float]) -> List[float]:
    """Element-wise ``values[i] / baseline[i]`` (IPC or energy normalization)."""
    if len(values) != len(baseline):
        raise ValueError("values and baseline must have the same length")
    result = []
    for value, base in zip(values, baseline):
        if base == 0:
            result.append(0.0)
        else:
            result.append(value / base)
    return result


def weighted_speedup(shared_ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """Weighted speedup: sum_i IPC_shared_i / IPC_alone_i  (Snavely & Tullsen)."""
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("shared and alone IPC lists must have the same length")
    total = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if alone <= 0:
            continue
        total += shared / alone
    return total


def normalized_weighted_speedup(
    mitigation_ipcs: Sequence[float],
    baseline_ipcs: Sequence[float],
    alone_ipcs: Sequence[float] = None,
) -> float:
    """Weighted speedup of a mitigated run normalized to the unprotected run.

    When ``alone_ipcs`` is omitted the per-core isolated IPCs cancel out for
    homogeneous mixes and the metric reduces to the ratio of summed relative
    IPCs, which is how the harness uses it.
    """
    if alone_ipcs is None:
        alone_ipcs = [1.0] * len(mitigation_ipcs)
    mitigated = weighted_speedup(mitigation_ipcs, alone_ipcs)
    baseline = weighted_speedup(baseline_ipcs, alone_ipcs)
    if baseline == 0:
        return 0.0
    return mitigated / baseline


def summarize_distribution(values: Sequence[float]) -> Dict[str, float]:
    """Box-plot style summary: min, 25th, median, 75th, max, mean, geomean."""
    if not values:
        return {
            "min": 0.0,
            "p25": 0.0,
            "median": 0.0,
            "p75": 0.0,
            "max": 0.0,
            "mean": 0.0,
            "geomean": 0.0,
        }
    ordered = sorted(values)
    return {
        "min": ordered[0],
        "p25": _percentile(ordered, 0.25),
        "median": _percentile(ordered, 0.50),
        "p75": _percentile(ordered, 0.75),
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
        "geomean": geometric_mean(ordered) if all(v > 0 for v in ordered) else 0.0,
    }


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight


def overhead_percent(normalized_value: float) -> float:
    """Convert a normalized IPC (<= 1) to a performance-overhead percentage."""
    return (1.0 - normalized_value) * 100.0


def energy_overhead_percent(normalized_energy: float) -> float:
    """Convert a normalized energy (>= 1) to an energy-overhead percentage."""
    return (normalized_energy - 1.0) * 100.0
