"""Parallel design-space sweep executor with on-disk result caching.

The paper's evaluation is hundreds of simulator runs — per-figure sweeps over
mitigations, RowHammer thresholds and counter-table parameters.  This module
turns one such sweep into a declarative list of :class:`SweepPoint` objects
and executes them through :class:`SweepRunner`, which

* fans points out across worker processes
  (:class:`concurrent.futures.ProcessPoolExecutor`), and
* memoizes each point's :class:`~repro.sim.system.SimulationResult` on disk,
  keyed by a content hash of the *entire* configuration (workload, trace
  length, mitigation + overrides, DRAM config, core config and a code
  version), so re-running a figure after editing an unrelated experiment is
  free.

Results are deterministic: a point's trace is derived from a process-stable
seed (see :mod:`repro.workloads.synthetic`), so the same point produces a
bit-identical ``SimulationResult`` whether it ran inline, in a worker
process, or came from the cache.  EXPERIMENTS.md documents the cache layout
and the environment knobs.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import as_completed
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.controller.policies import ControllerPolicySpec, normalize_policy
from repro.core.fsutil import atomic_write_bytes
from repro.cpu.core import CoreConfig
from repro.dram.config import DRAMConfig
from repro.experiment.spec import ExperimentSpec, WorkloadSpec
from repro.sim.pool import shared_pool
from repro.sim.runner import default_experiment_config
from repro.sim.system import SimulationResult

#: Bump when simulation semantics change in a way that invalidates cached
#: results (scheduler behaviour, trace generation, statistics definitions).
#: v2: channel-partitioned fabric (SweepPoint grew a ``channels`` axis).
#: v3: the declarative experiment API — :class:`SweepRunner` also executes
#: :class:`~repro.experiment.spec.ExperimentSpec` items, keyed by the
#: sha256 of their canonical spec JSON.
#: v4: the security-audit subsystem — :class:`SimulationResult` grew
#: ``security_violations``/``first_violation_cycle`` (cached pickles from v3
#: would deserialize without the new attributes).
#: v5: the pluggable controller-policy layer — :class:`SweepPoint` grew
#: scheduler/row-policy/refresh-policy axes and the canonical spec JSON
#: grew ``platform.controller`` (old keys would alias new configurations).
#: v6: sampled-fidelity execution — the canonical spec JSON grew
#: ``fidelity``/``sampled`` (emitted only when non-default, so full-fidelity
#: hashes are unchanged; the bump guards against any earlier cache that
#: predates the fidelity axis existing at all).
SWEEP_CACHE_VERSION = 6

_CACHE_DIR_ENV = "REPRO_SWEEP_CACHE"


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a design-space sweep.

    ``mitigation_overrides`` are forwarded to the mechanism's constructor
    exactly like :func:`repro.sim.runner.build_mitigation` does (e.g.
    ``{"config": CoMeTConfig(...)}`` for the Figure 6-9 sensitivity sweeps).
    """

    workload: str
    mitigation: str
    nrh: int
    num_requests: int = 8000
    num_cores: int = 1
    seed: int = 0
    verify_security: bool = True
    mitigation_overrides: Optional[Dict[str, Any]] = None
    #: Memory channels for the channel-partitioned fabric.  When it differs
    #: from the sweep's shared DRAM configuration, the point runs on a copy
    #: of that configuration with the organization re-channeled.
    channels: int = 1
    #: Controller policy axes (see :mod:`repro.controller.policies`); the
    #: defaults reproduce the paper's Table 2 controller bit-for-bit.
    scheduler: str = "fr_fcfs"
    row_policy: str = "open_page"
    refresh_policy: str = "all_bank"

    def policy_spec(self) -> Optional[ControllerPolicySpec]:
        """The point's controller policy (``None`` for the default triple)."""
        return normalize_policy(
            ControllerPolicySpec(
                scheduler=self.scheduler,
                row_policy=self.row_policy,
                refresh_policy=self.refresh_policy,
            )
        )

    def label(self) -> str:
        label = f"{self.workload}/{self.mitigation}@{self.nrh}"
        if self.channels != 1:
            label += f"x{self.channels}ch"
        policy = self.policy_spec()
        if policy is not None:
            label += f"/{policy.label()}"
        return label


def _rechanneled(dram_config: DRAMConfig, channels: int) -> DRAMConfig:
    """Copy ``dram_config`` with a different channel count (no-op when equal)."""
    if dram_config.organization.channels == channels:
        return dram_config
    return replace(
        dram_config,
        organization=replace(dram_config.organization, channels=channels),
    )


def execute_point(
    point: SweepPoint,
    dram_config: Optional[DRAMConfig] = None,
    core_config: Optional[CoreConfig] = None,
) -> SimulationResult:
    """Run one sweep point to completion on the event-driven engine."""
    # Imported here: repro.sim's package init imports this module, and
    # repro.experiment.execute imports repro.sim.system right back.
    from repro.experiment.execute import build_workload_traces, run_system

    dram_config = dram_config or default_experiment_config()
    dram_config = _rechanneled(dram_config, point.channels)
    traces = build_workload_traces(
        WorkloadSpec(
            name=point.workload,
            num_requests=point.num_requests,
            num_cores=point.num_cores,
            seed=point.seed,
        ),
        dram_config,
    )
    if point.num_cores > 1:
        name = f"{point.workload}_x{point.num_cores}"
    else:
        name = traces[0].name
    return run_system(
        traces,
        mitigation_name=point.mitigation,
        nrh=point.nrh,
        dram_config=dram_config,
        core_config=core_config,
        mitigation_overrides=point.mitigation_overrides,
        verify_security=point.verify_security,
        name=name,
        policy=point.policy_spec(),
    )


def point_cache_key(
    point: SweepPoint,
    dram_config: Optional[DRAMConfig],
    core_config: Optional[CoreConfig],
) -> str:
    """Content hash identifying one point's full configuration.

    Dataclass ``repr``s are deterministic and cover every field recursively,
    so any change to the DRAM organization/timing, the core model, the
    mitigation overrides or the point itself yields a new key.
    """
    material = "|".join(
        (
            f"v{SWEEP_CACHE_VERSION}",
            repr(point),
            repr(dram_config),
            repr(core_config),
        )
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def spec_cache_key(spec: ExperimentSpec) -> str:
    """Content hash identifying one :class:`ExperimentSpec`.

    The canonical spec JSON covers the workload, mitigation, platform and
    verification settings, so — unlike :func:`point_cache_key` — the key is
    independent of any runner-level shared configuration.
    """
    material = f"v{SWEEP_CACHE_VERSION}|spec|{spec.canonical_json()}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class SweepCache:
    """Pickle-per-result on-disk cache, keyed by configuration hash."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[SimulationResult]:
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except Exception:
            # Unpickling corrupt/stale bytes can raise nearly anything
            # (UnpicklingError, ValueError, ImportError, ...); any failure
            # here just means re-simulating the point.
            self.misses += 1
            return None
        if not isinstance(result, SimulationResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        # Write-then-rename (shared fsutil helper, fsynced) so a crashed
        # worker never leaves a torn file behind for another process to load.
        atomic_write_bytes(
            self._path(key),
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
        )


def default_cache_dir() -> Path:
    env = os.environ.get(_CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweeps"


def _worker_run(
    args: Tuple[object, Optional[DRAMConfig], Optional[CoreConfig]]
) -> SimulationResult:
    item, dram_config, core_config = args
    return _execute_item(item, dram_config, core_config)


def _execute_item(
    item: object,
    dram_config: Optional[DRAMConfig],
    core_config: Optional[CoreConfig],
) -> SimulationResult:
    """Run one work item: a legacy :class:`SweepPoint` or an ExperimentSpec."""
    if isinstance(item, ExperimentSpec):
        from repro.experiment.execute import execute_spec

        return execute_spec(item)
    return execute_point(item, dram_config=dram_config, core_config=core_config)


class SweepRunner:
    """Execute a list of sweep points, in parallel, through the result cache.

    Work items are legacy :class:`SweepPoint` objects or declarative
    :class:`~repro.experiment.spec.ExperimentSpec` objects (the
    :class:`~repro.experiment.session.Session` facade submits the latter);
    the two kinds can be mixed in one batch.  Spec items carry their own
    platform, so the runner's shared ``dram_config``/``core_config`` apply
    only to points.

    Parameters
    ----------
    dram_config:
        DRAM configuration shared by every point (default: the scaled
        experiment configuration).
    max_workers:
        Worker processes to fan misses across.  ``0`` or ``1`` runs inline
        (no subprocesses); ``None`` uses ``os.cpu_count()``.
    cache_dir:
        Result cache directory.  ``None`` uses ``$REPRO_SWEEP_CACHE`` or
        ``~/.cache/repro/sweeps``; pass ``use_cache=False`` to disable
        caching entirely.
    store:
        Optional :class:`~repro.campaign.store.ResultStore` (duck-typed:
        anything with ``get_result(spec)`` / ``put_result(spec, result)``).
        When given, *spec* items cache through the store's versioned,
        checksummed RunRecord JSONs instead of the pickle cache — the same
        database campaigns write, so a sweep re-run after a campaign (or
        vice versa) recomputes nothing.  Legacy :class:`SweepPoint` items
        keep using the pickle cache.
    """

    def __init__(
        self,
        dram_config: Optional[DRAMConfig] = None,
        core_config: Optional[CoreConfig] = None,
        max_workers: Optional[int] = None,
        cache_dir: Optional[Path] = None,
        use_cache: bool = True,
        store: Optional[Any] = None,
    ) -> None:
        self.dram_config = dram_config or default_experiment_config()
        self.core_config = core_config
        self.max_workers = (os.cpu_count() or 1) if max_workers is None else max_workers
        self.store = store
        self.cache: Optional[SweepCache] = (
            SweepCache(cache_dir or default_cache_dir()) if use_cache else None
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        points: Sequence,
        progress: Optional[Callable[[object, SimulationResult, bool], None]] = None,
    ) -> List[SimulationResult]:
        """Run every item (point or spec); results come back in input order.

        ``progress`` (if given) is called as ``progress(point, result,
        from_cache)`` as each result lands (completion order for computed
        points).  Each computed point is written to the cache the moment it
        completes, so interrupting a long sweep keeps the finished points.
        """
        results: List[Optional[SimulationResult]] = [None] * len(points)
        pending: List[int] = []
        for index, point in enumerate(points):
            cached = self._cache_get(point)
            if cached is not None:
                results[index] = cached
                if progress is not None:
                    progress(point, cached, True)
            else:
                pending.append(index)

        def finish(index: int, result: SimulationResult) -> None:
            self._cache_put(points[index], result)
            results[index] = result
            if progress is not None:
                progress(points[index], result, False)

        if self.max_workers <= 1 or len(pending) == 1:
            for index in pending:
                finish(
                    index,
                    _execute_item(points[index], self.dram_config, self.core_config),
                )
        elif pending:
            # The shared warm pool (see repro.sim.pool) outlives this run on
            # purpose: consecutive sweeps reuse hot workers instead of
            # paying spawn + simulator import per run.
            workers = min(self.max_workers, len(pending))
            pool = shared_pool(workers)
            futures = {
                pool.submit(
                    _worker_run,
                    (points[index], self.dram_config, self.core_config),
                ): index
                for index in pending
            }
            for future in as_completed(futures):
                finish(futures[future], future.result())
        return list(results)  # type: ignore[arg-type]

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #
    def _key(self, point) -> str:
        if isinstance(point, ExperimentSpec):
            return spec_cache_key(point)
        return point_cache_key(point, self.dram_config, self.core_config)

    def _cache_get(self, point: SweepPoint) -> Optional[SimulationResult]:
        if self.store is not None and isinstance(point, ExperimentSpec):
            return self.store.get_result(point)
        if self.cache is None:
            return None
        return self.cache.get(self._key(point))

    def _cache_put(self, point: SweepPoint, result: SimulationResult) -> None:
        if self.store is not None and isinstance(point, ExperimentSpec):
            self.store.put_result(point, result)
            return
        if self.cache is not None:
            self.cache.put(self._key(point), result)

    # ------------------------------------------------------------------ #
    # Grid construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def grid(
        workloads: Sequence[str],
        mitigations: Sequence[str],
        nrhs: Sequence[int],
        num_requests: int = 8000,
        num_cores: int = 1,
        include_baseline: bool = True,
        mitigation_overrides: Optional[Dict[str, Any]] = None,
        channels: Sequence[int] = (1,),
        schedulers: Sequence[str] = ("fr_fcfs",),
        row_policies: Sequence[str] = ("open_page",),
        refresh_policies: Sequence[str] = ("all_bank",),
    ) -> List[SweepPoint]:
        """The Figures 6-9 pattern: workload x mitigation x NRH (x channels
        x controller policies).

        The unprotected baseline (needed by every normalized metric) is
        threshold-independent, so ``include_baseline`` adds a single
        ``"none"`` point per workload *per channel count and policy triple*
        rather than one per threshold, pinned at ``nrh=1`` so its cache key
        is the same regardless of the swept threshold list (the benchmark
        harnesses use the same convention).  ``channels`` is the
        multi-channel scaling axis and ``schedulers``/``row_policies``/
        ``refresh_policies`` are the controller-policy axes; the defaults
        keep the classic single-channel, Table 2-controller grid.
        """
        points: List[SweepPoint] = []
        policy_triples = [
            (scheduler, row_policy, refresh_policy)
            for scheduler in schedulers
            for row_policy in row_policies
            for refresh_policy in refresh_policies
        ]
        for num_channels in channels:
            for scheduler, row_policy, refresh_policy in policy_triples:
                for workload in workloads:
                    if include_baseline:
                        points.append(
                            SweepPoint(
                                workload=workload,
                                mitigation="none",
                                nrh=1,
                                num_requests=num_requests,
                                num_cores=num_cores,
                                verify_security=False,
                                channels=num_channels,
                                scheduler=scheduler,
                                row_policy=row_policy,
                                refresh_policy=refresh_policy,
                            )
                        )
                    for mitigation in mitigations:
                        if mitigation == "none":
                            continue
                        for nrh in nrhs:
                            points.append(
                                SweepPoint(
                                    workload=workload,
                                    mitigation=mitigation,
                                    nrh=nrh,
                                    num_requests=num_requests,
                                    num_cores=num_cores,
                                    mitigation_overrides=mitigation_overrides,
                                    channels=num_channels,
                                    scheduler=scheduler,
                                    row_policy=row_policy,
                                    refresh_policy=refresh_policy,
                                )
                            )
        return points
