"""System assembly and experiment running.

* :class:`~repro.sim.system.System` — wires cores, the memory controller,
  the DRAM model, a RowHammer mitigation and the security verifier together
  and runs the event-driven simulation to completion.
* :mod:`repro.sim.metrics` — IPC, weighted speedup, geometric means and
  normalization helpers (the metrics of Figures 10-16).
* :mod:`repro.sim.runner` — convenience functions used by the examples and
  the benchmark harnesses: run one workload under one mitigation, compare
  mitigations, sweep configurations.
"""

from repro.sim.system import System, SystemConfig, SimulationResult
from repro.sim.metrics import (
    geometric_mean,
    normalized_values,
    weighted_speedup,
    normalized_weighted_speedup,
    summarize_distribution,
)
from repro.sim.runner import (
    MITIGATION_FACTORIES,
    build_mitigation,
    run_single_core,
    run_multi_core,
    compare_single_core,
    normalized_ipc,
)

__all__ = [
    "System",
    "SystemConfig",
    "SimulationResult",
    "geometric_mean",
    "normalized_values",
    "weighted_speedup",
    "normalized_weighted_speedup",
    "summarize_distribution",
    "MITIGATION_FACTORIES",
    "build_mitigation",
    "run_single_core",
    "run_multi_core",
    "compare_single_core",
    "normalized_ipc",
]
