"""System assembly and experiment running.

* :mod:`repro.sim.engine` — the event-driven simulation kernel: one min-heap
  of timestamped events shared by cores, the memory controller and the
  mitigation.
* :mod:`repro.sim.sweep` — the design-space sweep executor: declarative
  sweep points, worker-process fan-out, on-disk result caching.
* :class:`~repro.sim.system.System` — wires cores, the memory controller,
  the DRAM model, a RowHammer mitigation and the security verifier together
  and runs the event-driven simulation to completion.
* :mod:`repro.sim.metrics` — IPC, weighted speedup, geometric means and
  normalization helpers (the metrics of Figures 10-16).
* :mod:`repro.sim.runner` — convenience functions used by the examples and
  the benchmark harnesses: run one workload under one mitigation, compare
  mitigations, sweep configurations.
* :mod:`repro.sim.sampled` — the sampled-fidelity executor: functional
  fast-forward between detailed windows (``fidelity="sampled"`` specs).
"""

from repro.sim.engine import EventKernel, SimulationDeadlockError
from repro.sim.system import System, SystemConfig, SimulationResult
from repro.sim.metrics import (
    geometric_mean,
    normalized_values,
    weighted_speedup,
    normalized_weighted_speedup,
    summarize_distribution,
)
from repro.sim.runner import (
    MITIGATION_FACTORIES,
    MITIGATION_REGISTRY,
    build_mitigation,
    run_single_core,
    run_multi_core,
    compare_single_core,
    normalized_ipc,
)
from repro.sim.sampled import run_sampled
from repro.sim.sweep import SweepPoint, SweepRunner, execute_point

__all__ = [
    "run_sampled",
    "EventKernel",
    "SimulationDeadlockError",
    "System",
    "SystemConfig",
    "SimulationResult",
    "SweepPoint",
    "SweepRunner",
    "execute_point",
    "geometric_mean",
    "normalized_values",
    "weighted_speedup",
    "normalized_weighted_speedup",
    "summarize_distribution",
    "MITIGATION_FACTORIES",
    "MITIGATION_REGISTRY",
    "build_mitigation",
    "run_single_core",
    "run_multi_core",
    "compare_single_core",
    "normalized_ipc",
]
