"""Legacy experiment-runner helpers (deprecated shims).

The declarative experiment API (:mod:`repro.experiment`) is the front door
for assembling simulations now: build an
:class:`~repro.experiment.spec.ExperimentSpec` and execute it through a
:class:`~repro.experiment.session.Session`.  The helpers here predate it and
are kept as thin shims — each one warns ``DeprecationWarning`` once per
process and then delegates to the same execution core the spec path uses
(:func:`repro.experiment.execute.run_system`), so their outputs remain
bit-identical to spec-driven runs (pinned by the golden equivalence tests).

``MITIGATION_REGISTRY`` and ``MITIGATION_FACTORIES`` are live read-only
views over the decorator-based registry of
:mod:`repro.experiment.registry`, which replaced the hand-maintained dicts
that used to live in this module.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping
from typing import Callable, Dict, List, Optional, Sequence

from repro.cpu.core import CoreConfig
from repro.cpu.trace import Trace
from repro.dram.config import DRAMConfig
from repro.experiment.registry import mitigation_entry, mitigation_names
from repro.experiment.spec import MitigationSpec, PlatformSpec
from repro.mitigations.base import RowHammerMitigation
from repro.sim.system import SimulationResult


class _RegistryView(Mapping):
    """Live, read-only mapping over the mitigation registry.

    A plain dict snapshot taken at import time would miss mechanisms whose
    modules had not been imported yet (registration happens at class
    definition); resolving through the registry on every access keeps this
    view — and everything built on it — always complete.
    """

    def __init__(self, value_of: Callable[[str], object]) -> None:
        self._value_of = value_of

    def __getitem__(self, name: str):
        try:
            return self._value_of(name)
        except ValueError:
            raise KeyError(name) from None

    def __iter__(self):
        return iter(mitigation_names())

    def __len__(self) -> int:
        return len(mitigation_names())


#: Mitigation name -> mechanism class (live view over the registry).
MITIGATION_REGISTRY: Mapping = _RegistryView(lambda name: mitigation_entry(name).cls)

#: Mitigation name -> factory taking the RowHammer threshold (live view).
MITIGATION_FACTORIES: Mapping = _RegistryView(
    lambda name: (lambda nrh, _entry=mitigation_entry(name): _entry.build(nrh))
)


def build_mitigation(name: str, nrh: int, **overrides) -> RowHammerMitigation:
    """Build a mitigation by name at a RowHammer threshold.

    ``overrides`` are forwarded to the mechanism's constructor for the
    sensitivity sweeps (e.g. ``config=CoMeTConfig(...)`` for Figures 6-9).
    The unprotected baseline takes no parameters, so it ignores them.
    """
    return mitigation_entry(name).build(nrh, **overrides)


def build_mitigations(
    name: str, nrh: int, channels: int, **overrides
) -> List[RowHammerMitigation]:
    """One independently-constructed mitigation instance per channel.

    The channel fabric requires distinct instances: sharing one object
    across channels would merge per-channel counter state.  Seedable
    mechanisms (PARA, BlockHammer — declared by their registry entry, no
    signature probing) get a per-channel ``seed`` so their channels draw
    independent streams; channel 0 keeps the default seed, preserving
    1-channel bit-identity.  Delegates to
    :meth:`~repro.experiment.spec.MitigationSpec.build_instances`, the one
    implementation of the per-channel construction rule.
    """
    return MitigationSpec(name=name, nrh=nrh, overrides=overrides).build_instances(
        channels
    )


def default_experiment_config(
    rows_per_bank: int = 4096,
    refresh_window_scale: float = 1.0 / 256.0,
    channels: int = 1,
) -> DRAMConfig:
    """The scaled DRAM configuration used by examples and benches.

    Two ranks with four banks each, 4K rows per bank, and a refresh window of
    ~300K DRAM cycles.  The scale is chosen so that, for the synthetic
    workload suite, the number of activations a hot row receives per
    counter-reset period relative to the preventive-refresh thresholds is in
    the same regime as the paper's full-length simulations (hot rows cross
    NPR at NRH=125 but not at NRH=1K); see EXPERIMENTS.md.  This is exactly
    what :meth:`~repro.experiment.spec.PlatformSpec.dram_config` builds.
    """
    return PlatformSpec(
        rows_per_bank=rows_per_bank,
        refresh_window_scale=refresh_window_scale,
        channels=channels,
    ).dram_config()


# --------------------------------------------------------------------------- #
# Deprecated run helpers
# --------------------------------------------------------------------------- #
_DEPRECATION_WARNED: set = set()


def _warn_deprecated(helper: str, replacement: str) -> None:
    """Warn about a legacy helper — exactly once per process per helper."""
    if helper in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(helper)
    warnings.warn(
        f"repro.sim.runner.{helper} is deprecated; build an ExperimentSpec and "
        f"use {replacement} (see repro.experiment)",
        DeprecationWarning,
        stacklevel=3,
    )


def run_single_core(
    trace: Trace,
    mitigation_name: str,
    nrh: int,
    dram_config: Optional[DRAMConfig] = None,
    core_config: Optional[CoreConfig] = None,
    mitigation_overrides: Optional[dict] = None,
    verify_security: bool = True,
) -> SimulationResult:
    """Deprecated: run one trace on a single-core system under one mitigation.

    Use an :class:`~repro.experiment.spec.ExperimentSpec` with a
    :class:`~repro.experiment.session.Session` instead; outputs are
    bit-identical.
    """
    _warn_deprecated("run_single_core", "Session.run")
    from repro.experiment.execute import run_system

    return run_system(
        [trace],
        mitigation_name=mitigation_name,
        nrh=nrh,
        dram_config=dram_config or default_experiment_config(),
        core_config=core_config,
        mitigation_overrides=mitigation_overrides,
        verify_security=verify_security,
        name=trace.name,
    )


def run_multi_core(
    traces: Sequence[Trace],
    mitigation_name: str,
    nrh: int,
    dram_config: Optional[DRAMConfig] = None,
    core_config: Optional[CoreConfig] = None,
    mitigation_overrides: Optional[dict] = None,
    verify_security: bool = True,
    name: Optional[str] = None,
) -> SimulationResult:
    """Deprecated: run a multi-programmed mix under one mitigation.

    Use an :class:`~repro.experiment.spec.ExperimentSpec` (``num_cores`` or
    ``mix``) with a :class:`~repro.experiment.session.Session` instead.
    """
    _warn_deprecated("run_multi_core", "Session.run")
    from repro.experiment.execute import run_system

    return run_system(
        list(traces),
        mitigation_name=mitigation_name,
        nrh=nrh,
        dram_config=dram_config or default_experiment_config(),
        core_config=core_config,
        mitigation_overrides=mitigation_overrides,
        verify_security=verify_security,
        name=name or traces[0].name,
    )


def normalized_ipc(result: SimulationResult, baseline: SimulationResult) -> float:
    """IPC of a mitigated run normalized to the unprotected baseline run."""
    if baseline.ipc == 0:
        return 0.0
    return result.ipc / baseline.ipc


def compare_single_core(
    trace: Trace,
    mitigation_names: Sequence[str],
    nrh: int,
    dram_config: Optional[DRAMConfig] = None,
    verify_security: bool = True,
) -> Dict[str, SimulationResult]:
    """Deprecated: run one trace under several mitigations plus the baseline.

    Use :meth:`~repro.experiment.session.Session.compare` instead.  Returns
    a mapping mitigation name -> result; the baseline is always included
    under the key ``"none"`` so callers can normalize.
    """
    _warn_deprecated("compare_single_core", "Session.compare")
    from repro.experiment.execute import run_system

    dram_config = dram_config or default_experiment_config()
    names = list(dict.fromkeys(["none", *mitigation_names]))
    results: Dict[str, SimulationResult] = {}
    for name in names:
        results[name] = run_system(
            [trace],
            mitigation_name=name,
            nrh=nrh,
            dram_config=dram_config,
            verify_security=verify_security and name != "none",
            name=trace.name,
        )
    return results
