"""Experiment runner helpers used by the examples and benchmark harnesses.

These functions encapsulate the common experimental pattern of the paper:
run a workload on the unprotected baseline and under one or more mitigations
at a given RowHammer threshold, then report normalized IPC / energy.

Every run uses a *scaled* DRAM configuration by default
(:func:`default_experiment_config`): the organization is shrunk and the
refresh window shortened so several counter-reset periods elapse within a
trace of a few tens of thousands of requests; EXPERIMENTS.md discusses the
scaling.  Pass a full-size :class:`~repro.dram.config.DRAMConfig` to override.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.comet import CoMeT
from repro.cpu.core import CoreConfig
from repro.cpu.trace import Trace
from repro.dram.config import DRAMConfig, small_test_config
from repro.mitigations.base import RowHammerMitigation
from repro.mitigations.blockhammer import BlockHammer
from repro.mitigations.graphene import Graphene
from repro.mitigations.hydra import Hydra
from repro.mitigations.none import NoMitigation
from repro.mitigations.para import PARA
from repro.mitigations.rega import REGA
from repro.sim.system import SimulationResult, System, SystemConfig

#: The single source of truth: mitigation name -> mechanism class.  The CLI,
#: the sweep executor and the benchmark harnesses all resolve names here.
MITIGATION_REGISTRY: Dict[str, type] = {
    "none": NoMitigation,
    "comet": CoMeT,
    "graphene": Graphene,
    "hydra": Hydra,
    "rega": REGA,
    "para": PARA,
    "blockhammer": BlockHammer,
}


def _registry_factory(cls: type) -> Callable[[int], RowHammerMitigation]:
    if cls is NoMitigation:
        return lambda nrh: NoMitigation()
    return lambda nrh: cls(nrh)


#: Mitigation name -> factory taking the RowHammer threshold (derived from
#: :data:`MITIGATION_REGISTRY`; kept for callers that want a callable).
MITIGATION_FACTORIES: Dict[str, Callable[[int], RowHammerMitigation]] = {
    name: _registry_factory(cls) for name, cls in MITIGATION_REGISTRY.items()
}


def build_mitigation(name: str, nrh: int, **overrides) -> RowHammerMitigation:
    """Build a mitigation by name at a RowHammer threshold.

    ``overrides`` are forwarded to the mechanism's constructor for the
    sensitivity sweeps (e.g. ``config=CoMeTConfig(...)`` for Figures 6-9).
    The unprotected baseline takes no parameters, so it ignores them.
    """
    if name not in MITIGATION_REGISTRY:
        raise ValueError(
            f"unknown mitigation {name!r}; known: {sorted(MITIGATION_REGISTRY)}"
        )
    cls = MITIGATION_REGISTRY[name]
    if cls is NoMitigation:
        return NoMitigation()
    return cls(nrh, **overrides)


def build_mitigations(
    name: str, nrh: int, channels: int, **overrides
) -> List[RowHammerMitigation]:
    """One independently-constructed mitigation instance per channel.

    The channel fabric requires distinct instances: sharing one object
    across channels would merge per-channel counter state (and, for the
    mechanisms with periodic resets, reset every channel's tables on one
    channel's clock).  Randomized mechanisms (PARA, BlockHammer) get a
    per-channel ``seed`` so their channels draw independent streams rather
    than making identical probabilistic decisions in lockstep; channel 0
    keeps the default seed, preserving 1-channel bit-identity.
    """
    import inspect

    cls = MITIGATION_REGISTRY.get(name)
    seedable = (
        cls is not None
        and cls is not NoMitigation
        and "seed" in inspect.signature(cls.__init__).parameters
    )
    instances = []
    for channel in range(channels):
        kwargs = dict(overrides)
        if channel > 0 and seedable and "seed" not in kwargs:
            kwargs["seed"] = channel
        instances.append(build_mitigation(name, nrh, **kwargs))
    return instances


def default_experiment_config(
    rows_per_bank: int = 4096,
    refresh_window_scale: float = 1.0 / 256.0,
    channels: int = 1,
) -> DRAMConfig:
    """The scaled DRAM configuration used by examples and benches.

    Two ranks with four banks each, 4K rows per bank, and a refresh window of
    ~300K DRAM cycles.  The scale is chosen so that, for the synthetic
    workload suite, the number of activations a hot row receives per
    counter-reset period relative to the preventive-refresh thresholds is in
    the same regime as the paper's full-length simulations (hot rows cross
    NPR at NRH=125 but not at NRH=1K); see EXPERIMENTS.md.
    """
    config = small_test_config(
        rows_per_bank=rows_per_bank,
        banks_per_bankgroup=2,
        bankgroups_per_rank=2,
        ranks_per_channel=2,
        refresh_window_scale=refresh_window_scale,
        channels=channels,
    )
    return config


def run_single_core(
    trace: Trace,
    mitigation_name: str,
    nrh: int,
    dram_config: Optional[DRAMConfig] = None,
    core_config: Optional[CoreConfig] = None,
    mitigation_overrides: Optional[dict] = None,
    verify_security: bool = True,
) -> SimulationResult:
    """Run one trace on a single-core system under one mitigation.

    The number of memory channels comes from ``dram_config``; one mitigation
    instance is built per channel.
    """
    dram_config = dram_config or default_experiment_config()
    mitigations = build_mitigations(
        mitigation_name,
        nrh,
        dram_config.organization.channels,
        **(mitigation_overrides or {}),
    )
    system_config = SystemConfig(
        dram=dram_config,
        core=core_config or CoreConfig(),
        verify_security=verify_security,
        nrh_for_verification=nrh,
    )
    system = System([trace], mitigation=mitigations, config=system_config, name=trace.name)
    return system.run()


def run_multi_core(
    traces: Sequence[Trace],
    mitigation_name: str,
    nrh: int,
    dram_config: Optional[DRAMConfig] = None,
    core_config: Optional[CoreConfig] = None,
    mitigation_overrides: Optional[dict] = None,
    verify_security: bool = True,
    name: Optional[str] = None,
) -> SimulationResult:
    """Run a multi-programmed mix (one trace per core) under one mitigation."""
    dram_config = dram_config or default_experiment_config()
    mitigations = build_mitigations(
        mitigation_name,
        nrh,
        dram_config.organization.channels,
        **(mitigation_overrides or {}),
    )
    system_config = SystemConfig(
        dram=dram_config,
        core=core_config or CoreConfig(),
        verify_security=verify_security,
        nrh_for_verification=nrh,
    )
    system = System(
        list(traces), mitigation=mitigations, config=system_config, name=name or traces[0].name
    )
    return system.run()


def normalized_ipc(result: SimulationResult, baseline: SimulationResult) -> float:
    """IPC of a mitigated run normalized to the unprotected baseline run."""
    if baseline.ipc == 0:
        return 0.0
    return result.ipc / baseline.ipc


def compare_single_core(
    trace: Trace,
    mitigation_names: Sequence[str],
    nrh: int,
    dram_config: Optional[DRAMConfig] = None,
    verify_security: bool = True,
) -> Dict[str, SimulationResult]:
    """Run one trace under several mitigations plus the unprotected baseline.

    Returns a mapping mitigation name -> result; the baseline is always
    included under the key ``"none"`` so callers can normalize.
    """
    dram_config = dram_config or default_experiment_config()
    names = list(dict.fromkeys(["none", *mitigation_names]))
    results: Dict[str, SimulationResult] = {}
    for name in names:
        results[name] = run_single_core(
            trace,
            name,
            nrh,
            dram_config=dram_config,
            verify_security=verify_security and name != "none",
        )
    return results
