"""Event-driven simulation kernel.

The kernel owns a single min-heap of timestamped events and drives every
component of a :class:`~repro.sim.system.System` — cores, the memory
controllers of the channel fabric, and (optionally) mitigations — through
it.  It replaces the seed's per-step loop, which re-scanned every core
(``O(N)`` per event) and re-polled the controller on every iteration, and
which papered over the blocked-core/empty-controller stall with a one-cycle
time nudge.

Scheduling model
----------------

Each component is an *event source*:

* A **core** is scheduled at :meth:`~repro.cpu.core.Core.next_event_cycle`.
  Its entry is re-queued whenever its own step changes its state, one of its
  outstanding reads completes (the controller fires the core's kernel-wakeup
  hook mid-issue), or a controller queue slot frees while it has a blocked
  request.
* Each **memory controller** (one per channel on a
  :class:`~repro.controller.fabric.ChannelFabric`; a bare controller is
  treated as a 1-entry fabric) is scheduled at the earliest cycle at which
  it can issue a command.  Entries are invalidated and recomputed after an
  event only when that event could actually have changed the controller's
  answer: an *untouched* channel — its mutation counter
  (:attr:`~repro.controller.controller.MemoryController.mutations`) proves
  its queues and device state are unchanged,
  :meth:`~repro.controller.controller.MemoryController.decision_crosses_boundary`
  proves no refresh deadline or scheduler priority boundary was crossed,
  and its cached decision (if any) has not fallen behind the clock — keeps
  its cached decision and live heap entry as is.  This covers both the idle
  case (cached "nothing to do" stays nothing) and the busy case (a cached
  decision whose issue cycle is still in the future stays the right
  choice), so an event that provably touched one channel no longer
  recomputes all of them, and an idle span collapses to a single jump of
  ``now`` to the next live entry instead of per-event rescheduling.  The
  busy-case skip is part of the fast path
  (:mod:`repro.fastpath`); with the switch off the kernel recomputes after
  every event like the pre-fast-path kernel did.
* **Mitigations** may register their own timestamped callbacks through
  :meth:`EventKernel.schedule` (see
  :meth:`repro.mitigations.base.RowHammerMitigation.register_events`).

Stale heap entries are invalidated lazily with per-source generation
counters, so re-scheduling is O(log n) and no entry is ever searched for.

Ties are broken the same way the seed loop's comparisons did: cores win over
controllers at equal timestamps, the lowest-numbered core wins among cores,
and the lowest-numbered channel wins among controllers.

Termination
-----------

When the heap runs dry before every core finished, the kernel retries every
blocked core exactly once (a queue slot may have freed without an event being
scheduled, e.g. under a test double).  If no retry makes progress the
simulation is provably wedged and the kernel raises
:class:`SimulationDeadlockError` instead of spinning time forward one cycle
at a time like the seed loop did.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro import fastpath
from repro.controller.policies import NEVER
from repro.cpu.core import Core

#: Heap priorities: cores beat controllers at equal timestamps (the seed
#: loop's ``core_cycle <= controller_time`` comparison), and user callbacks
#: run after both so they observe a settled cycle.
_PRIORITY_CORE = 0
_PRIORITY_CONTROLLER = 1
_PRIORITY_CALLBACK = 2


def _as_cycle(time: float) -> int:
    """THE kernel-time → controller-cycle conversion point.

    Kernel timestamps may be fractional (core dispatch cycles are spaced at
    the sub-cycle issue rate); controllers operate on integer DRAM cycles.
    Every conversion funnels through this ceiling so the rounding rule lives
    in exactly one place — heap entries from integer sources (controller
    issue cycles, integer callback cycles) are pushed as ``int`` and pass
    through unchanged.
    """
    return math.ceil(time)


class SimulationDeadlockError(RuntimeError):
    """The event queue ran dry with unfinished cores and idle controllers."""


class EventKernel:
    """Min-heap event queue driving cores, controllers and mitigations.

    Parameters
    ----------
    cores:
        The system's cores, in core-id order (the order is the tie-break).
    controller:
        The memory subsystem: a
        :class:`~repro.controller.fabric.ChannelFabric` (anything exposing a
        ``controllers`` sequence) or a single bare controller.
    max_steps:
        Upper bound on processed events (a runaway guard, like the seed's
        ``SystemConfig.max_steps``).
    """

    def __init__(
        self,
        cores: Sequence[Core],
        controller,
        max_steps: int = 200_000_000,
    ) -> None:
        self.cores = list(cores)
        self.controller = controller
        fabric_controllers = getattr(controller, "controllers", None)
        self.controllers = (
            list(fabric_controllers) if fabric_controllers is not None else [controller]
        )
        self.max_steps = max_steps
        self.now = 0.0
        self.steps = 0

        # Heap entries: (time, priority, index, generation).  A popped entry
        # is live only if its generation matches the source's current one.
        self._heap: List[Tuple[float, int, int, int]] = []
        self._core_gen = [0] * len(self.cores)
        num_controllers = len(self.controllers)
        self._ctl_gen = [0] * num_controllers
        #: Decision cached at schedule time; valid while the generation holds
        #: (no queue mutation since) and no refresh deadline crossed.
        self._ctl_decision: List[Optional[tuple]] = [None] * num_controllers
        self._ctl_recheck = [False] * num_controllers
        #: Inputs of the cached (non-)decision, used for the idle-channel
        #: skip: the cycle command selection ran at and the controller's
        #: mutation counter right after it ran.
        self._ctl_cached_cycle = [0] * num_controllers
        self._ctl_cached_mutations: List[Optional[int]] = [None] * num_controllers
        self._ctl_has_entry = [False] * num_controllers
        self._callback_seq = 0
        self._callbacks: dict[int, Callable[[float], None]] = {}
        #: Cores whose state changed mid-event (read completions fire while
        #: a controller is issuing); re-scheduled once the event finishes.
        self._dirty_cores: set[int] = set()
        #: Index of cores currently blocked on a rejected enqueue.  A core's
        #: blocked flag only changes inside its own step/retry (or the stall
        #: recovery), so maintaining the set there makes the slot-free hook
        #: O(blocked) instead of a scan over every core.
        self._blocked_cores: set[int] = set()
        #: Fast-path switch, latched at construction (see repro.fastpath):
        #: gates the untouched-channel skip of a *cached decision*.  Off, the
        #: kernel reschedules every controller after every event (the legacy
        #: behaviour the e2e benchmark times against).
        self._fast = fastpath.enabled()

        for index, core in enumerate(self.cores):
            core.kernel_wakeup = self._make_core_wakeup(index)
        for ctl in self.controllers:
            ctl.add_slot_free_callback(self._on_slot_free)
            mitigation = getattr(ctl, "mitigation", None)
            if mitigation is not None:
                mitigation.register_events(self)

    # ------------------------------------------------------------------ #
    # Public scheduling interface
    # ------------------------------------------------------------------ #
    def schedule(self, cycle: float, callback: Callable[[float], None]) -> None:
        """Register ``callback(now)`` to run at ``cycle`` (clamped to now)."""
        self._callback_seq += 1
        token = self._callback_seq
        self._callbacks[token] = callback
        # Integer cycles stay integers on the heap (int/float compare
        # exactly for cycle magnitudes); only clamping to a fractional
        # ``now`` can produce a fractional timestamp.
        time = cycle if cycle >= self.now else self.now
        heapq.heappush(self._heap, (time, _PRIORITY_CALLBACK, token, 0))

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> float:
        """Process events until all cores finish; returns the final time."""
        if (
            self._fast
            # The fused loop inlines these helpers; an instance-level
            # override (tests wrap _pop_live to observe the event stream)
            # must keep the generic loop that actually calls them.
            and not any(
                name in self.__dict__
                for name in (
                    "_pop_live",
                    "_schedule_controller",
                    "_schedule_controllers",
                    "_schedule_core",
                    "_flush_dirty_cores",
                )
            )
            # Real controllers expose the boundary inputs the fused loop
            # pre-resolves; test doubles fall back to the generic loop.
            and all(
                hasattr(ctl, "scheduler")
                and hasattr(ctl, "next_refresh_due")
                and hasattr(ctl, "dram_config")
                for ctl in self.controllers
            )
        ):
            return self._run_fast()
        for index in range(len(self.cores)):
            self._schedule_core(index)
        self._schedule_controllers()

        while self.steps < self.max_steps:
            entry = self._pop_live()
            if entry is None:
                if self._all_done():
                    break
                if not self._recover_stall():
                    self._raise_deadlock()
                continue
            time, priority, index = entry
            self.now = max(self.now, time)
            self.steps += 1

            if priority == _PRIORITY_CORE:
                core = self.cores[index]
                if core.has_blocked_request:
                    core.retry_blocked(self.now)
                elif not core.finished:
                    core.step(self.now)
                # The blocked flag only changes inside step/retry; keep the
                # O(blocked) slot-free index in lockstep here.
                if core.has_blocked_request:
                    self._blocked_cores.add(index)
                else:
                    self._blocked_cores.discard(index)
                self._schedule_core(index)
                self._schedule_controllers()
            elif priority == _PRIORITY_CONTROLLER:
                ctl = self.controllers[index]
                self._ctl_has_entry[index] = False
                if self._ctl_recheck[index]:
                    issued = ctl.issue_next(_as_cycle(time))
                else:
                    issued = ctl.issue_decision(self._ctl_decision[index])
                if issued is not None and issued > self.now:
                    self.now = issued
                self._schedule_controllers()
            else:
                callback = self._callbacks.pop(index, None)
                if callback is not None:
                    callback(self.now)
                self._schedule_controllers()
            self._flush_dirty_cores()
        return self.now

    def _run_fast(self) -> float:
        """The event loop with its hot path flattened (fast path only).

        Event-for-event identical to :meth:`run` with the fast switch on:
        the same pop-validate/dispatch/reschedule sequence, with the
        per-event helper calls (:meth:`_pop_live`,
        :meth:`_schedule_controllers`, :meth:`_schedule_controller`,
        :meth:`~repro.controller.controller.MemoryController.decision_crosses_boundary`)
        inlined over locals.  Per-controller boundary inputs are
        pre-resolved once: the refresh-due dict (mutated in place for the
        controller's lifetime) replaces the ``refresh_crosses_due`` call,
        and the scheduler's ``priority_boundary_crossed`` hook is dropped
        entirely when it is the base-class constant ``False`` (every
        scheduler but BLISS).  Cold paths — setup, stall recovery,
        termination, dirty-core flushing — stay delegated to the shared
        helpers.  ``self.now``/``self.steps`` are kept in sync before any
        component call because completion hooks and ``schedule()`` read
        them mid-event.
        """
        for index in range(len(self.cores)):
            self._schedule_core(index)
        self._schedule_controllers()

        heap = self._heap
        push = heapq.heappush
        pop = heapq.heappop
        ceil = math.ceil
        cores = self.cores
        controllers = self.controllers
        ctl_indices = tuple(range(len(controllers)))
        core_gen = self._core_gen
        ctl_gen = self._ctl_gen
        ctl_decision = self._ctl_decision
        ctl_recheck = self._ctl_recheck
        ctl_cached_cycle = self._ctl_cached_cycle
        ctl_cached_mutations = self._ctl_cached_mutations
        ctl_has_entry = self._ctl_has_entry
        callbacks = self._callbacks
        dirty_cores = self._dirty_cores
        blocked_cores = self._blocked_cores
        max_steps = self.max_steps
        from repro.controller.policies import SchedulingPolicy

        base_boundary = SchedulingPolicy.priority_boundary_crossed
        boundary_hooks = [
            ctl.scheduler.priority_boundary_crossed
            if type(ctl.scheduler).priority_boundary_crossed is not base_boundary
            else None
            for ctl in controllers
        ]
        refresh_dues = [
            ctl.next_refresh_due if ctl.dram_config.refresh_enabled else None
            for ctl in controllers
        ]
        # Call the controllers' fused fast closures directly where they are
        # provably equivalent — the public methods are one-line delegations
        # to them (guarded against subclass or instance overrides, which
        # keep the delegating wrappers).
        from repro.controller.controller import MemoryController

        decision_fns = [
            ctl._fast_select
            if (
                getattr(ctl, "_fast_select", None) is not None
                and type(ctl).next_decision is MemoryController.next_decision
                and type(ctl)._choose_command is MemoryController._choose_command
                and "next_decision" not in ctl.__dict__
                and "_choose_command" not in ctl.__dict__
            )
            else ctl.next_decision
            for ctl in controllers
        ]
        issue_fns = [
            ctl._fast_issue_fn
            if (
                getattr(ctl, "_fast_issue_fn", None) is not None
                and type(ctl).issue_decision is MemoryController.issue_decision
                and "issue_decision" not in ctl.__dict__
            )
            else ctl.issue_decision
            for ctl in controllers
        ]

        now = self.now
        steps = self.steps
        while steps < max_steps:
            time = 0.0
            priority = index = -1
            while heap:
                time, priority, index, gen = pop(heap)
                if priority == _PRIORITY_CORE:
                    if gen == core_gen[index]:
                        break
                elif priority == _PRIORITY_CONTROLLER:
                    if gen == ctl_gen[index]:
                        break
                elif index in callbacks:
                    break
            else:
                self.now = now
                self.steps = steps
                if self._all_done():
                    break
                if not self._recover_stall():
                    self._raise_deadlock()
                continue
            if time > now:
                now = time
            self.now = now
            steps += 1

            if priority == _PRIORITY_CORE:
                core = cores[index]
                if core.has_blocked_request:
                    core.retry_blocked(now)
                elif not core.finished:
                    core.step(now)
                if core.has_blocked_request:
                    blocked_cores.add(index)
                else:
                    blocked_cores.discard(index)
                core_gen[index] += 1
                cycle = core.next_event_cycle()
                if cycle < NEVER:
                    push(
                        heap,
                        (
                            cycle if cycle >= now else now,
                            _PRIORITY_CORE,
                            index,
                            core_gen[index],
                        ),
                    )
            elif priority == _PRIORITY_CONTROLLER:
                ctl = controllers[index]
                ctl_has_entry[index] = False
                if ctl_recheck[index]:
                    issued = ctl.issue_next(ceil(time))
                else:
                    issued = issue_fns[index](ctl_decision[index])
                if issued is not None and issued > now:
                    now = issued
                    self.now = now
            else:
                callback = callbacks.pop(index, None)
                if callback is not None:
                    callback(now)

            cycle = ceil(now)
            for i in ctl_indices:
                ctl = controllers[i]
                cached_mutations = ctl_cached_mutations[i]
                if cached_mutations is not None and cached_mutations == ctl.mutations:
                    decision = ctl_decision[i]
                    if decision is None:
                        if not ctl_has_entry[i]:
                            start = ctl_cached_cycle[i]
                            dues = refresh_dues[i]
                            if dues is not None:
                                for due in dues.values():
                                    if start < due <= cycle:
                                        break
                                else:
                                    hook = boundary_hooks[i]
                                    if hook is None or not hook(start, cycle):
                                        continue
                            else:
                                hook = boundary_hooks[i]
                                if hook is None or not hook(start, cycle):
                                    continue
                    elif ctl_has_entry[i] and decision[0] >= cycle:
                        start = ctl_cached_cycle[i]
                        dues = refresh_dues[i]
                        if dues is not None:
                            for due in dues.values():
                                if start < due <= cycle:
                                    break
                            else:
                                hook = boundary_hooks[i]
                                if hook is None or not hook(start, cycle):
                                    continue
                        else:
                            hook = boundary_hooks[i]
                            if hook is None or not hook(start, cycle):
                                continue
                ctl_gen[i] += 1
                decision = decision_fns[i](cycle)
                ctl_cached_cycle[i] = cycle
                ctl_cached_mutations[i] = ctl.mutations
                if decision is None:
                    ctl_decision[i] = None
                    ctl_has_entry[i] = False
                    continue
                issue_cycle = decision[0]
                ctl_decision[i] = decision
                crossed = False
                dues = refresh_dues[i]
                if dues is not None:
                    for due in dues.values():
                        if cycle < due <= issue_cycle:
                            crossed = True
                            break
                if not crossed:
                    hook = boundary_hooks[i]
                    crossed = hook is not None and hook(cycle, issue_cycle)
                ctl_recheck[i] = crossed
                push(
                    heap,
                    (issue_cycle, _PRIORITY_CONTROLLER, i, ctl_gen[i]),
                )
                ctl_has_entry[i] = True

            if dirty_cores:
                self._flush_dirty_cores()
        self.now = now
        self.steps = steps
        return now

    def _all_done(self) -> bool:
        return all(core.finished for core in self.cores) and not any(
            ctl.has_work() for ctl in self.controllers
        )

    # ------------------------------------------------------------------ #
    # Scheduling helpers
    # ------------------------------------------------------------------ #
    def _schedule_core(self, index: int) -> None:
        self._core_gen[index] += 1
        cycle = self.cores[index].next_event_cycle()
        if cycle >= NEVER:
            # The typed "no event" sentinel (an int, so cycle arithmetic is
            # never silently promoted to float): the core is waiting on
            # memory and will be woken by a completion or slot-free hook.
            return
        time = cycle if cycle >= self.now else self.now
        heapq.heappush(
            self._heap, (time, _PRIORITY_CORE, index, self._core_gen[index])
        )

    def _schedule_core_retry(self, index: int, cycle: float) -> None:
        """Wake a blocked core at ``cycle`` to retry its rejected request."""
        self._core_gen[index] += 1
        time = cycle if cycle >= self.now else self.now
        heapq.heappush(
            self._heap, (time, _PRIORITY_CORE, index, self._core_gen[index])
        )

    def _schedule_controllers(self) -> None:
        for index in range(len(self.controllers)):
            self._schedule_controller(index)

    def _schedule_controller(self, index: int) -> None:
        ctl = self.controllers[index]
        cycle = _as_cycle(self.now)
        cached_mutations = self._ctl_cached_mutations[index]
        if cached_mutations is not None and cached_mutations == getattr(
            ctl, "mutations", None
        ):
            decision = self._ctl_decision[index]
            if decision is None:
                if not self._ctl_has_entry[index] and not ctl.decision_crosses_boundary(
                    self._ctl_cached_cycle[index], cycle
                ):
                    # Idle-channel skip: command selection previously found
                    # nothing to do, the controller's queues are untouched
                    # since (mutation counter unchanged) and no refresh
                    # deadline was crossed, so the recomputed decision would
                    # be "nothing" again.
                    return
            elif (
                self._fast
                and self._ctl_has_entry[index]
                and decision[0] >= cycle
                and not ctl.decision_crosses_boundary(
                    self._ctl_cached_cycle[index], cycle
                )
            ):
                # Untouched-channel skip: the cached decision and its live
                # heap entry stay valid.  Safe because (a) no scheduler-
                # visible state changed (mutation counter unchanged), (b) no
                # refresh deadline or scheduler priority boundary lies in
                # (cached_cycle, cycle], and (c) the cached issue cycle has
                # not fallen behind the clock — re-running selection with
                # the clamp cycle raised to ``cycle`` can only raise losing
                # candidates' issue cycles, never change the winner or its
                # (still-future) issue cycle.  A decision already in the
                # past (``now`` jumped over it via a recheck-path issue)
                # must be re-clamped, exactly as the legacy per-event
                # recompute would.
                return
        self._ctl_gen[index] += 1
        decision = ctl.next_decision(cycle)
        self._ctl_cached_cycle[index] = cycle
        # Snapshot *after* next_decision: selection may retire already-done
        # preventive refreshes (queue pruning) and bump the counter.
        self._ctl_cached_mutations[index] = getattr(ctl, "mutations", None)
        if decision is None:
            self._ctl_decision[index] = None
            self._ctl_has_entry[index] = False
            return
        issue_cycle = decision[0]
        self._ctl_decision[index] = decision
        # A refresh deadline (outranks any cached demand command) or a
        # scheduler priority boundary (BLISS' clearing interval) inside
        # (cycle, issue_cycle] can change the right choice; recompute at
        # issue time in that case.
        self._ctl_recheck[index] = ctl.decision_crosses_boundary(cycle, issue_cycle)
        heapq.heappush(
            self._heap,
            (issue_cycle, _PRIORITY_CONTROLLER, index, self._ctl_gen[index]),
        )
        self._ctl_has_entry[index] = True

    def _pop_live(self) -> Optional[Tuple[float, int, int]]:
        heap = self._heap
        while heap:
            time, priority, index, gen = heapq.heappop(heap)
            if priority == _PRIORITY_CORE and gen != self._core_gen[index]:
                continue
            if priority == _PRIORITY_CONTROLLER and gen != self._ctl_gen[index]:
                continue
            if priority == _PRIORITY_CALLBACK and index not in self._callbacks:
                continue
            return time, priority, index
        return None

    def _flush_dirty_cores(self) -> None:
        while self._dirty_cores:
            index = self._dirty_cores.pop()
            core = self.cores[index]
            if core.has_blocked_request:
                current = max(
                    (ctl.current_cycle for ctl in self.controllers), default=0
                )
                self._schedule_core_retry(index, max(self.now, current))
            else:
                self._schedule_core(index)

    # ------------------------------------------------------------------ #
    # Hooks fired by the components
    # ------------------------------------------------------------------ #
    def _make_core_wakeup(self, index: int) -> Callable[[], None]:
        def wakeup() -> None:
            self._dirty_cores.add(index)

        return wakeup

    def _on_slot_free(self) -> None:
        # O(blocked): the blocked-core index is maintained at every core
        # step/retry, so a freed queue slot wakes exactly the cores that
        # were waiting on one instead of scanning all of them.
        self._dirty_cores.update(self._blocked_cores)

    # ------------------------------------------------------------------ #
    # Stall handling
    # ------------------------------------------------------------------ #
    def _recover_stall(self) -> bool:
        """Retry every blocked core once; True when any made progress.

        Reached only when the heap is empty with unfinished cores.  With the
        real controllers a blocked core implies a full (hence non-empty)
        queue, so this is unreachable; a test double or future backend that
        rejects an enqueue while idle lands here, and the retry either
        unblocks the core or proves the system wedged.
        """
        progressed = False
        for index, core in enumerate(self.cores):
            if core.has_blocked_request and core.retry_blocked(self.now):
                self._blocked_cores.discard(index)
                self._schedule_core(index)
                progressed = True
        if progressed:
            self._schedule_controllers()
        return progressed

    def _raise_deadlock(self) -> None:
        blocked = [c.core_id for c in self.cores if c.has_blocked_request]
        unfinished = [c.core_id for c in self.cores if not c.finished]
        pending = sum(ctl.pending_requests() for ctl in self.controllers)
        raise SimulationDeadlockError(
            f"simulation wedged at cycle {self.now:.0f}: no schedulable events, "
            f"unfinished cores {unfinished}, blocked cores {blocked}, "
            f"controllers pending requests {pending}"
        )
