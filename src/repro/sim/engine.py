"""Event-driven simulation kernel.

The kernel owns a single min-heap of timestamped events and drives every
component of a :class:`~repro.sim.system.System` — cores, the memory
controller, and (optionally) mitigations — through it.  It replaces the
seed's per-step loop, which re-scanned every core (``O(N)`` per event) and
re-polled the controller on every iteration, and which papered over the
blocked-core/empty-controller stall with a one-cycle time nudge.

Scheduling model
----------------

Each component is an *event source*:

* A **core** is scheduled at :meth:`~repro.cpu.core.Core.next_event_cycle`.
  Its entry is re-queued whenever its own step changes its state, one of its
  outstanding reads completes (the controller fires the core's kernel-wakeup
  hook mid-issue), or a controller queue slot frees while it has a blocked
  request.
* The **controller** is scheduled at the earliest cycle at which it can issue
  a command.  Its entry is invalidated and recomputed after every event that
  can change its queues (a core step, a retry, its own issue).
* **Mitigations** may register their own timestamped callbacks through
  :meth:`EventKernel.schedule` (see
  :meth:`repro.mitigations.base.RowHammerMitigation.register_events`).

Stale heap entries are invalidated lazily with per-source generation
counters, so re-scheduling is O(log n) and no entry is ever searched for.

Ties are broken the same way the seed loop's comparisons did: cores win over
the controller at equal timestamps, and the lowest-numbered core wins among
cores.

Termination
-----------

When the heap runs dry before every core finished, the kernel retries every
blocked core exactly once (a queue slot may have freed without an event being
scheduled, e.g. under a test double).  If no retry makes progress the
simulation is provably wedged and the kernel raises
:class:`SimulationDeadlockError` instead of spinning time forward one cycle
at a time like the seed loop did.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.controller.controller import MemoryController
from repro.cpu.core import Core

_INFINITY = math.inf

#: Heap priorities: cores beat the controller at equal timestamps (the seed
#: loop's ``core_cycle <= controller_time`` comparison), and user callbacks
#: run after both so they observe a settled cycle.
_PRIORITY_CORE = 0
_PRIORITY_CONTROLLER = 1
_PRIORITY_CALLBACK = 2


class SimulationDeadlockError(RuntimeError):
    """The event queue ran dry with unfinished cores and an idle controller."""


class EventKernel:
    """Min-heap event queue driving cores, controller and mitigations.

    Parameters
    ----------
    cores:
        The system's cores, in core-id order (the order is the tie-break).
    controller:
        The shared memory controller.
    max_steps:
        Upper bound on processed events (a runaway guard, like the seed's
        ``SystemConfig.max_steps``).
    """

    def __init__(
        self,
        cores: Sequence[Core],
        controller: MemoryController,
        max_steps: int = 200_000_000,
    ) -> None:
        self.cores = list(cores)
        self.controller = controller
        self.max_steps = max_steps
        self.now = 0.0
        self.steps = 0

        # Heap entries: (time, priority, index, generation).  A popped entry
        # is live only if its generation matches the source's current one.
        self._heap: List[Tuple[float, int, int, int]] = []
        self._core_gen = [0] * len(self.cores)
        self._controller_gen = 0
        #: Decision cached at schedule time; valid while the generation holds
        #: (no queue mutation since) and no refresh deadline crossed.
        self._controller_decision = None
        self._controller_recheck = False
        self._callback_seq = 0
        self._callbacks: dict[int, Callable[[float], None]] = {}
        #: Cores whose state changed mid-event (read completions fire while
        #: the controller is issuing); re-scheduled once the event finishes.
        self._dirty_cores: set[int] = set()

        for index, core in enumerate(self.cores):
            core.kernel_wakeup = self._make_core_wakeup(index)
        controller.add_slot_free_callback(self._on_slot_free)
        mitigation = getattr(controller, "mitigation", None)
        if mitigation is not None:
            mitigation.register_events(self)

    # ------------------------------------------------------------------ #
    # Public scheduling interface
    # ------------------------------------------------------------------ #
    def schedule(self, cycle: float, callback: Callable[[float], None]) -> None:
        """Register ``callback(now)`` to run at ``cycle`` (clamped to now)."""
        self._callback_seq += 1
        token = self._callback_seq
        self._callbacks[token] = callback
        heapq.heappush(
            self._heap, (max(float(cycle), self.now), _PRIORITY_CALLBACK, token, 0)
        )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> float:
        """Process events until all cores finish; returns the final time."""
        for index in range(len(self.cores)):
            self._schedule_core(index)
        self._schedule_controller()

        while self.steps < self.max_steps:
            entry = self._pop_live()
            if entry is None:
                if self._all_done():
                    break
                if not self._recover_stall():
                    self._raise_deadlock()
                continue
            time, priority, index = entry
            self.now = max(self.now, time)
            self.steps += 1

            if priority == _PRIORITY_CORE:
                core = self.cores[index]
                if core.has_blocked_request:
                    core.retry_blocked(self.now)
                elif not core.finished:
                    core.step(self.now)
                self._schedule_core(index)
                self._schedule_controller()
            elif priority == _PRIORITY_CONTROLLER:
                if self._controller_recheck:
                    issued = self.controller.issue_next(int(math.ceil(time)))
                else:
                    issued = self.controller.issue_decision(self._controller_decision)
                if issued is not None:
                    self.now = max(self.now, float(issued))
                self._schedule_controller()
            else:
                callback = self._callbacks.pop(index, None)
                if callback is not None:
                    callback(self.now)
                self._schedule_controller()
            self._flush_dirty_cores()
        return self.now

    def _all_done(self) -> bool:
        return all(core.finished for core in self.cores) and not self.controller.has_work()

    # ------------------------------------------------------------------ #
    # Scheduling helpers
    # ------------------------------------------------------------------ #
    def _schedule_core(self, index: int) -> None:
        self._core_gen[index] += 1
        cycle = self.cores[index].next_event_cycle()
        if cycle is _INFINITY:
            return
        heapq.heappush(
            self._heap,
            (max(float(cycle), self.now), _PRIORITY_CORE, index, self._core_gen[index]),
        )

    def _schedule_core_retry(self, index: int, cycle: float) -> None:
        """Wake a blocked core at ``cycle`` to retry its rejected request."""
        self._core_gen[index] += 1
        heapq.heappush(
            self._heap,
            (max(float(cycle), self.now), _PRIORITY_CORE, index, self._core_gen[index]),
        )

    def _schedule_controller(self) -> None:
        self._controller_gen += 1
        cycle = int(math.ceil(self.now))
        decision = self.controller.next_decision(cycle)
        if decision is None:
            self._controller_decision = None
            return
        issue_cycle = decision[0]
        self._controller_decision = decision
        # A refresh deadline inside (cycle, issue_cycle] would outrank the
        # cached decision once due; recompute at issue time in that case.
        self._controller_recheck = self.controller.refresh_crosses_due(
            cycle, issue_cycle
        )
        heapq.heappush(
            self._heap,
            (float(issue_cycle), _PRIORITY_CONTROLLER, -1, self._controller_gen),
        )

    def _pop_live(self) -> Optional[Tuple[float, int, int]]:
        heap = self._heap
        while heap:
            time, priority, index, gen = heapq.heappop(heap)
            if priority == _PRIORITY_CORE and gen != self._core_gen[index]:
                continue
            if priority == _PRIORITY_CONTROLLER and gen != self._controller_gen:
                continue
            if priority == _PRIORITY_CALLBACK and index not in self._callbacks:
                continue
            return time, priority, index
        return None

    def _flush_dirty_cores(self) -> None:
        while self._dirty_cores:
            index = self._dirty_cores.pop()
            core = self.cores[index]
            if core.has_blocked_request:
                self._schedule_core_retry(
                    index, max(self.now, float(self.controller.current_cycle))
                )
            else:
                self._schedule_core(index)

    # ------------------------------------------------------------------ #
    # Hooks fired by the components
    # ------------------------------------------------------------------ #
    def _make_core_wakeup(self, index: int) -> Callable[[], None]:
        def wakeup() -> None:
            self._dirty_cores.add(index)

        return wakeup

    def _on_slot_free(self) -> None:
        for index, core in enumerate(self.cores):
            if core.has_blocked_request:
                self._dirty_cores.add(index)

    # ------------------------------------------------------------------ #
    # Stall handling
    # ------------------------------------------------------------------ #
    def _recover_stall(self) -> bool:
        """Retry every blocked core once; True when any made progress.

        Reached only when the heap is empty with unfinished cores.  With the
        real controller a blocked core implies a full (hence non-empty) queue,
        so this is unreachable; a test double or future backend that rejects
        an enqueue while idle lands here, and the retry either unblocks the
        core or proves the system wedged.
        """
        progressed = False
        for index, core in enumerate(self.cores):
            if core.has_blocked_request and core.retry_blocked(self.now):
                self._schedule_core(index)
                progressed = True
        if progressed:
            self._schedule_controller()
        return progressed

    def _raise_deadlock(self) -> None:
        blocked = [c.core_id for c in self.cores if c.has_blocked_request]
        unfinished = [c.core_id for c in self.cores if not c.finished]
        raise SimulationDeadlockError(
            f"simulation wedged at cycle {self.now:.0f}: no schedulable events, "
            f"unfinished cores {unfinished}, blocked cores {blocked}, "
            f"controller pending requests {self.controller.pending_requests()}"
        )
