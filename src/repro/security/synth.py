"""Adversarial attack-pattern synthesis.

Each generator here programmatically builds a parameterized adversarial
access pattern as an ordinary :class:`~repro.cpu.trace.Trace`, seeded and
bit-reproducible (the golden files under ``tests/golden/synth/`` pin the
exact bytes).  They are registered as workloads (``synth_*``, category
``"synth"``), so a pattern can be named by a
:class:`~repro.experiment.spec.WorkloadSpec`, swept by ``expand_grid`` and
audited by :mod:`repro.security.audit` like any suite entry.

The patterns, and the part of the threat model each one stresses:

* :func:`synth_uniform` — uniform-random row hammering across every bank:
  the weakest adversary and the audit's reference point.  Spreading
  activations over thousands of rows keeps every per-victim count low, so
  any focused pattern should beat its disturbance margin.
* :func:`synth_blacksmith` — Blacksmith-style fuzzed n-sided patterns: a
  seeded RNG draws per-aggressor-pair frequency, phase and amplitude, and
  the pattern repeats the resulting non-uniform schedule.  Fuzzing explores
  orderings hand-written attacks miss.
* :func:`synth_sketch_aliasing` — a whitebox, sketch-aware attack on CoMeT:
  decoy rows are chosen (via the same hash family CoMeT builds per bank) to
  deliberately collide with each other in the Counter Table while staying
  disjoint from the double-sided aggressor pair's counter groups.  The decoy
  flood thrashes shared counters and draws spurious preventive refreshes,
  while the aggressors' estimates stay exact — so they ride as close to the
  preventive-refresh threshold as the sketch allows.
* :func:`synth_rowpress` — RowPress-style long-open-row sequences: each
  aggressor activation is followed by a long run of same-row column reads,
  keeping the row open (one ACT, maximum open time) before toggling to the
  sibling aggressor.
* :func:`synth_refresh_wave` — refresh-window-straddling waves: short
  double-sided bursts separated by idle gaps sized from the DRAM
  configuration's counter-reset period (``tREFW / k``), so each burst lands
  in a fresh reset epoch and the victim's disturbance accumulates across
  epochs between its periodic refreshes.
* :func:`synth_multichannel` — coordinated multi-channel variant: one
  double-sided pair per channel, interleaved round-robin, so every channel's
  mitigation instance is pressured simultaneously.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.cpu.core import CoreConfig
from repro.cpu.trace import Trace, TraceEntry
from repro.dram.address import AddressMapper
from repro.dram.config import DRAMConfig
from repro.experiment.registry import register_workload, registered_workload_names
from repro.sketch.hashes import ShiftMaskHashFamily

#: Registry category every synthesized pattern registers under.
SYNTH_CATEGORY = "synth"


def synth_pattern_names() -> List[str]:
    """Names of every registered synthesized adversarial pattern."""
    return registered_workload_names(SYNTH_CATEGORY)


def _mapper(dram_config: Optional[DRAMConfig]) -> AddressMapper:
    return AddressMapper(dram_config or DRAMConfig())


def _bank_key_for_index(
    mapper: AddressMapper, bank_index: int, channel: int
) -> Tuple[int, int, int, int]:
    """The (channel, rank, bankgroup, bank) key behind a flat bank index.

    Mirrors :meth:`~repro.dram.address.AddressMapper.address_for_row`'s
    rank-major decomposition, so the key names the same bank the generators
    aim their addresses at.
    """
    org = mapper.config.organization
    rank, remainder = divmod(bank_index, org.banks_per_rank)
    bankgroup, bank = divmod(remainder, org.banks_per_bankgroup)
    return (channel % org.channels, rank % org.ranks_per_channel, bankgroup, bank)


# --------------------------------------------------------------------------- #
# Whitebox view of CoMeT's Counter Table hashing
# --------------------------------------------------------------------------- #
def _comet_hash_family(
    bank_key: Tuple[int, int, int, int],
    hash_seed: int,
    num_hashes: int,
    counters_per_hash: int,
) -> ShiftMaskHashFamily:
    """The exact per-bank hash family a default-configured CoMeT builds.

    The bank seed is ``hash_seed + hash(bank_key) % 997``
    (``CoMeT.bank_tracker``) and the
    :class:`~repro.core.counter_table.CounterTable` seeds its
    :class:`~repro.sketch.hashes.ShiftMaskHashFamily` with
    ``hash_seed + bank_seed``.  ``hash()`` over an int tuple is
    process-stable, so the reconstruction is deterministic.
    """
    bank_seed = hash_seed + (hash(bank_key) % 997)
    return ShiftMaskHashFamily(num_hashes, counters_per_hash, seed=hash_seed + bank_seed)


def comet_counter_groups(
    rows: Sequence[int],
    bank_key: Tuple[int, int, int, int],
    hash_seed: int = 0,
    num_hashes: int = 4,
    counters_per_hash: int = 512,
) -> List[Tuple[Tuple[int, int], ...]]:
    """Counter groups CoMeT's per-bank Counter Table assigns to ``rows``.

    Whitebox reconstruction through :func:`_comet_hash_family`; each group
    is a tuple of ``(hash_row, column)`` counter coordinates.
    """
    family = _comet_hash_family(bank_key, hash_seed, num_hashes, counters_per_hash)
    return [
        tuple((hash_row, column) for hash_row, column in enumerate(family.hash_all(row)))
        for row in rows
    ]


def find_aliasing_decoys(
    aggressor_rows: Sequence[int],
    rows_per_bank: int,
    bank_key: Tuple[int, int, int, int],
    count: int,
    hash_seed: int = 0,
    num_hashes: int = 4,
    counters_per_hash: int = 512,
    exclusion_radius: int = 2,
) -> List[int]:
    """Decoy rows that alias with each other but not with the aggressors.

    Scans the bank's rows for a pivot whose counter group is disjoint from
    every aggressor's, then collects rows that share at least one Counter
    Table counter with the pivot (a deliberate count-min collision) while
    sharing none with any aggressor.  The decoy flood therefore inflates its
    own shared counters — drawing CoMeT's preventive refreshes onto decoy
    victims — without ever raising an aggressor's estimate above its true
    count.  Falls back to plain disjoint rows if the bank is too small to
    supply ``count`` colliding ones.
    """
    aggressor_counters = {
        counter
        for group in comet_counter_groups(
            aggressor_rows, bank_key, hash_seed, num_hashes, counters_per_hash
        )
        for counter in group
    }
    family = _comet_hash_family(bank_key, hash_seed, num_hashes, counters_per_hash)
    # Scan rows lazily and stop as soon as ``count`` decoys are collected —
    # hashing the full bank up front is pure waste on large geometries (the
    # decoys cluster near the front of the row range).
    candidates: List[int] = []
    pivot_group: Optional[set] = None
    decoys: List[int] = []
    spares: List[int] = []
    for row in range(rows_per_bank):
        if any(abs(row - agg) <= exclusion_radius for agg in aggressor_rows):
            continue
        candidates.append(row)
        group = set(enumerate(family.hash_all(row)))
        if group & aggressor_counters:
            continue
        if pivot_group is None:
            pivot_group = group
            decoys.append(row)
        elif group & pivot_group:
            decoys.append(row)
        else:
            spares.append(row)
        if len(decoys) >= count:
            return decoys
    if pivot_group is None:
        return candidates[:count]
    for row in spares:
        if len(decoys) >= count:
            break
        decoys.append(row)
    return decoys


# --------------------------------------------------------------------------- #
# Pattern generators
# --------------------------------------------------------------------------- #
@register_workload("synth_uniform", category=SYNTH_CATEGORY)
def synth_uniform(
    num_requests: int = 8000,
    dram_config: Optional[DRAMConfig] = None,
    seed: int = 0,
    bubble: int = 0,
    channel: int = 0,
) -> Trace:
    """Uniform-random row hammering: the audit's reference adversary.

    Every access targets a uniformly random (bank, row, column), so
    activations spread across the whole channel and no victim accumulates a
    meaningful disturbance count.  Focused synthesized patterns are measured
    by how far above this baseline they push a mechanism's margin.
    """
    mapper = _mapper(dram_config)
    org = mapper.config.organization
    banks = mapper.all_bank_indices()
    rng = random.Random(seed)
    entries: List[TraceEntry] = []
    for _ in range(num_requests):
        address = mapper.address_for_row(
            rng.randrange(org.rows_per_bank),
            bank_index=rng.choice(banks),
            column=rng.randrange(0, org.columns_per_row, 8),
            channel=channel,
        )
        entries.append(TraceEntry(bubble, address, False))
    return Trace(entries, name="synth_uniform")


@register_workload("synth_blacksmith", category=SYNTH_CATEGORY)
def synth_blacksmith(
    num_requests: int = 8000,
    dram_config: Optional[DRAMConfig] = None,
    seed: int = 0,
    num_pairs: int = 4,
    base_row: int = 256,
    pair_stride: int = 8,
    max_frequency: int = 6,
    max_amplitude: int = 3,
    bank_index: int = 0,
    bubble: int = 0,
    channel: int = 0,
) -> Trace:
    """Blacksmith-style fuzzed n-sided pattern (seeded, reproducible).

    ``num_pairs`` double-sided aggressor pairs are laid out
    ``pair_stride`` rows apart (one victim between the rows of each pair).
    A seeded RNG draws a (frequency, phase, amplitude) triple per pair —
    Blacksmith's fuzzing dimensions — and the generator unrolls the
    resulting schedule: in repeating-period slot ``t``, every pair whose
    phase matches emits ``amplitude`` back-to-back double-sided accesses.
    Different seeds explore genuinely different orderings; the same seed
    always produces byte-identical traces.
    """
    mapper = _mapper(dram_config)
    rows_per_bank = mapper.config.organization.rows_per_bank
    rng = random.Random(seed)
    pairs = []
    for index in range(num_pairs):
        low = (base_row + index * pair_stride) % rows_per_bank
        pairs.append(
            {
                "rows": (low, (low + 2) % rows_per_bank),
                "frequency": rng.randint(1, max(1, max_frequency)),
                "phase": rng.randint(0, max(1, max_frequency) - 1),
                "amplitude": rng.randint(1, max(1, max_amplitude)),
            }
        )
    entries: List[TraceEntry] = []
    slot = 0
    while len(entries) < num_requests:
        emitted = False
        for pair in pairs:
            if (slot - pair["phase"]) % pair["frequency"] != 0:
                continue
            emitted = True
            for _ in range(pair["amplitude"]):
                for row in pair["rows"]:
                    if len(entries) >= num_requests:
                        break
                    address = mapper.address_for_row(
                        row, bank_index=bank_index, channel=channel
                    )
                    entries.append(TraceEntry(bubble, address, False))
        if not emitted and len(entries) < num_requests:
            # A slot no pair fires in: keep the bank busy with the first pair
            # so the schedule never stalls.
            row = pairs[0]["rows"][slot % 2]
            address = mapper.address_for_row(row, bank_index=bank_index, channel=channel)
            entries.append(TraceEntry(bubble, address, False))
        slot += 1
    return Trace(entries[:num_requests], name="synth_blacksmith")


@register_workload("synth_sketch_aliasing", category=SYNTH_CATEGORY)
def synth_sketch_aliasing(
    num_requests: int = 8000,
    dram_config: Optional[DRAMConfig] = None,
    seed: int = 0,
    target_row: int = 512,
    decoy_count: int = 24,
    decoys_per_round: int = 2,
    bank_index: int = 0,
    comet_hash_seed: int = 0,
    num_hashes: int = 4,
    counters_per_hash: int = 512,
    bubble: int = 0,
    channel: int = 0,
) -> Trace:
    """Decoy-heavy sketch-aliasing attack against CoMeT's Counter Table.

    The double-sided pair ``target_row ± 1`` is hammered alternately (every
    access a fresh row conflict, hence an ACT), interleaved with a flood of
    decoy rows chosen by :func:`find_aliasing_decoys` to collide with each
    other in the Counter Table while staying disjoint from the aggressors'
    counter groups.  Two effects follow:

    * the aggressors' count-min estimates stay *exact* (nothing else touches
      their counters), so the pair reaches the preventive-refresh threshold
      no earlier than its true activation count — maximizing the victim's
      disturbance per epoch, unlike an unaware attack whose collisions
      inflate estimates and trigger early refreshes; and
    * the mutually-aliased decoys drive their shared counters up at flood
      rate, drawing spurious preventive refreshes (false-positive pressure)
      without protecting the real victim.

    ``seed`` shuffles the decoy rotation order only; the row *selection* is
    the deterministic whitebox computation.
    """
    mapper = _mapper(dram_config)
    rows_per_bank = mapper.config.organization.rows_per_bank
    target_row %= rows_per_bank
    aggressors = [(target_row - 1) % rows_per_bank, (target_row + 1) % rows_per_bank]
    bank_key = _bank_key_for_index(mapper, bank_index, channel)
    decoys = find_aliasing_decoys(
        aggressors,
        rows_per_bank,
        bank_key,
        count=max(1, decoy_count),
        hash_seed=comet_hash_seed,
        num_hashes=num_hashes,
        counters_per_hash=counters_per_hash,
    )
    rng = random.Random(seed)
    rng.shuffle(decoys)
    entries: List[TraceEntry] = []
    decoy_cursor = 0
    while len(entries) < num_requests:
        for row in aggressors:
            if len(entries) >= num_requests:
                break
            address = mapper.address_for_row(row, bank_index=bank_index, channel=channel)
            entries.append(TraceEntry(bubble, address, False))
        for _ in range(decoys_per_round):
            if len(entries) >= num_requests:
                break
            row = decoys[decoy_cursor % len(decoys)]
            decoy_cursor += 1
            address = mapper.address_for_row(row, bank_index=bank_index, channel=channel)
            entries.append(TraceEntry(bubble, address, False))
    return Trace(entries[:num_requests], name="synth_sketch_aliasing")


@register_workload("synth_rowpress", category=SYNTH_CATEGORY)
def synth_rowpress(
    num_requests: int = 8000,
    dram_config: Optional[DRAMConfig] = None,
    seed: int = 0,
    target_row: int = 768,
    hits_per_open: int = 48,
    bank_index: int = 0,
    open_bubble: int = 24,
    bubble: int = 0,
    channel: int = 0,
) -> Trace:
    """RowPress-style long-open-row sequence.

    Each episode activates one aggressor of the double-sided pair
    ``target_row ± 1`` and then streams ``hits_per_open`` same-row column
    reads (row-buffer hits with ``open_bubble`` compute instructions between
    them), keeping the row open for as long as the refresh schedule allows
    before toggling to the sibling aggressor.  The ACT *rate* is tiny
    compared to a classic hammer — what is maximized is aggressor-row open
    time per activation, the RowPress amplification vector — so this
    pattern probes how mechanisms behave when almost all pressure is
    open-time rather than activation count.
    """
    mapper = _mapper(dram_config)
    org = mapper.config.organization
    rows_per_bank = org.rows_per_bank
    target_row %= rows_per_bank
    aggressors = [(target_row - 1) % rows_per_bank, (target_row + 1) % rows_per_bank]
    rng = random.Random(seed)
    entries: List[TraceEntry] = []
    side = 0
    while len(entries) < num_requests:
        row = aggressors[side % 2]
        side += 1
        # Opening access (row conflict with the sibling: a fresh ACT) ...
        entries.append(
            TraceEntry(
                bubble,
                mapper.address_for_row(row, bank_index=bank_index, channel=channel),
                False,
            )
        )
        # ... then a long run of same-row hits that keeps the row open.
        for _ in range(hits_per_open):
            if len(entries) >= num_requests:
                break
            column = rng.randrange(0, org.columns_per_row, 8)
            entries.append(
                TraceEntry(
                    open_bubble,
                    mapper.address_for_row(
                        row, bank_index=bank_index, column=column, channel=channel
                    ),
                    False,
                )
            )
    return Trace(entries[:num_requests], name="synth_rowpress")


@register_workload("synth_refresh_wave", category=SYNTH_CATEGORY)
def synth_refresh_wave(
    num_requests: int = 8000,
    dram_config: Optional[DRAMConfig] = None,
    seed: int = 0,
    target_row: int = 1024,
    burst_activations: int = 24,
    gap_fraction: float = 0.45,
    reset_period_divider: int = 3,
    issue_rate: Optional[float] = None,
    bank_index: int = 0,
    bubble: int = 0,
    channel: int = 0,
) -> Trace:
    """Refresh-window-straddling "wave" attack.

    Short double-sided bursts on ``target_row ± 1`` separated by idle gaps
    sized from the DRAM configuration: the gap spans ``gap_fraction`` of the
    (scaled) refresh window, floored at one counter-reset period
    (``tREFW / k``, ``k = reset_period_divider``), so consecutive bursts
    land in different reset epochs even when ``gap_fraction`` is dialed
    down.  Counter-based trackers forget the first
    burst at the epoch boundary while the victim's physical disturbance
    persists until its *own* periodic refresh, which is exactly the gap the
    Section 5 invariant has to close.  ``burst_activations`` counts total
    ACTs per wave across both aggressors; the default is deliberately below
    any default preventive-refresh threshold so waves accumulate silently.

    The idle gaps are realized as one giant-``bubble_count`` entry computed
    from the core model's issue rate (``issue_rate`` defaults to the Table 2
    core's ``width * cpu_to_mem_ratio``), so the trace needs no simulator
    cooperation to keep time.
    """
    mapper = _mapper(dram_config)
    config = mapper.config
    rows_per_bank = config.organization.rows_per_bank
    target_row %= rows_per_bank
    aggressors = [(target_row - 1) % rows_per_bank, (target_row + 1) % rows_per_bank]
    if issue_rate is None:
        issue_rate = CoreConfig().issue_rate_per_mem_cycle
    # The gap spans ``gap_fraction`` of the refresh window but never less
    # than one counter-reset period (tREFW / k), so the straddle survives a
    # small ``gap_fraction``.
    reset_period = config.tREFW // max(1, reset_period_divider)
    gap_cycles = max(1, int(config.tREFW * gap_fraction), reset_period + 1)
    gap_bubbles = max(1, int(gap_cycles * issue_rate))
    entries: List[TraceEntry] = []
    while len(entries) < num_requests:
        for index in range(max(2, burst_activations)):
            if len(entries) >= num_requests:
                break
            row = aggressors[index % 2]
            entries.append(
                TraceEntry(
                    bubble,
                    mapper.address_for_row(row, bank_index=bank_index, channel=channel),
                    False,
                )
            )
        if len(entries) < num_requests:
            # The wave gap: idle long enough for a counter-reset epoch to
            # elapse before the next burst.
            entries.append(
                TraceEntry(
                    gap_bubbles,
                    mapper.address_for_row(
                        aggressors[0], bank_index=bank_index, channel=channel
                    ),
                    False,
                )
            )
    return Trace(entries[:num_requests], name="synth_refresh_wave")


@register_workload("synth_multichannel", category=SYNTH_CATEGORY)
def synth_multichannel(
    num_requests: int = 8000,
    dram_config: Optional[DRAMConfig] = None,
    seed: int = 0,
    target_row: int = 640,
    channel_stride: int = 16,
    bank_index: int = 0,
    bubble: int = 0,
    channel: int = 0,
) -> Trace:
    """Coordinated multi-channel double-sided attack.

    One double-sided pair per memory channel (offset ``channel_stride`` rows
    per channel so the pairs are distinct rows), interleaved round-robin
    across channels: every channel's mitigation instance is pressured at the
    same time, which is the scenario the per-channel fabric's isolation
    properties are audited under.  On a single-channel configuration this
    degenerates to one ordinary double-sided pair, so the pattern is safe in
    1-channel grids too.  ``channel`` offsets the round-robin start.
    """
    mapper = _mapper(dram_config)
    org = mapper.config.organization
    rows_per_bank = org.rows_per_bank
    per_channel_pairs = []
    for ch in range(org.channels):
        base = (target_row + ch * channel_stride) % rows_per_bank
        per_channel_pairs.append(
            [(base - 1) % rows_per_bank, (base + 1) % rows_per_bank]
        )
    entries: List[TraceEntry] = []
    turn = 0
    while len(entries) < num_requests:
        ch = (channel + turn) % org.channels
        # The pair side advances once per full round over the channels: with
        # ``turn % 2`` it would phase-lock to the channel on every even
        # channel count (all >1-channel configs are powers of two) and each
        # channel would hammer a single open row — no ACT pressure at all.
        row = per_channel_pairs[ch][(turn // org.channels) % 2]
        address = mapper.address_for_row(row, bank_index=bank_index, channel=ch)
        entries.append(TraceEntry(bubble, address, False))
        turn += 1
    return Trace(entries[:num_requests], name="synth_multichannel")
