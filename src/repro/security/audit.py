"""Spec-driven security-audit campaigns.

An audit fans a mitigation x pattern x NRH (x controller-policy) grid
through the cached,
parallel :class:`~repro.sim.sweep.SweepRunner` (via a
:class:`~repro.experiment.session.Session`) with the
:class:`~repro.analysis.security.SecurityVerifier` attached in its cheap
streaming max-margin mode, then reduces the per-run verdict stream into one
:class:`SecurityReport`:

* one :class:`AuditFinding` per grid cell — verdict, max observed
  disturbance, the disturbance/NRH *margin* (1.0 means the RowHammer
  invariant was reached), first-violation cycle and preventive-refresh
  pressure;
* one :class:`MechanismVerdict` per mechanism — secure iff every cell was,
  with the worst margin and the pattern that produced it.

Reports serialize to JSON (``to_json``/``from_json``) and render as aligned
tables; findings carry the spec content hash so any cell can be re-run
bit-for-bit.  Entry points: :func:`run_audit`,
:meth:`repro.experiment.session.Session.audit` and ``repro audit`` on the
command line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING

from repro.analysis.reporting import format_table
from repro.experiment.registry import (
    mitigation_names,
    registered_workload_names,
    workload_entry,
)
from repro.controller.policies import (
    ControllerPolicySpec,
    DEFAULT_POLICY,
    normalize_policy,
)
from repro.experiment.spec import (
    CampaignSpec,
    ExperimentSpec,
    MitigationSpec,
    PlatformSpec,
    WorkloadSpec,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (session imports us)
    from repro.experiment.session import RunRecord, Session

#: Bump when the SecurityReport JSON schema changes incompatibly.
REPORT_VERSION = 1

#: Workload categories ``--patterns all`` expands to: every synthesized
#: pattern plus the hand-written mechanism-targeted attacks.
AUDIT_PATTERN_CATEGORIES = ("synth", "attack")

#: Per-mechanism *design* RowHammer thresholds on the scaled platform: the
#: lowest threshold at which the mechanism's default configuration upholds
#: the Section 5 invariant against every audited pattern.  Everything runs
#: at the paper's headline NRH = 125 except BlockHammer: its dual
#: counting-Bloom-filter epoch swap lets a row restart its observed count
#: mid-refresh-window, so per-victim disturbance can reach ~2.7x the
#: blacklist threshold (= NRH/2) and its default configuration only holds
#: the invariant from NRH = 250 here — the same low-threshold breakdown
#: regime Figure 18 shows for its performance.
DESIGN_NRH: Dict[str, int] = {"default": 125, "blockhammer": 250}

#: Mechanism names on the audit axis that are *controller refresh policies*
#: rather than mitigations: the cell runs the unprotected baseline under the
#: policy (NRH-scaled via :func:`rfm_policy_for_nrh`), and findings report
#: the policy name as the mechanism.  This is how DDR5 RFM — which lives in
#: the refresh scheduler, not behind the mitigation interface — rides the
#: same grid as the trackers.
REFRESH_POLICY_MECHANISMS = ("rfm",)

#: The low-NRH scaling study's mechanism axis (Section 8's DDR5-era
#: frontier): every tracker plus the two in-DRAM DDR5 mechanisms.
SCALING_MECHANISMS = (
    "blockhammer",
    "comet",
    "graphene",
    "hydra",
    "para",
    "prac",
    "rega",
    "rfm",
)

#: The scaling study's threshold axis: the paper's headline NRH = 125 down
#: to the ultra-low 20 where SRAM/CAM trackers blow up in area and RFM/PRAC
#: pay ever more refresh bandwidth instead.
SCALING_NRHS = (125, 64, 32, 20)

#: The scaling study's adversarial patterns: the strongest synthesized
#: many-sided pattern plus the uniform-random spreading pattern.
SCALING_PATTERNS = ("synth_blacksmith", "synth_uniform")


def rfm_policy_for_nrh(nrh: int) -> ControllerPolicySpec:
    """The NRH-scaled RFM configuration the audit grid runs ``"rfm"`` at.

    RAAIMT = NRH / 4: every RAAIMT activations into a bank the controller
    owes an RFM command and the device refreshes the victims of the bank's
    hottest row, so no single row can accumulate more than ~2 * RAAIMT
    disturbances on a victim between services — comfortably under NRH with
    a 2x margin.  RAAMMT = 2 * RAAIMT is the JEDEC dual-threshold shape
    (the hard ceiling at which the device forces the service).  Scaling
    RAAIMT with NRH is exactly the DDR5 trade: security at any threshold,
    paid for in RFM bandwidth that grows as NRH shrinks.
    """
    raaimt = max(1, nrh // 4)
    return ControllerPolicySpec(
        refresh_policy="rfm",
        params={"raaimt": raaimt, "raammt": 2 * raaimt},
    )


def mechanism_of(spec: ExperimentSpec) -> str:
    """The mechanism label an audit cell reports under.

    Normally the mitigation name; an unprotected-baseline cell running under
    an active refresh-management policy (:data:`REFRESH_POLICY_MECHANISMS`)
    reports as that policy — the policy *is* the mechanism under audit.
    """
    mechanism = spec.mitigation.name
    controller = spec.platform.controller
    if (
        mechanism == "none"
        and controller is not None
        and controller.refresh_policy in REFRESH_POLICY_MECHANISMS
    ):
        return controller.refresh_policy
    return mechanism


def design_nrh(mitigation: str) -> int:
    """The audit's design RowHammer threshold for one mechanism."""
    return DESIGN_NRH.get(mitigation, DESIGN_NRH["default"])


def design_mitigation_spec(mitigation: str) -> MitigationSpec:
    """One mechanism's audited design point: threshold plus configuration.

    Most mechanisms audit with their default construction at
    :func:`design_nrh`.  BlockHammer additionally tightens its blacklist
    fraction to 0.25: the default (0.5) budgets the whole threshold for a
    single aggressor, but the verifier's victim-centric invariant sums both
    neighbours — and the synthesized double-sided patterns exploit the dual
    counting-Bloom-filter epoch swap on top, reaching ~2.6x the blacklist
    threshold per victim (the ``synth_blacksmith`` finding that motivated
    this design point).  Halving the fraction keeps the double-sided sum
    plus the epoch-swap slack under NRH.
    """
    nrh = design_nrh(mitigation)
    overrides: Dict[str, Any] = {}
    if mitigation == "blockhammer":
        from repro.mitigations.blockhammer import BlockHammerConfig

        overrides = {"config": BlockHammerConfig(nrh=nrh, blacklist_fraction=0.25)}
    return MitigationSpec(name=mitigation, nrh=nrh, overrides=overrides)


def default_audit_patterns() -> List[str]:
    """Every registered adversarial pattern an audit covers by default."""
    names: List[str] = []
    for category in AUDIT_PATTERN_CATEGORIES:
        names.extend(registered_workload_names(category))
    return sorted(names)


def default_audit_mitigations() -> List[str]:
    """Every registered *protective* mechanism (the baseline is opt-in)."""
    return [name for name in mitigation_names() if name != "none"]


# --------------------------------------------------------------------------- #
# Report dataclasses
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AuditFinding:
    """The security verdict of one (mitigation, pattern, NRH, policy) cell."""

    mitigation: str
    pattern: str
    nrh: int
    channels: int
    #: Controller-policy label of the cell (``scheduler/row/refresh``); the
    #: default triple when the campaign did not sweep the policy axis.
    policy: str
    secure: bool
    max_disturbance: int
    #: ``max_disturbance / nrh`` — how close the pattern pushed any victim to
    #: the RowHammer threshold (>= 1.0 means the invariant was violated).
    margin: float
    violations: int
    first_violation_cycle: Optional[int]
    preventive_refreshes: int
    early_refresh_operations: int
    #: sha256 of the canonical spec JSON: re-run this cell bit-for-bit.
    spec_hash: str

    def as_row(self) -> Dict[str, Any]:
        return {
            "mitigation": self.mitigation,
            "pattern": self.pattern,
            "nrh": self.nrh,
            "channels": self.channels,
            "policy": self.policy,
            "secure": self.secure,
            "max_disturbance": self.max_disturbance,
            "margin": round(self.margin, 4),
            "violations": self.violations,
            "first_violation": (
                self.first_violation_cycle
                if self.first_violation_cycle is not None
                else "-"
            ),
            "preventive_refreshes": self.preventive_refreshes,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mitigation": self.mitigation,
            "pattern": self.pattern,
            "nrh": self.nrh,
            "channels": self.channels,
            "policy": self.policy,
            "secure": self.secure,
            "max_disturbance": self.max_disturbance,
            "margin": self.margin,
            "violations": self.violations,
            "first_violation_cycle": self.first_violation_cycle,
            "preventive_refreshes": self.preventive_refreshes,
            "early_refresh_operations": self.early_refresh_operations,
            "spec_hash": self.spec_hash,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AuditFinding":
        return cls(
            mitigation=data["mitigation"],
            pattern=data["pattern"],
            nrh=data["nrh"],
            channels=data.get("channels", 1),
            policy=data.get("policy", DEFAULT_POLICY.label()),
            secure=data["secure"],
            max_disturbance=data["max_disturbance"],
            margin=data["margin"],
            violations=data.get("violations", 0),
            first_violation_cycle=data.get("first_violation_cycle"),
            preventive_refreshes=data.get("preventive_refreshes", 0),
            early_refresh_operations=data.get("early_refresh_operations", 0),
            spec_hash=data.get("spec_hash", ""),
        )


@dataclass(frozen=True)
class MechanismVerdict:
    """One mechanism's verdict over every pattern and threshold audited."""

    mitigation: str
    secure: bool
    worst_margin: float
    worst_pattern: str
    worst_nrh: int
    patterns_run: int

    def as_row(self) -> Dict[str, Any]:
        return {
            "mitigation": self.mitigation,
            "verdict": "secure" if self.secure else "INSECURE",
            "worst_margin": round(self.worst_margin, 4),
            "worst_pattern": self.worst_pattern,
            "at_nrh": self.worst_nrh,
            "patterns": self.patterns_run,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mitigation": self.mitigation,
            "secure": self.secure,
            "worst_margin": self.worst_margin,
            "worst_pattern": self.worst_pattern,
            "worst_nrh": self.worst_nrh,
            "patterns_run": self.patterns_run,
        }


@dataclass(frozen=True)
class SecurityReport:
    """The reduced outcome of one audit campaign."""

    findings: List[AuditFinding]
    metadata: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    @property
    def is_secure(self) -> bool:
        """True iff every audited cell upheld the RowHammer invariant."""
        return all(finding.secure for finding in self.findings)

    def verdicts(self) -> List[MechanismVerdict]:
        """Per-mechanism reduction, ordered by mechanism name."""
        by_mechanism: Dict[str, List[AuditFinding]] = {}
        for finding in self.findings:
            by_mechanism.setdefault(finding.mitigation, []).append(finding)
        verdicts = []
        for mitigation in sorted(by_mechanism):
            cells = by_mechanism[mitigation]
            worst = max(cells, key=lambda cell: cell.margin)
            verdicts.append(
                MechanismVerdict(
                    mitigation=mitigation,
                    secure=all(cell.secure for cell in cells),
                    worst_margin=worst.margin,
                    worst_pattern=worst.pattern,
                    worst_nrh=worst.nrh,
                    patterns_run=len(
                        {(cell.pattern, cell.nrh, cell.policy) for cell in cells}
                    ),
                )
            )
        return verdicts

    def verdict_for(self, mitigation: str) -> MechanismVerdict:
        for verdict in self.verdicts():
            if verdict.mitigation == mitigation:
                return verdict
        raise KeyError(f"no findings for mitigation {mitigation!r}")

    def finding_for(
        self,
        mitigation: str,
        pattern: str,
        nrh: int,
        policy: Optional[str] = None,
    ) -> AuditFinding:
        """One cell by coordinates; ``policy`` (a label) disambiguates
        campaigns that swept the controller-policy axis (default: first
        match, which is the only match for single-policy campaigns)."""
        for finding in self.findings:
            if (finding.mitigation, finding.pattern, finding.nrh) == (
                mitigation,
                pattern,
                nrh,
            ) and (policy is None or finding.policy == policy):
                return finding
        raise KeyError(f"no finding for {mitigation}/{pattern}@{nrh}")

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def verdict_table(self) -> str:
        return format_table(
            [verdict.as_row() for verdict in self.verdicts()],
            title="security audit: per-mechanism verdicts",
        )

    def findings_table(self) -> str:
        ordered = sorted(
            self.findings,
            key=lambda f: (f.mitigation, -f.margin, f.pattern, f.nrh, f.policy),
        )
        return format_table(
            [finding.as_row() for finding in ordered],
            title="security audit: per-pattern findings (worst margin first)",
        )

    def render(self) -> str:
        return self.verdict_table() + "\n\n" + self.findings_table()

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "report_version": REPORT_VERSION,
            "secure": self.is_secure,
            "metadata": dict(self.metadata),
            "verdicts": [verdict.to_dict() for verdict in self.verdicts()],
            "findings": [finding.to_dict() for finding in self.findings],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SecurityReport":
        version = data.get("report_version", REPORT_VERSION)
        if version > REPORT_VERSION:
            raise ValueError(
                f"report_version {version} is newer than this build supports "
                f"({REPORT_VERSION}); upgrade repro"
            )
        return cls(
            findings=[AuditFinding.from_dict(item) for item in data.get("findings", ())],
            metadata=dict(data.get("metadata", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SecurityReport":
        return cls.from_dict(json.loads(text))


# --------------------------------------------------------------------------- #
# Campaign construction and execution
# --------------------------------------------------------------------------- #
def build_audit_grid(
    mitigations: Optional[Sequence[str]] = None,
    patterns: Optional[Sequence[str]] = None,
    nrhs: Optional[Sequence[int]] = None,
    num_requests: int = 6000,
    channels: int = 1,
    seed: int = 0,
    platform: Optional[PlatformSpec] = None,
    include_baseline: bool = False,
    policies: Optional[Sequence[Optional[ControllerPolicySpec]]] = None,
) -> List[ExperimentSpec]:
    """Expand an audit campaign into streaming-verified experiment specs.

    ``nrhs=None`` audits each mechanism at its own design threshold
    (:data:`DESIGN_NRH`); an explicit list applies to every mechanism.
    Every pattern name must resolve through the workload registry (unknown
    names raise up front, listing what is known).  ``include_baseline`` adds
    the unprotected ``"none"`` rows — expected to be *insecure* — as the
    sanity reference showing the patterns really do cross NRH when nothing
    defends.  ``policies`` adds the controller-policy axis: every cell is
    repeated per policy triple (``None`` entries mean the platform's own
    policy), because a mitigation's security margin is entangled with
    scheduler and row-policy choice (open-row residency, refresh contention).

    Mechanism names in :data:`REFRESH_POLICY_MECHANISMS` (``"rfm"``) expand
    to unprotected-baseline cells under the NRH-scaled policy
    (:func:`rfm_policy_for_nrh`) instead of a mitigation spec; those cells
    carry their own controller policy and therefore skip the ``policies``
    axis.  :func:`mechanism_of` maps them back to the policy name when
    findings are reduced.
    """
    mitigation_list = list(mitigations) if mitigations else default_audit_mitigations()
    pattern_list = list(patterns) if patterns else default_audit_patterns()
    policy_list = list(policies) if policies else [None]
    for pattern in pattern_list:
        workload_entry(pattern)  # raises UnknownWorkloadError with known names
    if include_baseline and "none" not in mitigation_list:
        mitigation_list = ["none", *mitigation_list]
    if platform is None:
        plat = PlatformSpec(channels=channels)
    elif channels != 1:
        # An explicit channel count wins over the platform's (the grid's
        # channel-scaling convention); the default of 1 leaves a caller's
        # platform untouched.
        plat = replace(platform, channels=channels)
    else:
        plat = platform
    platforms: List[PlatformSpec] = [
        plat
        if policy is None
        else replace(plat, controller=normalize_policy(policy))
        for policy in policy_list
    ]
    specs: List[ExperimentSpec] = []
    for mitigation in mitigation_list:
        if mitigation in REFRESH_POLICY_MECHANISMS:
            cell_nrhs = [design_nrh(mitigation)] if nrhs is None else list(nrhs)
            for pattern in pattern_list:
                for nrh in cell_nrhs:
                    policy_platform = replace(plat, controller=rfm_policy_for_nrh(nrh))
                    specs.append(
                        ExperimentSpec(
                            workload=WorkloadSpec(
                                name=pattern, num_requests=num_requests, seed=seed
                            ),
                            mitigation=MitigationSpec(name="none", nrh=nrh),
                            platform=policy_platform,
                            verify_security="streaming",
                            name=f"audit:{pattern}/{mitigation}@{nrh}"
                            f"/{policy_platform.controller.label()}",
                        )
                    )
            continue
        if nrhs is None:
            mitigation_specs = [design_mitigation_spec(mitigation)]
        else:
            mitigation_specs = [
                MitigationSpec(name=mitigation, nrh=nrh) for nrh in nrhs
            ]
        if mitigation == "para":
            # Below NRH ~ 50 PARA's derived refresh probability makes its
            # preventive cascade supercritical — an activation storm, not a
            # security verdict.  The grid marks those cells infeasible
            # (they are simply absent; scaling_report records them).
            from repro.mitigations.para import para_is_feasible

            mitigation_specs = [
                mspec for mspec in mitigation_specs if para_is_feasible(mspec.nrh)
            ]
        for pattern in pattern_list:
            for mspec in mitigation_specs:
                for cell_platform in platforms:
                    specs.append(
                        ExperimentSpec(
                            workload=WorkloadSpec(
                                name=pattern, num_requests=num_requests, seed=seed
                            ),
                            mitigation=mspec,
                            platform=cell_platform,
                            verify_security="streaming",
                            name=f"audit:{pattern}/{mitigation}@{mspec.nrh}"
                            + (
                                f"/{cell_platform.controller.label()}"
                                if cell_platform.controller is not None
                                else ""
                            ),
                        )
                    )
    return specs


def _reduce_records(
    specs: Sequence[ExperimentSpec], records: Sequence["RunRecord"]
) -> List[AuditFinding]:
    findings = []
    for spec, record in zip(specs, records):
        result = record.result
        nrh = spec.mitigation.nrh
        policy = spec.platform.controller or DEFAULT_POLICY
        findings.append(
            AuditFinding(
                mitigation=mechanism_of(spec),
                pattern=spec.workload.name,
                nrh=nrh,
                channels=spec.platform.channel_count,
                policy=policy.label(),
                secure=result.security_ok,
                max_disturbance=result.max_disturbance,
                margin=result.max_disturbance / nrh,
                violations=result.security_violations,
                first_violation_cycle=result.first_violation_cycle,
                preventive_refreshes=result.preventive_refreshes,
                early_refresh_operations=result.early_refresh_operations,
                spec_hash=spec.content_hash(),
            )
        )
    return findings


def run_audit(
    mitigations: Optional[Sequence[str]] = None,
    patterns: Optional[Sequence[str]] = None,
    nrhs: Optional[Sequence[int]] = None,
    num_requests: int = 6000,
    channels: int = 1,
    seed: int = 0,
    platform: Optional[PlatformSpec] = None,
    include_baseline: bool = False,
    policies: Optional[Sequence[Optional[ControllerPolicySpec]]] = None,
    session: Optional["Session"] = None,
) -> SecurityReport:
    """Run one audit campaign and reduce it to a :class:`SecurityReport`.

    ``session`` controls fan-out and caching (defaults to an uncached inline
    :class:`~repro.experiment.session.Session`); everything else mirrors
    :func:`build_audit_grid`.  The report is deterministic for a fixed seed:
    the same campaign produces the same findings whether it ran inline,
    across worker processes, or straight out of the result cache.
    """
    specs = build_audit_grid(
        mitigations=mitigations,
        patterns=patterns,
        nrhs=nrhs,
        num_requests=num_requests,
        channels=channels,
        seed=seed,
        platform=platform,
        include_baseline=include_baseline,
        policies=policies,
    )
    if session is None:
        from repro.experiment.session import Session

        session = Session(max_workers=0, use_cache=False)
    records = session.run_many(specs)
    from repro import __version__

    return SecurityReport(
        findings=_reduce_records(specs, records),
        metadata={
            "repro_version": __version__,
            "seed": seed,
            # The resolved channel count (a caller's platform wins over the
            # default ``channels=1``), so the archive matches the findings.
            "channels": specs[0].platform.channel_count if specs else channels,
            "num_requests": num_requests,
            "nrhs": list(nrhs) if nrhs is not None else "design",
            "mitigations": sorted({mechanism_of(spec) for spec in specs}),
            "patterns": sorted({spec.workload.name for spec in specs}),
            "policies": sorted(
                {
                    (spec.platform.controller or DEFAULT_POLICY).label()
                    for spec in specs
                }
            ),
        },
    )


# --------------------------------------------------------------------------- #
# The low-NRH scaling study
# --------------------------------------------------------------------------- #
def scaling_campaign(
    mechanisms: Optional[Sequence[str]] = None,
    patterns: Optional[Sequence[str]] = None,
    nrhs: Optional[Sequence[int]] = None,
    num_requests: int = 6000,
    budget: Optional[int] = None,
) -> "CampaignSpec":
    """The DDR5-era scaling study as a resumable campaign.

    Sweeps every mechanism (:data:`SCALING_MECHANISMS` — trackers, in-DRAM
    PRAC/ABO, and NRH-scaled RFM) against :data:`SCALING_PATTERNS` at each
    threshold in :data:`SCALING_NRHS`, streaming-verified, plus the
    unprotected baseline rows.  Run it through
    :meth:`repro.experiment.session.Session.campaign` (or ``repro campaign
    run --scaling-study``): cells persist to the result store as they
    finish, so the study can be killed and resumed, sharded over workers,
    or budgeted per invocation.  Reduce the store to a
    :class:`SecurityReport` with :func:`scaling_report`.
    """
    return CampaignSpec(
        name="low-nrh-scaling",
        workloads=tuple(patterns) if patterns else SCALING_PATTERNS,
        mitigations=tuple(mechanisms) if mechanisms else SCALING_MECHANISMS,
        nrhs=tuple(nrhs) if nrhs else SCALING_NRHS,
        num_requests=num_requests,
        include_baseline=True,
        audit=True,
        budget=budget,
    )


def scaling_report(store, campaign: Optional["CampaignSpec"] = None) -> SecurityReport:
    """Reduce a (possibly partial) scaling campaign's store to a report.

    Re-expands the campaign grid, fetches each cell's record from the
    :class:`~repro.campaign.store.ResultStore` by content hash, and reduces
    whatever is present; cells not yet executed are counted in
    ``metadata["missing_cells"]`` rather than failing, so a partially
    drained campaign still yields a report over its finished frontier.
    """
    from repro import __version__

    campaign = campaign if campaign is not None else scaling_campaign()
    # Cells the grid refused to expand (PARA's supercritical boundary) are
    # reported as infeasible, distinct from not-yet-executed missing cells.
    infeasible: List[str] = []
    if "para" in campaign.mitigations:
        from repro.mitigations.para import para_is_feasible

        infeasible = [
            f"para@{nrh}" for nrh in campaign.nrhs if not para_is_feasible(nrh)
        ]
    specs = [spec for spec, _ in campaign.cells()]
    done: List[ExperimentSpec] = []
    records = []
    for spec in specs:
        record = store.get_record(spec)
        if record is None:
            continue
        done.append(spec)
        records.append(record)
    return SecurityReport(
        findings=_reduce_records(done, records),
        metadata={
            "repro_version": __version__,
            "campaign": campaign.name,
            "campaign_id": campaign.campaign_id(),
            "total_cells": len(specs),
            "missing_cells": len(specs) - len(done),
            "nrhs": list(campaign.nrhs),
            "infeasible": infeasible,
            "mechanisms": sorted({mechanism_of(spec) for spec in done}),
            "patterns": sorted({spec.workload.name for spec in done}),
        },
    )
