"""repro.security: adversarial attack synthesis and spec-driven security audits.

The paper's security argument (Section 5) is an invariant — no row's
disturbance ever reaches ``NRH`` between two refreshes of its victims — and
an invariant is only as trustworthy as the adversaries thrown at it.  This
subpackage turns attack generation into a first-class, parameterized workload
frontier and security verification into a campaign:

* :mod:`repro.security.synth` — the attack-synthesis engine: seeded,
  reproducible generators for Blacksmith-style fuzzed n-sided patterns,
  sketch-aware decoy/aliasing attacks against CoMeT's count-min counters,
  RowPress-style long-open-row sequences, refresh-window-straddling waves
  and multi-channel coordinated variants.  Every pattern registers itself as
  a workload (``synth_*``), so it composes with
  :class:`~repro.experiment.spec.WorkloadSpec` and the sweep machinery like
  any suite entry.
* :mod:`repro.security.audit` — the campaign runner: fan a
  mitigation x pattern x NRH grid through the cached, parallel
  :class:`~repro.sim.sweep.SweepRunner` with the
  :class:`~repro.analysis.security.SecurityVerifier` attached in its cheap
  streaming mode, and reduce the per-run verdicts into a
  :class:`~repro.security.audit.SecurityReport` (max disturbance / NRH
  margin per mechanism, first-violation cycle, per-pattern verdicts) with
  JSON and table output.

Entry points: ``repro audit`` on the command line and
:meth:`repro.experiment.session.Session.audit` from Python.
"""

from repro.security.synth import (
    SYNTH_CATEGORY,
    comet_counter_groups,
    find_aliasing_decoys,
    synth_blacksmith,
    synth_multichannel,
    synth_pattern_names,
    synth_refresh_wave,
    synth_rowpress,
    synth_sketch_aliasing,
    synth_uniform,
)
from repro.security.audit import (
    AuditFinding,
    MechanismVerdict,
    REPORT_VERSION,
    SecurityReport,
    build_audit_grid,
    default_audit_mitigations,
    default_audit_patterns,
    run_audit,
)

__all__ = [
    "SYNTH_CATEGORY",
    "comet_counter_groups",
    "find_aliasing_decoys",
    "synth_blacksmith",
    "synth_multichannel",
    "synth_pattern_names",
    "synth_refresh_wave",
    "synth_rowpress",
    "synth_sketch_aliasing",
    "synth_uniform",
    "AuditFinding",
    "MechanismVerdict",
    "REPORT_VERSION",
    "SecurityReport",
    "build_audit_grid",
    "default_audit_mitigations",
    "default_audit_patterns",
    "run_audit",
]
