"""REGA: Refresh-Generating Activations (Marazzi et al., S&P 2023).

REGA modifies the DRAM chip so that every row activation concurrently
refreshes one or more potential victim rows using spare sense amplifiers.  To
refresh more rows per activation (needed at lower RowHammer thresholds), REGA
lengthens the row cycle: the CoMeT paper simulates REGA "by modifying tRC as
described in [127]" (Section 6).

This model does the same thing:

* :meth:`REGA.adjust_dram_config` inflates ``tRAS``/``tRC`` according to the
  number of victim-row refreshes each activation must perform at the target
  threshold (``refreshes_per_activation``); at NRH = 1K a single in-activation
  refresh fits in the normal row cycle (no slowdown), and each additional
  refresh adds roughly one precharge+restore interval.
* because every activation implicitly refreshes its neighbourhood, REGA never
  enqueues preventive refresh requests; instead it reports the victim rows as
  refreshed to the DRAM model so the security verifier sees the protection.

The paper treats REGA's area cost as a fixed 2.06% DRAM-chip overhead and a
negligible controller overhead; :meth:`storage_report` reports that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict

from repro.dram.address import DRAMAddress
from repro.dram.config import DRAMConfig
from repro.mitigations.base import RowHammerMitigation
from repro.experiment.registry import register_mitigation


@dataclass(frozen=True)
class REGAConfig:
    """REGA timing model parameters.

    ``extra_activation_cycles`` grows as the threshold shrinks below
    ``single_refresh_threshold``: at NRH >= 1K the in-activation refresh fits
    in the nominal row cycle (no slowdown, matching the paper's observation
    that REGA is overhead-free at NRH = 1K), and each halving of the
    threshold lengthens the row cycle by a few restore intervals, reaching
    roughly a third of tRC at NRH = 125 (which yields the ~14% average
    slowdown Figure 12 reports).
    """

    nrh: int
    #: Highest threshold at which one refresh per activation is sufficient.
    single_refresh_threshold: int = 1000
    #: Baseline row cycle (DDR4-2400 cycles) the inflation is computed from.
    base_trc_cycles: int = 55
    #: Fractional tRC increase per unit of (single_refresh_threshold/NRH - 1).
    inflation_factor: float = 0.045

    @property
    def refreshes_per_activation(self) -> int:
        """Victim rows REGA must refresh during each activation."""
        if self.nrh >= self.single_refresh_threshold:
            return 1
        return int(math.ceil(self.single_refresh_threshold / self.nrh))

    @property
    def extra_activation_cycles(self) -> int:
        """Cycles added to the row cycle beyond the baseline tRC."""
        if self.nrh >= self.single_refresh_threshold:
            return 0
        pressure = self.single_refresh_threshold / self.nrh - 1.0
        return int(math.ceil(self.base_trc_cycles * self.inflation_factor * pressure))


@register_mitigation("rega")
class REGA(RowHammerMitigation):
    """In-DRAM refresh-generating activations, modelled as inflated tRC."""

    name = "rega"

    #: DRAM chip area overhead reported by the REGA paper (Section 7.3.1).
    DRAM_AREA_OVERHEAD_FRACTION = 0.0206

    def __init__(self, nrh: int, config: REGAConfig = None, blast_radius: int = 1) -> None:
        super().__init__(nrh=nrh, blast_radius=blast_radius)
        self.config = config or REGAConfig(nrh=nrh)

    # ------------------------------------------------------------------ #
    # Timing model
    # ------------------------------------------------------------------ #
    def adjust_dram_config(self, config: DRAMConfig) -> DRAMConfig:
        extra = self.config.extra_activation_cycles
        if extra == 0:
            return config
        timing = replace(
            config.timing,
            tRAS=config.timing.tRAS + extra,
            tRC=config.timing.tRC + extra,
        )
        return replace(config, timing=timing)

    # ------------------------------------------------------------------ #
    # Event hooks
    # ------------------------------------------------------------------ #
    def on_activation(self, cycle: int, address: DRAMAddress, is_preventive: bool) -> None:
        self.stats.observed_activations += 1
        # Each activation refreshes the aggressor's neighbourhood inside the
        # DRAM chip; report those rows as refreshed so the security verifier
        # observes REGA's protection.
        if self.controller is None:
            return
        victims = self.controller.mapper.neighbors(address, self.blast_radius)
        for victim in victims[: self.config.refreshes_per_activation * 2]:
            self.controller.dram.notify_row_refresh(cycle, victim)
        self.stats.preventive_refreshes += min(
            len(victims), self.config.refreshes_per_activation * 2
        )

    # ------------------------------------------------------------------ #
    # Area model
    # ------------------------------------------------------------------ #
    def storage_bits_per_bank(self) -> int:
        # REGA keeps no controller-side state.
        return 0

    def storage_report(self) -> Dict[str, float]:
        return {
            "total_KiB": 0.0,
            "dram_area_overhead_fraction": self.DRAM_AREA_OVERHEAD_FRACTION,
        }
