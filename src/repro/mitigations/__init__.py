"""RowHammer mitigation mechanisms.

This subpackage implements the paper's comparison points, each behind the
common :class:`~repro.mitigations.base.RowHammerMitigation` interface that
the memory controller drives:

* :class:`~repro.mitigations.none.NoMitigation` — the unprotected baseline.
* :class:`~repro.mitigations.para.PARA` — probabilistic adjacent-row refresh.
* :class:`~repro.mitigations.graphene.Graphene` — Misra-Gries tracking with
  tagged (CAM) counters per bank.
* :class:`~repro.mitigations.hydra.Hydra` — hybrid group counters + in-DRAM
  per-row counters with a row-count cache, generating extra DRAM traffic.
* :class:`~repro.mitigations.rega.REGA` — in-DRAM refresh-generating
  activations, modelled as inflated activation timings.
* :class:`~repro.mitigations.blockhammer.BlockHammer` — counting-Bloom-filter
  blacklisting with activation throttling.
* :class:`~repro.mitigations.prac.PRAC` — DDR5 per-row activation counting
  in-DRAM with Alert Back-Off demand back-pressure.

CoMeT itself lives in :mod:`repro.core` (it is the paper's contribution) but
implements the same interface.
"""

from repro.mitigations.base import RowHammerMitigation, MitigationStatistics
from repro.mitigations.fabric import MitigationFabric
from repro.mitigations.none import NoMitigation
from repro.mitigations.para import PARA, para_refresh_probability
from repro.mitigations.graphene import Graphene, GrapheneConfig
from repro.mitigations.hydra import Hydra, HydraConfig
from repro.mitigations.rega import REGA, REGAConfig
from repro.mitigations.blockhammer import BlockHammer, BlockHammerConfig
from repro.mitigations.prac import PRAC, PRACConfig

__all__ = [
    "RowHammerMitigation",
    "MitigationStatistics",
    "MitigationFabric",
    "NoMitigation",
    "PARA",
    "para_refresh_probability",
    "Graphene",
    "GrapheneConfig",
    "Hydra",
    "HydraConfig",
    "REGA",
    "REGAConfig",
    "BlockHammer",
    "BlockHammerConfig",
    "PRAC",
    "PRACConfig",
]
