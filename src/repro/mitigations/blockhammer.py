"""BlockHammer: counting-Bloom-filter blacklisting with throttling (HPCA 2021).

BlockHammer tracks per-bank row activation *rates* in a pair of counting
Bloom filters (one active, one passive, swapping roles every epoch) and
throttles — i.e. delays — activations to rows whose estimated activation
count exceeds a blacklisting threshold, so that no row can reach the
RowHammer threshold within a refresh window.

The CoMeT paper compares against BlockHammer in two ways, both reproduced
here and in :mod:`repro.analysis.false_positive`:

* Figure 17 contrasts the false-positive rates of BlockHammer's tracker
  (hash functions share one counter array) with CoMeT's Counter Table
  (one counter set per hash function).
* Figure 18 compares end-to-end performance; BlockHammer loses at low
  thresholds because false positives cause benign rows to be throttled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dram.address import DRAMAddress
from repro.mitigations.base import RowHammerMitigation
from repro.experiment.registry import register_mitigation
from repro.sketch.counting_bloom import DualCountingBloomFilter


@dataclass(frozen=True)
class BlockHammerConfig:
    """BlockHammer parameters."""

    nrh: int
    num_counters: int = 1024
    num_hashes: int = 4
    counter_width_bits: int = 16
    #: Fraction of NRH at which a row becomes blacklisted.
    blacklist_fraction: float = 0.5
    #: Number of epochs per refresh window (the CBFs swap roles each epoch).
    epochs_per_window: int = 2
    #: Safety factor on the throttling delay.
    delay_safety_factor: float = 2.0

    @property
    def blacklist_threshold(self) -> int:
        return max(1, int(self.nrh * self.blacklist_fraction))


@register_mitigation("blockhammer", seedable=True)
class BlockHammer(RowHammerMitigation):
    """Counting-Bloom-filter tracker plus activation throttling."""

    name = "blockhammer"

    def __init__(
        self,
        nrh: int,
        config: Optional[BlockHammerConfig] = None,
        blast_radius: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__(nrh=nrh, blast_radius=blast_radius)
        self.config = config or BlockHammerConfig(nrh=nrh)
        self._seed = seed
        self._filters: Dict[Tuple[int, int, int, int], DualCountingBloomFilter] = {}
        self._last_blacklisted_act: Dict[Tuple, int] = {}
        self._next_epoch_cycle: Optional[int] = None
        self._epoch_length: Optional[int] = None
        self._throttle_gap_cycles: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def attach(self, controller) -> None:
        super().attach(controller)
        self._epoch_length = max(
            1, self.dram_config.tREFW // self.config.epochs_per_window
        )
        self._next_epoch_cycle = self._epoch_length
        # A blacklisted row may be activated at most (NRH - blacklist
        # threshold) more times before the window ends; spacing those
        # activations evenly over the window (with a safety factor) keeps the
        # total below NRH.
        budget = max(1, self.nrh - self.config.blacklist_threshold)
        self._throttle_gap_cycles = int(
            self.config.delay_safety_factor * self.dram_config.tREFW / budget
        )

    def _filter_for(self, bank_key: Tuple[int, int, int, int]) -> DualCountingBloomFilter:
        cbf = self._filters.get(bank_key)
        if cbf is None:
            cbf = DualCountingBloomFilter(
                num_counters=self.config.num_counters,
                num_hashes=self.config.num_hashes,
                counter_width_bits=self.config.counter_width_bits,
                seed=self._seed + hash(bank_key) % 1024,
            )
            self._filters[bank_key] = cbf
        return cbf

    # ------------------------------------------------------------------ #
    # Event hooks
    # ------------------------------------------------------------------ #
    def on_activation(self, cycle: int, address: DRAMAddress, is_preventive: bool) -> None:
        # Preventive ACTs disturb their neighbours like any other activation,
        # so they are tracked as well (they are never throttled, though:
        # act_allowed_cycle only applies to demand requests).
        self._maybe_rollover(cycle)
        self.stats.observed_activations += 1
        cbf = self._filter_for(address.bank_key)
        estimate = cbf.update(address.row)
        if estimate >= self.config.blacklist_threshold:
            self._last_blacklisted_act[(address.bank_key, address.row)] = cycle

    def act_allowed_cycle(self, address: DRAMAddress, cycle: int) -> int:
        """Delay activations to blacklisted rows (the RowBlocker throttle)."""
        if self._throttle_gap_cycles is None:
            return cycle
        cbf = self._filters.get(address.bank_key)
        if cbf is None:
            return cycle
        if cbf.estimate(address.row) < self.config.blacklist_threshold:
            return cycle
        key = (address.bank_key, address.row)
        last = self._last_blacklisted_act.get(key)
        if last is None:
            return cycle
        allowed = last + self._throttle_gap_cycles
        if allowed > cycle:
            self.stats.throttled_activations += 1
        return max(cycle, allowed)

    def _maybe_rollover(self, cycle: int) -> None:
        if self._next_epoch_cycle is None or cycle < self._next_epoch_cycle:
            return
        # Roll over once per elapsed epoch so long idle gaps age out history
        # from both filters, exactly as elapsed wall-clock time would.
        while cycle >= self._next_epoch_cycle:
            self._next_epoch_cycle += self._epoch_length
            for cbf in self._filters.values():
                cbf.rollover()
            self.stats.counter_resets += 1
        self._last_blacklisted_act.clear()

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def _snapshot_state(self) -> Dict:
        return {
            "filters": {
                bank_key: cbf.snapshot()
                for bank_key, cbf in self._filters.items()
            },
            "last_blacklisted_act": list(self._last_blacklisted_act.items()),
            "next_epoch_cycle": self._next_epoch_cycle,
        }

    def _restore_state(self, state: Dict) -> None:
        self._filters = {}
        for bank_key, cbf_state in state["filters"].items():
            self._filter_for(tuple(bank_key)).restore(cbf_state)
        self._last_blacklisted_act = {
            (tuple(bank_key), row): act_cycle
            for (bank_key, row), act_cycle in state["last_blacklisted_act"]
        }
        self._next_epoch_cycle = state["next_epoch_cycle"]

    # ------------------------------------------------------------------ #
    # Storage model
    # ------------------------------------------------------------------ #
    def storage_bits_per_bank(self) -> int:
        # Two CBFs per bank plus the per-row throttle bookkeeping (modelled as
        # part of the scheduler in the original work).
        return 2 * self.config.num_counters * self.config.counter_width_bits
