"""Hydra: hybrid tracking with in-DRAM per-row counters (Qureshi et al., ISCA 2022).

Hydra is the paper's "best prior low-area-cost" comparison point.  It keeps:

* a small SRAM **Group Count Table (GCT)** in the memory controller — rows are
  grouped (128 rows per group) and each group has one counter;
* a **Row Count Table (RCT)** of per-row counters stored *in DRAM*, initialized
  lazily when a group's counter first reaches the group threshold;
* a **Row Count Cache (RCC)** in the memory controller that caches RCT entries
  to avoid a DRAM access on every activation.

The performance problem the CoMeT paper highlights (Section 3.2) comes from
two effects that this model reproduces directly: (1) group counters
overestimate row activation counts, triggering unnecessary preventive
refreshes, and (2) RCC misses generate extra DRAM reads (and dirty
writebacks), stealing bandwidth from demand requests and inflating memory
latency — the dominant effect at low RowHammer thresholds.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dram.address import DRAMAddress
from repro.mitigations.base import RowHammerMitigation
from repro.experiment.registry import register_mitigation


@dataclass(frozen=True)
class HydraConfig:
    """Hydra parameters (defaults follow the original work's configuration)."""

    nrh: int
    rows_per_group: int = 128
    group_threshold_divider: int = 4
    rcc_entries: int = 4096
    counter_width_bits: int = 8
    group_counter_width_bits: int = 16
    reset_divider: int = 2

    @property
    def group_threshold(self) -> int:
        """Activation count at which a group switches to per-row tracking."""
        return max(1, self.nrh // self.group_threshold_divider)

    @property
    def row_threshold(self) -> int:
        """Per-row activation count that triggers a preventive refresh."""
        return max(1, self.nrh // 2)


@register_mitigation("hydra")
class Hydra(RowHammerMitigation):
    """Hybrid group/per-row tracking with counters stored in DRAM."""

    name = "hydra"

    def __init__(
        self,
        nrh: int,
        config: Optional[HydraConfig] = None,
        blast_radius: int = 1,
    ) -> None:
        super().__init__(nrh=nrh, blast_radius=blast_radius)
        self.config = config or HydraConfig(nrh=nrh)
        # Group Count Table: (bank_key, group) -> count.
        self._gct: Dict[Tuple, int] = {}
        # Groups that switched to per-row tracking.
        self._tracked_groups: Dict[Tuple, bool] = {}
        # Row Count Table (lives in DRAM): (bank_key, row) -> count.
        self._rct: Dict[Tuple, int] = {}
        # Row Count Cache: OrderedDict used as an LRU of (bank_key, row) -> dirty.
        self._rcc: "OrderedDict[Tuple, bool]" = OrderedDict()
        self._next_reset_cycle: Optional[int] = None
        self._reset_period: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def attach(self, controller) -> None:
        super().attach(controller)
        self._reset_period = max(1, self.dram_config.tREFW // self.config.reset_divider)
        self._next_reset_cycle = self._reset_period

    # ------------------------------------------------------------------ #
    # Event hooks
    # ------------------------------------------------------------------ #
    def on_activation(self, cycle: int, address: DRAMAddress, is_preventive: bool) -> None:
        # Preventive ACTs are tracked like demand activations: they disturb
        # their own neighbours, so ignoring them would leave a blind spot.
        self._maybe_reset(cycle)
        self.stats.observed_activations += 1
        bank_key = address.bank_key
        group = address.row // self.config.rows_per_group
        group_key = (bank_key, group)

        if not self._tracked_groups.get(group_key, False):
            count = self._gct.get(group_key, 0) + 1
            self._gct[group_key] = count
            if count >= self.config.group_threshold:
                # Switch the group to per-row tracking: every row of the group
                # inherits the group count (a deliberate overestimate).
                self._tracked_groups[group_key] = True
                self.stats.bump("group_promotions")
            return

        # Per-row tracking: the row counter lives in DRAM and is accessed
        # through the Row Count Cache.
        row_key = (bank_key, address.row)
        self._access_row_counter(cycle, address, row_key, group_key)
        count = self._rct.get(row_key, self.config.group_threshold) + 1
        self._rct[row_key] = count
        self._mark_dirty(row_key)
        if count >= self.config.row_threshold:
            self.refresh_victims(cycle, address)
            self._rct[row_key] = 0

    def _access_row_counter(
        self, cycle: int, address: DRAMAddress, row_key: Tuple, group_key: Tuple
    ) -> None:
        """Model the RCC lookup; a miss costs a DRAM read (plus a writeback)."""
        if row_key in self._rcc:
            self._rcc.move_to_end(row_key)
            self.stats.bump("rcc_hits")
            return
        self.stats.bump("rcc_misses")
        # Miss: fetch the counter line from DRAM.
        counter_address = self._counter_dram_address(address)
        self.controller.enqueue_mitigation_request(counter_address, is_write=False, cycle=cycle)
        self.stats.mitigation_memory_requests += 1
        # Evict the LRU entry; dirty entries must be written back to DRAM.
        if len(self._rcc) >= self.config.rcc_entries:
            victim_key, dirty = self._rcc.popitem(last=False)
            if dirty:
                victim_bank_key, victim_row = victim_key
                victim_address = DRAMAddress(
                    channel=victim_bank_key[0],
                    rank=victim_bank_key[1],
                    bankgroup=victim_bank_key[2],
                    bank=victim_bank_key[3],
                    row=victim_row,
                    column=0,
                )
                writeback_address = self._counter_dram_address(victim_address)
                self.controller.enqueue_mitigation_request(
                    writeback_address, is_write=True, cycle=cycle
                )
                self.stats.mitigation_memory_requests += 1
                self.stats.bump("rcc_writebacks")
        self._rcc[row_key] = False

    def _mark_dirty(self, row_key: Tuple) -> None:
        if row_key in self._rcc:
            self._rcc[row_key] = True
            self._rcc.move_to_end(row_key)

    def _counter_dram_address(self, address: DRAMAddress) -> DRAMAddress:
        """DRAM location of the RCT entry for ``address``'s row.

        The RCT is packed into the top rows of the same bank: one byte per
        row counter, ``row_size_bytes`` counters per DRAM row.
        """
        org = self.dram_config.organization
        counters_per_row = org.row_size_bytes // (self.config.counter_width_bits // 8 or 1)
        counters_per_row = max(1, counters_per_row)
        counter_row = org.rows_per_bank - 1 - (address.row // counters_per_row)
        counter_row = max(0, counter_row)
        column = (address.row % counters_per_row) % org.columns_per_row
        return DRAMAddress(
            channel=address.channel,
            rank=address.rank,
            bankgroup=address.bankgroup,
            bank=address.bank,
            row=counter_row,
            column=column,
        )

    def _maybe_reset(self, cycle: int) -> None:
        if self._next_reset_cycle is None or cycle < self._next_reset_cycle:
            return
        while cycle >= self._next_reset_cycle:
            self._next_reset_cycle += self._reset_period
        self._gct.clear()
        self._tracked_groups.clear()
        self._rct.clear()
        self._rcc.clear()
        self.stats.counter_resets += 1

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def _snapshot_state(self) -> Dict:
        return {
            "gct": list(self._gct.items()),
            "tracked_groups": list(self._tracked_groups.items()),
            "rct": list(self._rct.items()),
            # Insertion order IS the LRU order; a plain pair list keeps it.
            "rcc": list(self._rcc.items()),
            "next_reset_cycle": self._next_reset_cycle,
        }

    def _restore_state(self, state: Dict) -> None:
        self._gct = {tuple(key): count for key, count in state["gct"]}
        self._tracked_groups = {
            tuple(key): flag for key, flag in state["tracked_groups"]
        }
        self._rct = {tuple(key): count for key, count in state["rct"]}
        self._rcc = OrderedDict(
            (tuple(key), dirty) for key, dirty in state["rcc"]
        )
        self._next_reset_cycle = state["next_reset_cycle"]

    # ------------------------------------------------------------------ #
    # Storage model (Table 4)
    # ------------------------------------------------------------------ #
    def storage_bits_per_bank(self) -> int:
        """SRAM bits per bank: the GCT share plus the RCC share.

        Hydra's structures are per-channel rather than per-bank; dividing by
        the bank count keeps the interface uniform for the area model.
        """
        org = (
            self.dram_config.organization
            if self.dram_config is not None
            else None
        )
        rows_per_bank = org.rows_per_bank if org is not None else 128 * 1024
        banks = self.bank_count() if self.dram_config is not None else 32
        groups_per_bank = -(-rows_per_bank // self.config.rows_per_group)
        gct_bits = groups_per_bank * self.config.group_counter_width_bits
        rcc_bits_total = self.config.rcc_entries * (
            self.config.counter_width_bits + 20  # counter + tag
        )
        return gct_bits + rcc_bits_total // banks

    def storage_report(self) -> Dict[str, float]:
        banks = self.bank_count() if self.dram_config is not None else 32
        total_bits = self.storage_bits_per_bank() * banks
        org = self.dram_config.organization if self.dram_config is not None else None
        # Rows this instance protects: all rows of its banks (bank_count is
        # channel-scoped on a fabric instance, so per-channel reports sum to
        # the legacy whole-system figure).
        rows = banks * org.rows_per_bank if org is not None else 32 * 128 * 1024
        dram_bits = rows * self.config.counter_width_bits
        return {
            "sram_KiB": total_bits / 8 / 1024,
            "in_dram_counters_KiB": dram_bits / 8 / 1024,
            "total_KiB": total_bits / 8 / 1024,
        }
