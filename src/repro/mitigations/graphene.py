"""Graphene: Misra-Gries-based RowHammer mitigation (Park et al., MICRO 2020).

Graphene keeps one Misra-Gries table of tagged (CAM) counters per bank.  Each
row activation updates the table; whenever a tracked row's counter reaches a
multiple of the Graphene threshold, the row's neighbours are preventively
refreshed.  The table is reset every tracking window.

Configuration follows the original work, as the CoMeT paper does (Section 6):

* tracking window: ``tREFW / reset_divider`` (``reset_divider = 2``),
* Graphene threshold ``T = NRH / 4`` — an aggressor can accumulate up to
  ``T - 1`` activations before a window reset and must still be caught before
  reaching ``NRH`` afterwards, and victims may also be disturbed from both
  sides, hence the /4 margin,
* table size ``ceil(W / T) + 1`` entries where ``W`` is the maximum number of
  activations a bank can receive in one window.

The entry count — and therefore the CAM storage reported in Table 1 — grows
roughly as ``1/NRH``, which is the scaling problem CoMeT addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dram.address import DRAMAddress
from repro.dram.config import DRAMConfig
from repro.mitigations.base import RowHammerMitigation
from repro.experiment.registry import register_mitigation
from repro.sketch.misra_gries import MisraGriesSummary, graphene_table_entries


@dataclass(frozen=True)
class GrapheneConfig:
    """Graphene parameters derived from the RowHammer threshold."""

    nrh: int
    reset_divider: int = 2
    threshold_divider: int = 4
    counter_width_bits: int = 12
    row_tag_bits: int = 17

    @property
    def threshold(self) -> int:
        """Graphene's per-table activation threshold."""
        return max(1, self.nrh // self.threshold_divider)

    def table_entries(self, max_activations_per_window: int) -> int:
        window_activations = max(1, max_activations_per_window // self.reset_divider)
        return graphene_table_entries(window_activations, self.threshold) + 1

    def storage_bits_per_bank(self, max_activations_per_window: int) -> int:
        entries = self.table_entries(max_activations_per_window)
        per_entry = self.row_tag_bits + self.counter_width_bits
        return entries * per_entry + self.counter_width_bits


@register_mitigation("graphene")
class Graphene(RowHammerMitigation):
    """Per-bank Misra-Gries tracking with preventive refresh."""

    name = "graphene"

    def __init__(
        self,
        nrh: int,
        config: Optional[GrapheneConfig] = None,
        blast_radius: int = 1,
    ) -> None:
        super().__init__(nrh=nrh, blast_radius=blast_radius)
        self.config = config or GrapheneConfig(nrh=nrh)
        self._tables: Dict[Tuple[int, int, int, int], MisraGriesSummary] = {}
        self._last_refresh_trigger: Dict[Tuple, int] = {}
        self._next_reset_cycle: Optional[int] = None
        self._table_entries: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def attach(self, controller) -> None:
        super().attach(controller)
        self._table_entries = self.config.table_entries(
            self.dram_config.max_activations_per_window
        )
        self._reset_period = max(1, self.dram_config.tREFW // self.config.reset_divider)
        self._next_reset_cycle = self._reset_period

    def _table_for(self, bank_key: Tuple[int, int, int, int]) -> MisraGriesSummary:
        table = self._tables.get(bank_key)
        if table is None:
            table = MisraGriesSummary(
                num_entries=self._table_entries,
                key_width_bits=self.config.row_tag_bits,
                counter_width_bits=self.config.counter_width_bits,
            )
            self._tables[bank_key] = table
        return table

    # ------------------------------------------------------------------ #
    # Event hooks
    # ------------------------------------------------------------------ #
    def on_activation(self, cycle: int, address: DRAMAddress, is_preventive: bool) -> None:
        self._maybe_reset(cycle)
        self.stats.observed_activations += 1
        table = self._table_for(address.bank_key)
        estimate = table.update(address.row)
        threshold = self.config.threshold
        if estimate < threshold:
            return
        # Refresh the victims each time the counter crosses a new multiple of
        # the threshold (Graphene does not reset counters on refresh).
        trigger_key = (address.bank_key, address.row)
        triggered = estimate // threshold
        if triggered > self._last_refresh_trigger.get(trigger_key, 0):
            self._last_refresh_trigger[trigger_key] = triggered
            self.refresh_victims(cycle, address)

    def _maybe_reset(self, cycle: int) -> None:
        if self._next_reset_cycle is None or cycle < self._next_reset_cycle:
            return
        while cycle >= self._next_reset_cycle:
            self._next_reset_cycle += self._reset_period
        for table in self._tables.values():
            table.reset()
        self._last_refresh_trigger.clear()
        self.stats.counter_resets += 1

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def _snapshot_state(self) -> Dict:
        return {
            "tables": {
                bank_key: table.snapshot()
                for bank_key, table in self._tables.items()
            },
            "last_refresh_trigger": list(self._last_refresh_trigger.items()),
            "next_reset_cycle": self._next_reset_cycle,
        }

    def _restore_state(self, state: Dict) -> None:
        self._tables = {}
        for bank_key, table_state in state["tables"].items():
            self._table_for(tuple(bank_key)).restore(table_state)
        self._last_refresh_trigger = {
            (tuple(bank_key), row): trigger
            for (bank_key, row), trigger in state["last_refresh_trigger"]
        }
        self._next_reset_cycle = state["next_reset_cycle"]

    # ------------------------------------------------------------------ #
    # Storage model (Table 1)
    # ------------------------------------------------------------------ #
    def storage_bits_per_bank(self) -> int:
        max_acts = (
            self.dram_config.max_activations_per_window
            if self.dram_config is not None
            else DRAMConfig().max_activations_per_window
        )
        return self.config.storage_bits_per_bank(max_acts)

    def storage_report(self) -> Dict[str, float]:
        banks = self.bank_count() if self.dram_config is not None else 32
        bits = self.storage_bits_per_bank() * banks
        return {
            "table_KiB": bits / 8 / 1024,
            "total_KiB": bits / 8 / 1024,
        }
