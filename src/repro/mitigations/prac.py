"""PRAC + ABO: per-row activation counting with Alert Back-Off (DDR5).

The JEDEC DDR5 update (JESD79-5C) moves RowHammer tracking into the DRAM
array itself: every row stores an activation counter that the device
increments during the ACT/PRE cycle (Per Row Activation Counting), and when
a counter crosses the alert threshold the device asserts the ``ALERT_n``
pin (Alert Back-Off).  The memory controller must then stop issuing demand
traffic for a recovery window while the device refreshes the victims of the
alerting row and resets its counter.

The model here follows that contract:

* each ACT increments the target row's in-DRAM counter (charged through
  ``DRAMStatistics.counter_updates`` by the energy model);
* at ``alert_threshold`` activations the device raises ABO: demand issue is
  stalled for ``tabo_cycles`` through the
  :meth:`~repro.mitigations.base.RowHammerMitigation.demand_blocked_until`
  hook, the aggressor's neighbours are refreshed in-DRAM (observed by the
  security verifier through ``notify_row_refresh`` and charged as
  ``in_dram_refresh_rows``) and the counter resets;
* periodic refresh rewrites the refreshed rows' counters (a refresh
  rewrites the whole row, counter bits included).

With ``alert_threshold = nrh // 2`` a victim can accumulate at most
``2 * (threshold - 1) + 1 < nrh`` disturbances between its refreshes — each
of its two aggressors is caught and the victim refreshed before either
reaches the threshold plus one final alerting ACT — so the mechanism stays
secure at arbitrarily low thresholds without any SRAM tracking state, which
is exactly the scaling argument for the DDR5 direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dram.address import DRAMAddress
from repro.experiment.registry import register_mitigation
from repro.mitigations.base import RowHammerMitigation


@dataclass(frozen=True)
class PRACConfig:
    """PRAC/ABO parameters derived from the RowHammer threshold."""

    nrh: int
    #: Alert threshold as a fraction of nrh: ``T = max(1, nrh // divider)``.
    #: 2 is the tightest safe divider for blast radius 1 (two aggressors per
    #: victim); larger dividers alert earlier and trade performance for
    #: margin.
    alert_divider: int = 2
    #: Demand-issue stall per ABO alert, in DRAM cycles (JEDEC tABO_ACT is
    #: ~180 ns; 256 cycles at 1.6 GHz is the same order).
    tabo_cycles: int = 256
    #: Width of the in-DRAM per-row activation counter.
    counter_bits: int = 10

    @property
    def alert_threshold(self) -> int:
        return max(1, self.nrh // self.alert_divider)


@register_mitigation("prac")
class PRAC(RowHammerMitigation):
    """In-DRAM per-row counters with Alert Back-Off demand back-pressure."""

    name = "prac"
    BLOCKS_DEMAND = True

    def __init__(
        self,
        nrh: int,
        config: Optional[PRACConfig] = None,
        blast_radius: int = 1,
    ) -> None:
        super().__init__(nrh=nrh, blast_radius=blast_radius)
        self.config = config or PRACConfig(nrh=nrh)
        #: In-DRAM counters: per bank, activations per row since the row's
        #: counter was last reset (alert or periodic refresh).
        self._counters: Dict[Tuple[int, int, int, int], Dict[int, int]] = {}
        #: End of the current Alert Back-Off window (0: no alert pending).
        self._abo_until: int = 0

    # ------------------------------------------------------------------ #
    # Event hooks
    # ------------------------------------------------------------------ #
    def on_activation(self, cycle: int, address: DRAMAddress, is_preventive: bool) -> None:
        self.stats.observed_activations += 1
        bank_key = address.bank_key
        rows = self._counters.get(bank_key)
        if rows is None:
            rows = self._counters[bank_key] = {}
        count = rows.get(address.row, 0) + 1
        rows[address.row] = count
        if self.controller is not None:
            self.controller.dram.stats.counter_updates += 1
        if count >= self.config.alert_threshold:
            self._alert(cycle, address, rows)

    def _alert(
        self, cycle: int, aggressor: DRAMAddress, rows: Dict[int, int]
    ) -> None:
        """The device asserts ALERT_n: back off, refresh victims, reset."""
        self._abo_until = max(self._abo_until, cycle + self.config.tabo_cycles)
        del rows[aggressor.row]
        self.stats.counter_resets += 1
        self.stats.bump("abo_alerts")
        if self.controller is None:
            return
        victims = self.controller.mapper.neighbors(aggressor, self.blast_radius)
        dram = self.controller.dram
        for victim in victims:
            dram.notify_row_refresh(cycle, victim)
        dram.stats.in_dram_refresh_rows += len(victims)
        self.stats.bump("abo_victim_refreshes", len(victims))

    def on_refresh(
        self, cycle: int, rank_key: Tuple[int, int], start_row: int, count: int
    ) -> None:
        # A refresh rewrites the whole row, counter bits included, so the
        # covered rows restart from zero in every bank of the rank.
        channel, rank = rank_key
        end = start_row + count
        for bank_key, rows in self._counters.items():
            if bank_key[0] != channel or bank_key[1] != rank:
                continue
            stale = [row for row in rows if start_row <= row < end]
            for row in stale:
                del rows[row]

    def demand_blocked_until(self, cycle: int) -> int:
        return self._abo_until

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def _snapshot_state(self) -> Dict:
        return {
            "counters": [
                [list(key), [list(item) for item in sorted(rows.items())]]
                for key, rows in sorted(self._counters.items())
                if rows
            ],
            "abo_until": self._abo_until,
        }

    def _restore_state(self, state: Dict) -> None:
        self._counters = {
            tuple(key): {row: count for row, count in rows}
            for key, rows in state["counters"]
        }
        self._abo_until = state["abo_until"]

    # ------------------------------------------------------------------ #
    # Storage model
    # ------------------------------------------------------------------ #
    def storage_bits_per_bank(self) -> int:
        """On-chip SRAM/CAM: none — PRAC's counters live in the DRAM rows."""
        return 0

    def storage_report(self) -> Dict[str, float]:
        if self.dram_config is not None:
            rows_per_bank = self.dram_config.organization.rows_per_bank
        else:
            rows_per_bank = 128 * 1024
        banks = self.bank_count() if self.dram_config is not None else 32
        in_dram_bits = rows_per_bank * self.config.counter_bits * banks
        return {
            "in_dram_counters_KiB": in_dram_bits / 8 / 1024,
            "total_KiB": 0.0,
        }
