"""PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

PARA is stateless: on every row activation it refreshes the activated row's
neighbours with a (small) probability ``p``.  The CoMeT paper tunes ``p`` for
a target failure probability of 1e-15 within a 64 ms refresh window
(Section 6), which is what :func:`para_refresh_probability` computes: the
probability that an aggressor row is hammered ``nrh`` times without any of
those activations triggering a neighbour refresh must stay below the target.

At low RowHammer thresholds ``p`` grows quickly (about 0.034 at NRH=1K and
0.24 at NRH=125), which is exactly why PARA's performance and energy
overheads explode in Figures 12-15.
"""

from __future__ import annotations

import math
import random

from repro.dram.address import DRAMAddress
from repro.mitigations.base import RowHammerMitigation
from repro.experiment.registry import register_mitigation


def para_refresh_probability(nrh: int, target_failure_probability: float = 1e-15) -> float:
    """Per-activation refresh probability needed for the target failure rate.

    A victim experiences a bitflip only if its aggressor is activated ``nrh``
    times and none of those activations triggers a preventive refresh of the
    victim; that happens with probability ``(1 - p) ** nrh``, which must not
    exceed ``target_failure_probability``.
    """
    if nrh <= 0:
        raise ValueError("nrh must be positive")
    if not 0 < target_failure_probability < 1:
        raise ValueError("target_failure_probability must be in (0, 1)")
    return 1.0 - math.pow(target_failure_probability, 1.0 / nrh)


def para_is_feasible(
    nrh: int,
    blast_radius: int = 1,
    target_failure_probability: float = 1e-15,
) -> bool:
    """Whether PARA's preventive-refresh cascade stays subcritical at ``nrh``.

    Every preventive refresh activates ``2 * blast_radius`` neighbour rows,
    and each of those activations is itself coin-flipped (preventive ACTs
    disturb *their* neighbours too — see :meth:`PARA.on_activation`).  The
    cascade is a branching process with mean offspring
    ``p * 2 * blast_radius``: once that reaches 1 the storm of preventive
    refreshes no longer dies out and PARA consumes unbounded activation
    bandwidth — in hardware as in simulation.  With the default 1e-15
    failure target the boundary sits at NRH ≈ 50 (``p = 0.5``), which is
    why the low-NRH scaling study reports PARA as *infeasible* rather than
    insecure below it.
    """
    probability = para_refresh_probability(nrh, target_failure_probability)
    return probability * 2 * blast_radius < 1.0


@register_mitigation("para", seedable=True)
class PARA(RowHammerMitigation):
    """Probabilistic adjacent-row refresh."""

    name = "para"

    def __init__(
        self,
        nrh: int,
        target_failure_probability: float = 1e-15,
        blast_radius: int = 1,
        seed: int = 0,
        probability: float = None,
    ) -> None:
        super().__init__(nrh=nrh, blast_radius=blast_radius)
        if probability is None:
            probability = para_refresh_probability(nrh, target_failure_probability)
            # A derived p must keep the preventive cascade subcritical (an
            # explicit probability is the caller's informed choice).
            if probability * 2 * blast_radius >= 1.0:
                raise ValueError(
                    f"para is infeasible at nrh={nrh}: refresh probability "
                    f"{probability:.3f} makes the preventive-refresh cascade "
                    f"supercritical (p * {2 * blast_radius} >= 1); see "
                    "para_is_feasible()"
                )
        if not 0 <= probability <= 1:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self._rng = random.Random(seed)

    def on_activation(self, cycle: int, address: DRAMAddress, is_preventive: bool) -> None:
        # Preventive ACTs are activations too: they disturb their own
        # neighbours, so PARA applies the same coin flip to them.  Skipping
        # them would let a storm of preventive refreshes hammer adjacent rows
        # unobserved.
        self.stats.observed_activations += 1
        if self._rng.random() < self.probability:
            self.refresh_victims(cycle, address)

    def _snapshot_state(self) -> dict:
        # PARA's only mutable state is the coin-flip RNG; capturing it makes
        # restore() reproduce the identical refresh decision sequence.
        return {"rng_state": self._rng.getstate()}

    def _restore_state(self, state: dict) -> None:
        self._rng.setstate(state["rng_state"])

    def storage_bits_per_bank(self) -> int:
        # PARA is stateless (Section 7.3.1 of the paper).
        return 0
