"""The unprotected baseline (no RowHammer mitigation).

Every figure in the paper normalizes to "a baseline system that does not have
any RowHammer mitigation"; this class is that baseline.  It observes nothing
and never issues preventive refreshes.
"""

from __future__ import annotations

from repro.mitigations.base import RowHammerMitigation
from repro.experiment.registry import register_mitigation


@register_mitigation("none", takes_nrh=False)
class NoMitigation(RowHammerMitigation):
    """A mitigation that does nothing (the paper's normalization baseline)."""

    name = "none"

    def __init__(self, nrh: int = 10**9) -> None:
        # The threshold is irrelevant; a huge value documents that the
        # baseline offers no protection guarantee.
        super().__init__(nrh=nrh)

    def storage_bits_per_bank(self) -> int:
        return 0
