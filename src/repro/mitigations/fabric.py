"""Aggregate view over per-channel RowHammer-mitigation instances.

The channel-partitioned fabric gives every memory channel its own mitigation
instance (mitigation state is keyed per bank, and banks never span channels,
so the split is semantics-preserving).  :class:`MitigationFabric` is the thin
aggregate the rest of the system reports against: summed statistics, summed
storage, one name.  It deliberately does *not* implement the event hooks —
observations flow from each channel's DRAM model straight into that
channel's instance; the fabric only ever aggregates.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, List, Sequence

from repro.mitigations.base import MitigationStatistics, RowHammerMitigation


def sum_statistics(total, parts):
    """Field-wise sum of statistics dataclass instances into ``total``.

    Numeric fields add; dict fields merge by key with numeric addition.
    Driven by ``dataclasses.fields`` so a statistics dataclass can grow new
    counters without every aggregation site (controller, DRAM, mitigation)
    needing an edit.
    """
    for part in parts:
        for spec in fields(total):
            current = getattr(total, spec.name)
            value = getattr(part, spec.name)
            if isinstance(current, dict):
                for key, amount in value.items():
                    current[key] = current.get(key, 0) + amount
            else:
                setattr(total, spec.name, current + value)
    return total


class MitigationFabric:
    """Read-only aggregate over one mitigation instance per channel."""

    def __init__(self, instances: Sequence[RowHammerMitigation]) -> None:
        if not instances or any(instance is None for instance in instances):
            raise ValueError("MitigationFabric needs one mitigation per channel")
        names = {instance.name for instance in instances}
        if len(names) > 1:
            raise ValueError(
                f"all channels must run the same mechanism, got {sorted(names)}"
            )
        self.instances: List[RowHammerMitigation] = list(instances)

    @property
    def name(self) -> str:
        return self.instances[0].name

    @property
    def nrh(self) -> int:
        return self.instances[0].nrh

    def instance_for(self, channel: int) -> RowHammerMitigation:
        return self.instances[channel]

    @property
    def stats(self) -> MitigationStatistics:
        """Statistics summed across the per-channel instances (field-wise,
        so mechanism-specific ``extra`` counters merge by key)."""
        return sum_statistics(
            MitigationStatistics(), (instance.stats for instance in self.instances)
        )

    def storage_report(self) -> Dict[str, float]:
        """Per-channel storage breakdowns summed into the system total."""
        total: Dict[str, float] = {}
        for instance in self.instances:
            for key, value in instance.storage_report().items():
                total[key] = total.get(key, 0.0) + value
        return total

    def __len__(self) -> int:
        return len(self.instances)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MitigationFabric({self.name!r}, channels={len(self.instances)})"
