"""Common interface every RowHammer mitigation implements.

The memory controller interacts with a mitigation through six hooks:

* :meth:`RowHammerMitigation.adjust_dram_config` — rewrite DRAM timings
  before the device model is built (REGA inflates activation latency).
* :meth:`RowHammerMitigation.on_activation` — observe every ACT command; the
  mitigation may schedule preventive refreshes or inject its own traffic.
* :meth:`RowHammerMitigation.on_refresh` — observe rank-level REF commands
  (used for window bookkeeping by mechanisms that need it).
* :meth:`RowHammerMitigation.act_allowed_cycle` — optionally delay demand
  activations (BlockHammer's throttling).
* :meth:`RowHammerMitigation.demand_blocked_until` — optionally stall all
  demand issue for a recovery window (PRAC's Alert Back-Off).
* :meth:`RowHammerMitigation.storage_bits_per_bank` /
  :meth:`storage_report` — feed the area model of Table 1 / Table 4.

Concrete mechanisms keep their per-bank state keyed by
``DRAMAddress.bank_key`` so a single mitigation object protects the whole
channel, exactly like the per-bank tables the paper describes.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.dram.address import DRAMAddress
from repro.dram.config import DRAMConfig


@dataclass
class MitigationStatistics:
    """Counters shared by every mitigation (reported by the harness)."""

    observed_activations: int = 0
    preventive_refreshes: int = 0
    early_refresh_operations: int = 0
    mitigation_memory_requests: int = 0
    throttled_activations: int = 0
    counter_resets: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment a mechanism-specific counter in ``extra``."""
        self.extra[key] = self.extra.get(key, 0) + amount


class RowHammerMitigation(ABC):
    """Base class for RowHammer mitigation mechanisms.

    Parameters
    ----------
    nrh:
        The RowHammer threshold the mechanism must protect against.
    blast_radius:
        Number of physically adjacent victim rows on each side of an
        aggressor that a preventive refresh covers (1 in the paper).
    """

    name = "base"

    def __init__(self, nrh: int, blast_radius: int = 1) -> None:
        if nrh <= 0:
            raise ValueError("nrh must be positive")
        self.nrh = nrh
        self.blast_radius = blast_radius
        self.stats = MitigationStatistics()
        self.controller = None  # set by attach()
        self.dram_config: Optional[DRAMConfig] = None
        #: Channel this instance protects (set by attach()); ``None`` means
        #: the legacy monolithic layout where one instance covers them all.
        self.channel: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def adjust_dram_config(self, config: DRAMConfig) -> DRAMConfig:
        """Hook to rewrite DRAM timing/organization (default: unchanged)."""
        return config

    def attach(self, controller) -> None:
        """Called by the memory controller once it is constructed."""
        self.controller = controller
        self.dram_config = controller.dram_config
        self.channel = getattr(controller, "channel", None)

    def register_events(self, kernel) -> None:
        """Register timestamped callbacks on the simulation kernel.

        Called once by :class:`repro.sim.engine.EventKernel` before the event
        loop starts.  Mechanisms that need self-scheduled work (periodic
        table resets, deferred scrubs) call ``kernel.schedule(cycle, fn)``;
        the default reacts to ACT/REF observers only and registers nothing.
        """

    # ------------------------------------------------------------------ #
    # Event hooks
    # ------------------------------------------------------------------ #
    def on_activation(self, cycle: int, address: DRAMAddress, is_preventive: bool) -> None:
        """Observe an ACT command (including preventive ACTs, flagged)."""

    def observe_batch(self, cycles, addresses, flags) -> None:
        """Deliver a batch of ACT events, in order (SoA columns, equal length).

        The default is the exact serial loop over :meth:`on_activation`, so
        batch and per-event delivery are behaviorally identical for every
        mechanism (property-tested in ``tests/test_observer_batch.py``).
        Feedback mechanisms — anything that schedules preventive refreshes,
        throttles or raises alerts in response to an ACT — must keep these
        semantics: the detailed simulation always delivers their events
        synchronously, because a deferred preventive refresh would change
        the command stream.  Pure observers may override with a vectorized
        body (the streaming :class:`~repro.analysis.security.SecurityVerifier`
        does).
        """
        on_activation = self.on_activation
        for cycle, address, is_preventive in zip(cycles, addresses, flags):
            on_activation(cycle, address, is_preventive)

    def on_refresh(
        self, cycle: int, rank_key: Tuple[int, int], start_row: int, count: int
    ) -> None:
        """Observe a rank-level REF command covering ``count`` rows per bank."""

    def act_allowed_cycle(self, address: DRAMAddress, cycle: int) -> int:
        """Earliest cycle a demand ACT to ``address`` may issue (default: now)."""
        return cycle

    #: True for mechanisms that assert Alert Back-Off (PRAC): the controller
    #: then consults :meth:`demand_blocked_until` before every demand
    #: scheduling decision.  False skips the hook call entirely.
    BLOCKS_DEMAND = False

    def demand_blocked_until(self, cycle: int) -> int:
        """Cycle until which all demand issue is stalled (ABO); default: never.

        Unlike :meth:`act_allowed_cycle` — a per-address ACT throttle
        (BlockHammer) — this back-pressures the whole channel: reads, writes
        and row opens all wait while the device recovers from an alert.
        Refresh and preventive traffic are not held back.
        """
        return 0

    # ------------------------------------------------------------------ #
    # Helpers available to subclasses
    # ------------------------------------------------------------------ #
    def refresh_victims(self, cycle: int, aggressor: DRAMAddress) -> int:
        """Schedule preventive refreshes for the victims of ``aggressor``.

        Returns the number of victim rows queued.  Uses the controller's
        preventive-refresh queue, which is served with priority over demand
        requests (Section 7.2.2).
        """
        if self.controller is None:
            raise RuntimeError("mitigation is not attached to a controller")
        victims = self.controller.mapper.neighbors(aggressor, self.blast_radius)
        for victim in victims:
            self.controller.schedule_preventive_refresh(victim, cycle)
        self.stats.preventive_refreshes += len(victims)
        return len(victims)

    def bank_count(self) -> int:
        """Number of banks the mechanism protects (one table per bank).

        A channel-scoped instance (attached to one channel of a fabric)
        protects only its own channel's banks; summing the per-channel
        instances then yields the same system total as the legacy monolithic
        instance covering every channel.
        """
        if self.dram_config is None:
            raise RuntimeError("mitigation is not attached to a controller")
        org = self.dram_config.organization
        channels = 1 if self.channel is not None else org.channels
        return channels * org.ranks_per_channel * org.banks_per_rank

    # ------------------------------------------------------------------ #
    # Checkpointing (the sampled-fidelity Checkpoint protocol)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict:
        """Plain-data checkpoint of the mechanism's mutable state.

        The base capture covers the shared statistics; mechanisms with
        internal tracking state (sketches, tables, RNGs, reset timers)
        override :meth:`_snapshot_state`/:meth:`_restore_state` — keeping
        the stats plumbing in one place.  ``restore(snapshot())`` on an
        identically constructed and attached instance must reproduce
        identical subsequent behavior (pinned by
        ``tests/test_snapshot_restore.py``).
        """
        stats = dict(vars(self.stats))
        stats["extra"] = dict(self.stats.extra)
        return {"stats": stats, "state": self._snapshot_state()}

    def restore(self, data: Dict) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        for key, value in data["stats"].items():
            if key == "extra":
                self.stats.extra = dict(value)
            else:
                setattr(self.stats, key, value)
        self._restore_state(data["state"])

    def _snapshot_state(self) -> Dict:
        """Mechanism-specific mutable state (default: none)."""
        return {}

    def _restore_state(self, state: Dict) -> None:
        """Restore mechanism-specific state (default: nothing to restore)."""

    # ------------------------------------------------------------------ #
    # Area/storage modelling
    # ------------------------------------------------------------------ #
    def storage_bits_per_bank(self) -> int:
        """SRAM/CAM bits of per-bank state (0 for stateless mechanisms)."""
        return 0

    def storage_report(self) -> Dict[str, float]:
        """Storage breakdown in KiB for the whole (dual-rank) channel."""
        banks = self.bank_count() if self.dram_config is not None else 32
        total_bits = self.storage_bits_per_bank() * banks
        return {"total_KiB": total_bits / 8 / 1024}

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(nrh={self.nrh})"
