"""Tests for the Graphene (Misra-Gries) mitigation."""


from repro.mitigations.graphene import Graphene, GrapheneConfig
from tests.conftest import make_address


def make_graphene(fake_controller, nrh=1000, **config_overrides):
    config = GrapheneConfig(nrh=nrh, **config_overrides)
    graphene = Graphene(nrh=nrh, config=config)
    graphene.attach(fake_controller)
    return graphene


class TestGrapheneConfig:
    def test_threshold_is_quarter_of_nrh(self):
        assert GrapheneConfig(nrh=1000).threshold == 250
        assert GrapheneConfig(nrh=125).threshold == 31

    def test_table_entries_grow_at_low_thresholds(self):
        config_1k = GrapheneConfig(nrh=1000)
        config_125 = GrapheneConfig(nrh=125)
        window = 1_000_000
        assert config_125.table_entries(window) > 5 * config_1k.table_entries(window)

    def test_storage_bits_proportional_to_entries(self):
        config = GrapheneConfig(nrh=1000)
        window = 500_000
        entries = config.table_entries(window)
        assert config.storage_bits_per_bank(window) == entries * 29 + 12


class TestGrapheneBehaviour:
    def test_refresh_triggered_at_threshold(self, fake_controller, tiny_dram_config):
        graphene = make_graphene(fake_controller, nrh=1000)
        address = make_address(tiny_dram_config, row=20)
        threshold = graphene.config.threshold
        for cycle in range(threshold):
            graphene.on_activation(cycle, address, is_preventive=False)
        victims = {a.row for a, _ in fake_controller.preventive_refreshes}
        assert victims == {19, 21}

    def test_no_refresh_below_threshold(self, fake_controller, tiny_dram_config):
        graphene = make_graphene(fake_controller, nrh=1000)
        address = make_address(tiny_dram_config, row=20)
        for cycle in range(graphene.config.threshold - 1):
            graphene.on_activation(cycle, address, is_preventive=False)
        assert fake_controller.preventive_refreshes == []

    def test_refresh_repeats_at_multiples_of_threshold(self, fake_controller, tiny_dram_config):
        graphene = make_graphene(fake_controller, nrh=1000)
        address = make_address(tiny_dram_config, row=20)
        threshold = graphene.config.threshold
        for cycle in range(threshold * 3):
            graphene.on_activation(cycle, address, is_preventive=False)
        # Three crossings -> three refresh pairs.
        assert len(fake_controller.preventive_refreshes) == 6

    def test_tables_are_per_bank(self, fake_controller, tiny_dram_config):
        graphene = make_graphene(fake_controller, nrh=1000)
        threshold = graphene.config.threshold
        bank0 = make_address(tiny_dram_config, row=20, bank=0)
        bank1 = make_address(tiny_dram_config, row=20, bank=1)
        for cycle in range(threshold - 1):
            graphene.on_activation(cycle, bank0, is_preventive=False)
        graphene.on_activation(threshold, bank1, is_preventive=False)
        assert fake_controller.preventive_refreshes == []

    def test_periodic_reset_clears_tables(self, fake_controller, tiny_dram_config):
        graphene = make_graphene(fake_controller, nrh=1000)
        address = make_address(tiny_dram_config, row=20)
        threshold = graphene.config.threshold
        for cycle in range(threshold - 1):
            graphene.on_activation(cycle, address, is_preventive=False)
        # Jump past the Graphene reset period: the accumulated count is gone.
        reset_period = tiny_dram_config.tREFW // graphene.config.reset_divider
        graphene.on_activation(reset_period + 1, address, is_preventive=False)
        assert fake_controller.preventive_refreshes == []
        assert graphene.stats.counter_resets >= 1

    def test_storage_report_uses_attached_config(self, fake_controller):
        graphene = make_graphene(fake_controller, nrh=1000)
        report = graphene.storage_report()
        assert report["total_KiB"] > 0

    def test_many_distinct_rows_never_underestimate_heavy_hitter(
        self, fake_controller, tiny_dram_config
    ):
        """Even with table pressure from many light rows, a heavy hitter is caught."""
        graphene = make_graphene(fake_controller, nrh=1000)
        threshold = graphene.config.threshold
        heavy = make_address(tiny_dram_config, row=100)
        cycle = 0
        for i in range(threshold):
            graphene.on_activation(cycle, heavy, is_preventive=False)
            cycle += 1
            light = make_address(tiny_dram_config, row=(i * 3) % 250)
            graphene.on_activation(cycle, light, is_preventive=False)
            cycle += 1
        victims = {a.row for a, _ in fake_controller.preventive_refreshes}
        assert 99 in victims and 101 in victims
